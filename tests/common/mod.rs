//! Shared helpers for the root integration suites.

use reshuffle::{PipelineError, Synthesis};
use reshuffle_timing::{simulate, DelayModel, SimOptions};

/// Renders one synthesis outcome as a golden line — the single pin
/// format of the golden-corpus suite (`tests/pipeline.rs`) and the
/// row the builder-equivalence suite (`tests/builder.rs`) compares
/// against the legacy pipeline. The expand modes pin the chosen
/// ordering, literal count and cycle time — the acceptance artifacts
/// of the Section 3 stage.
pub fn golden_line(name: &str, mode: &str, result: &Result<Synthesis, PipelineError>) -> String {
    match result {
        Err(e) => format!("{name:<8} {mode:<7} error={e}"),
        Ok(s) => {
            let mut signals: Vec<&str> = s
                .netlist
                .signals()
                .iter()
                .map(|s| s.name.as_str())
                .collect();
            signals.sort_unstable();
            let delays = DelayModel::uniform(&s.stg, 2.0, 1.0);
            let cycle = simulate(&s.stg, &delays, &SimOptions::default())
                .map(|r| format!("{:.1}", r.period))
                .unwrap_or_else(|e| format!("?{e}"));
            let mut line = format!(
                "{name:<8} {mode:<7} lits={} cycle={cycle} signals=[{}] inserted=[{}]",
                reshuffle_synth::literal_estimate(&s.sg),
                signals.join(","),
                s.inserted.join(","),
            );
            if mode == "reduce" || mode == "exp+red" {
                line.push_str(&format!(
                    " moves=[{}]",
                    s.move_labels().collect::<Vec<_>>().join(",")
                ));
            }
            if mode == "expand" || mode == "exp+red" {
                line.push_str(&format!(" choices=[{}]", s.expansion.join(",")));
            }
            line
        }
    }
}
