//! Cross-crate integration: parse a `.g` STG, build the state graph,
//! check coding, derive next-state logic, and run the facade pipeline —
//! the first test that exercises every layer together.

use reshuffle::{synthesize, synthesize_with, PipelineError, PipelineOptions};
use reshuffle_bench::examples::XYZ_G;
use reshuffle_petri::parse_g;
use reshuffle_sg::{build_state_graph, csc::analyze_csc, props::speed_independence};
use reshuffle_synth::{derive_all_functions, verify_against_sg, ConflictPolicy};
use reshuffle_timing::{simulate, DelayModel, SimOptions};

#[test]
fn parse_to_netlist_step_by_step() {
    // Stage 1: parse.
    let stg = parse_g(XYZ_G).expect("parse");
    assert_eq!(stg.net().num_transitions(), 6);

    // Stage 2: state graph.
    let sg = build_state_graph(&stg).expect("state graph");
    assert_eq!(sg.num_states(), 6);
    assert!(speed_independence(&sg).is_speed_independent());

    // Stage 3: coding.
    let csc = analyze_csc(&sg);
    assert!(csc.has_csc(), "xyz must be CSC-clean");

    // Stage 4: next-state functions for the two outputs.
    let funcs = derive_all_functions(&sg, ConflictPolicy::Reject).expect("functions");
    assert_eq!(funcs.len(), 2);
    for f in &funcs {
        assert!(!f.cover.is_empty(), "empty cover for an output");
    }

    // Stage 5: mapped netlist, verified against the specification.
    let netlist = synthesize(XYZ_G).expect("facade pipeline");
    verify_against_sg(&sg, &netlist).expect("verification");

    // Stage 6: timing closes the loop (2+1 delays, 6-event cycle).
    let delays = DelayModel::uniform(&stg, 2.0, 1.0);
    let run = simulate(&stg, &delays, &SimOptions::default()).expect("timed run");
    assert_eq!(run.period, 8.0); // x+ x- are inputs (2.0), four outputs 1.0
    assert_eq!(run.input_events_on_cycle, 2);
}

#[test]
fn facade_rejects_malformed_sources_by_stage() {
    assert!(matches!(
        synthesize(".model nothing\n.end\n"),
        Err(PipelineError::Parse(_))
    ));
    // An inconsistent STG (b rises twice per cycle, never falls) fails
    // no later than the state-graph stage.
    let inconsistent = ".model bad\n.inputs a\n.outputs b\n.graph\n\
         a+ b+\nb+ b+/2\nb+/2 a-\na- a+\n.marking { <a-,a+> }\n.end\n";
    match synthesize_with(inconsistent, &PipelineOptions::default()) {
        Err(PipelineError::Parse(_)) | Err(PipelineError::StateGraph(_)) => {}
        other => panic!("expected staged failure, got {other:?}"),
    }
}
