//! Cross-crate integration: parse a `.g` STG, build the state graph,
//! check coding, derive next-state logic, and run the facade pipeline —
//! plus the golden-corpus regression suite that pins literal counts and
//! signal sets for every example in `reshuffle_bench::examples`.

mod common;

use reshuffle::{
    ExpansionOptions, Pipeline, PipelineError, PipelineOptions, ReduceOptions, Synthesis,
};
use reshuffle_bench::examples::{self, XYZ_G};
use reshuffle_petri::parse_g;
use reshuffle_sg::{build_state_graph, csc::analyze_csc, props::speed_independence};
use reshuffle_synth::{derive_all_functions, verify_against_sg, ConflictPolicy};
use reshuffle_timing::{simulate, DelayModel, SimOptions};

/// One-shot builder run, shaped like the retired `synthesize_with`.
fn run(src: &str, opts: &PipelineOptions) -> reshuffle::Result<Synthesis> {
    Pipeline::from_g(src)?.run(opts).map(|d| d.into_synthesis())
}

#[test]
fn parse_to_netlist_step_by_step() {
    // Stage 1: parse.
    let stg = parse_g(XYZ_G).expect("parse");
    assert_eq!(stg.net().num_transitions(), 6);

    // Stage 2: state graph.
    let sg = build_state_graph(&stg).expect("state graph");
    assert_eq!(sg.num_states(), 6);
    assert!(speed_independence(&sg).is_speed_independent());

    // Stage 3: coding.
    let csc = analyze_csc(&sg);
    assert!(csc.has_csc(), "xyz must be CSC-clean");

    // Stage 4: next-state functions for the two outputs.
    let funcs = derive_all_functions(&sg, ConflictPolicy::Reject).expect("functions");
    assert_eq!(funcs.len(), 2);
    for f in &funcs {
        assert!(!f.cover.is_empty(), "empty cover for an output");
    }

    // Stage 5: mapped netlist, verified against the specification.
    let netlist = run(XYZ_G, &PipelineOptions::default())
        .expect("facade pipeline")
        .netlist;
    verify_against_sg(&sg, &netlist).expect("verification");

    // Stage 6: timing closes the loop (2+1 delays, 6-event cycle).
    let delays = DelayModel::uniform(&stg, 2.0, 1.0);
    let run = simulate(&stg, &delays, &SimOptions::default()).expect("timed run");
    assert_eq!(run.period, 8.0); // x+ x- are inputs (2.0), four outputs 1.0
    assert_eq!(run.input_events_on_cycle, 2);
}

#[test]
fn facade_rejects_malformed_sources_by_stage() {
    assert!(matches!(
        run(".model nothing\n.end\n", &PipelineOptions::default()),
        Err(PipelineError::Parse(_))
    ));
    // An inconsistent STG (b rises twice per cycle, never falls) fails
    // no later than the state-graph stage.
    let inconsistent = ".model bad\n.inputs a\n.outputs b\n.graph\n\
         a+ b+\nb+ b+/2\nb+/2 a-\na- a+\n.marking { <a-,a+> }\n.end\n";
    match run(inconsistent, &PipelineOptions::default()) {
        Err(PipelineError::Parse(_)) | Err(PipelineError::StateGraph(_)) => {}
        other => panic!("expected staged failure, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Golden-corpus regression suite.
//
// Every example in `reshuffle_bench::examples::ALL` is synthesized
// four ways — default pipeline, with the Section 4 concurrency-reduction
// stage, with the Section 3 handshake-expansion stage, and with both
// composed — and the outcome is rendered to one line per run: literal
// count, timed cycle, sorted signal set, inserted state signals, plus
// the serializing moves (reduce modes) and winning ordering choices
// (expand modes). Partial corpus entries error out of the non-expand
// modes by design; complete entries pass through the expand stage
// untouched. The lines must match `GOLDEN` exactly.
//
// To re-bless after an intentional change: run
//   cargo test -q golden_corpus -- --nocapture
// and replace the body of `GOLDEN` with the `actual:` block the
// failure prints (one copy-paste edit).
// ---------------------------------------------------------------------

/// The four pipeline modes pinned per corpus entry.
fn golden_modes() -> Vec<(&'static str, PipelineOptions)> {
    vec![
        ("default", PipelineOptions::new()),
        (
            "reduce",
            PipelineOptions::new().with_reduce(ReduceOptions::default()),
        ),
        (
            "expand",
            PipelineOptions::new().with_expand(ExpansionOptions::default()),
        ),
        (
            "exp+red",
            PipelineOptions::new()
                .with_expand(ExpansionOptions::default())
                .with_reduce(ReduceOptions::default()),
        ),
    ]
}

/// Expected outcome lines, one per (example, mode), in corpus order.
const GOLDEN: &[&str] = &[
    "toggle   default lits=1 cycle=6.0 signals=[a,b] inserted=[]",
    "toggle   reduce  lits=1 cycle=6.0 signals=[a,b] inserted=[] moves=[]",
    "toggle   expand  lits=1 cycle=6.0 signals=[a,b] inserted=[] choices=[]",
    "toggle   exp+red lits=1 cycle=6.0 signals=[a,b] inserted=[] moves=[] choices=[]",
    "xyz      default lits=2 cycle=8.0 signals=[x,y,z] inserted=[]",
    "xyz      reduce  lits=2 cycle=8.0 signals=[x,y,z] inserted=[] moves=[]",
    "xyz      expand  lits=2 cycle=8.0 signals=[x,y,z] inserted=[] choices=[]",
    "xyz      exp+red lits=2 cycle=8.0 signals=[x,y,z] inserted=[] moves=[] choices=[]",
    "lr       default lits=2 cycle=12.0 signals=[la,lr,ra,rr] inserted=[]",
    "lr       reduce  lits=2 cycle=12.0 signals=[la,lr,ra,rr] inserted=[] moves=[]",
    "lr       expand  lits=2 cycle=12.0 signals=[la,lr,ra,rr] inserted=[] choices=[]",
    "lr       exp+red lits=2 cycle=12.0 signals=[la,lr,ra,rr] inserted=[] moves=[] choices=[]",
    "mmu      default lits=4 cycle=12.0 signals=[x,y1,y2,y3,y4] inserted=[]",
    "mmu      reduce  lits=4 cycle=12.0 signals=[x,y1,y2,y3,y4] inserted=[] moves=[]",
    "mmu      expand  lits=4 cycle=12.0 signals=[x,y1,y2,y3,y4] inserted=[] choices=[]",
    "mmu      exp+red lits=4 cycle=12.0 signals=[x,y1,y2,y3,y4] inserted=[] moves=[] choices=[]",
    "par      default lits=8 cycle=12.0 signals=[a1,a2,done,go,r1,r2] inserted=[]",
    "par      reduce  lits=3 cycle=18.0 signals=[a1,a2,done,go,r1,r2] inserted=[] moves=[a1- -> r2-,a1+ -> r2+]",
    "par      expand  lits=8 cycle=12.0 signals=[a1,a2,done,go,r1,r2] inserted=[] choices=[]",
    "par      exp+red lits=3 cycle=18.0 signals=[a1,a2,done,go,r1,r2] inserted=[] moves=[a1- -> r2-,a1+ -> r2+] choices=[]",
    "mfig1    default error=synthesis: CSC resolution stalled with 1 conflicts after inserting 0 signals",
    "mfig1    reduce  lits=1 cycle=6.0 signals=[Ack,Req] inserted=[] moves=[Ack- -> Req+]",
    "mfig1    expand  error=synthesis: CSC resolution stalled with 1 conflicts after inserting 0 signals",
    "mfig1    exp+red lits=1 cycle=6.0 signals=[Ack,Req] inserted=[] moves=[Ack- -> Req+] choices=[]",
    "creq     default lits=11 cycle=8.0 signals=[Ack,Go,Req,csc0] inserted=[csc0]",
    "creq     reduce  lits=2 cycle=8.0 signals=[Ack,Go,Req] inserted=[] moves=[Go- -> Req+]",
    "creq     expand  lits=11 cycle=8.0 signals=[Ack,Go,Req,csc0] inserted=[csc0] choices=[]",
    "creq     exp+red lits=2 cycle=8.0 signals=[Ack,Go,Req] inserted=[] moves=[Go- -> Req+] choices=[]",
    "hslr     default error=expansion: specification is partial; run handshake expansion before synthesis",
    "hslr     reduce  error=expansion: specification is partial; run handshake expansion before synthesis",
    "hslr     expand  lits=18 cycle=12.0 signals=[csc0,csc1,la,lr,ra,rr] inserted=[csc0,csc1] choices=[]",
    "hslr     exp+red lits=2 cycle=12.0 signals=[la,lr,ra,rr] inserted=[] moves=[ra- -> la-,lr- -> rr-] choices=[]",
    "pcreq    default error=expansion: specification is partial; run handshake expansion before synthesis",
    "pcreq    reduce  error=expansion: specification is partial; run handshake expansion before synthesis",
    "pcreq    expand  lits=6 cycle=9.0 signals=[Ack,Go,Req,csc0] inserted=[csc0] choices=[Go+ -> Req-,Go- -> Ack-]",
    "pcreq    exp+red lits=2 cycle=8.0 signals=[Ack,Go,Req] inserted=[] moves=[Go+ -> Req-,Ack- -> Go-] choices=[]",
];

use common::golden_line;

#[test]
fn golden_corpus() {
    let mut actual = Vec::new();
    for (name, src) in examples::ALL {
        for (mode, opts) in golden_modes() {
            actual.push(golden_line(name, mode, &run(src, &opts)));
        }
    }
    let expected: Vec<String> = GOLDEN.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        actual,
        expected,
        "\n== golden corpus drifted; to re-bless, replace GOLDEN with ==\nactual:\n{}\n",
        actual.join("\n")
    );
}

#[test]
fn prereduce_is_outcome_neutral_across_corpus_and_modes() {
    // Structural pre-reduction may only rewrite the net, never the
    // behaviour: for every corpus entry and every pipeline mode, the
    // run with prereduce disabled must produce the identical golden
    // outcome line, and — where synthesis succeeds — the identical
    // final state-graph fingerprint.
    for (name, src) in examples::ALL {
        for (mode, opts) in golden_modes() {
            let on = run(src, &opts);
            let off = run(src, &opts.clone().with_prereduce(false));
            assert_eq!(
                golden_line(name, mode, &on),
                golden_line(name, mode, &off),
                "{name}/{mode}: prereduce changed the synthesis outcome"
            );
            if let (Ok(a), Ok(b)) = (&on, &off) {
                assert_eq!(
                    a.sg.fingerprint(),
                    b.sg.fingerprint(),
                    "{name}/{mode}: prereduce changed the final state graph"
                );
            }
        }
    }
}

#[test]
fn golden_corpus_netlists_verify() {
    // Golden literal counts alone could pin a wrong implementation;
    // every successfully synthesized netlist must also model-check
    // against its (possibly transformed) state graph.
    for (name, src) in examples::ALL {
        for (_, opts) in golden_modes() {
            if let Ok(s) = run(src, &opts) {
                verify_against_sg(&s.sg, &s.netlist)
                    .unwrap_or_else(|e| panic!("{name}: verification failed: {e}"));
            }
        }
    }
}
