//! Property suite for the Section 3 handshake-expansion engine, over
//! the partial entries of the example corpus: every enumerated
//! reshuffling preserves the input/output signal interface, is live and
//! speed-independent, the eager and lazy extremes of the lattice are
//! always present, complete corpus entries report `NotPartial`, and the
//! ranked pipeline selection strictly beats the fully-eager expansion
//! where the lattice offers a better point (the acceptance example:
//! `pcreq`).

use reshuffle::{Pipeline, PipelineError, PipelineOptions, Synthesis};
use reshuffle_bench::examples::{self, PCREQ_G};
use reshuffle_handshake::{expand_handshakes, ExpansionOptions, HandshakeError};
use reshuffle_petri::parse_g;
use reshuffle_sg::build_state_graph;
use reshuffle_sg::conc::concurrent_pairs;
use reshuffle_sg::props::{all_events_fire, speed_independence};
use reshuffle_synth::literal_estimate;

/// One-shot builder run on `.g` source.
fn run(src: &str, opts: &PipelineOptions) -> reshuffle::Result<Synthesis> {
    Pipeline::from_g(src)?.run(opts).map(|d| d.into_synthesis())
}

/// The corpus' partial entries, parsed.
fn partial_specs() -> Vec<(&'static str, reshuffle_petri::Stg)> {
    examples::ALL
        .iter()
        .filter(|(name, _)| examples::PARTIAL.contains(name))
        .map(|(name, src)| (*name, parse_g(src).unwrap()))
        .collect()
}

#[test]
fn every_reshuffling_preserves_the_interface_and_semantics() {
    for (name, spec) in partial_specs() {
        let rs = expand_handshakes(&spec, &ExpansionOptions::default())
            .unwrap_or_else(|e| panic!("{name}: expansion failed: {e}"));
        assert!(rs.len() >= 2, "{name}: degenerate lattice ({})", rs.len());
        for (i, r) in rs.iter().enumerate() {
            // Interface preservation: same signals, same names, same
            // kinds, in the same order; the result is complete.
            assert!(!r.stg.is_partial(), "{name}#{i}: still partial");
            assert_eq!(
                r.stg.num_signals(),
                spec.num_signals(),
                "{name}#{i}: signal count changed"
            );
            for s in spec.signals() {
                assert_eq!(
                    spec.signal(s).name,
                    r.stg.signal(s).name,
                    "{name}#{i}: signal renamed"
                );
                assert_eq!(
                    spec.signal(s).kind,
                    r.stg.signal(s).kind,
                    "{name}#{i}: signal kind changed"
                );
            }
            // Liveness + speed independence of the refinement.
            assert!(r.sg.deadlock_states().is_empty(), "{name}#{i}: deadlock");
            assert!(all_events_fire(&r.sg), "{name}#{i}: dead event");
            assert!(
                speed_independence(&r.sg).is_speed_independent(),
                "{name}#{i}: not speed-independent"
            );
            // The incrementally derived graph matches a full rebuild of
            // the candidate STG.
            let rebuilt = build_state_graph(&r.stg)
                .unwrap_or_else(|e| panic!("{name}#{i}: rebuild failed: {e}"));
            assert_eq!(
                rebuilt.fingerprint(),
                r.sg.fingerprint(),
                "{name}#{i}: incremental graph drifted"
            );
        }
    }
}

#[test]
fn eager_and_lazy_extremes_are_always_present() {
    for (name, spec) in partial_specs() {
        let rs = expand_handshakes(&spec, &ExpansionOptions::default()).unwrap();
        // Eager extreme: first, with no ordering commitments.
        assert!(
            rs.first().unwrap().choices.is_empty(),
            "{name}: eager extreme missing"
        );
        // Lazy extreme: the last candidate is the top of the lattice —
        // its choice set contains every other candidate's choices ...
        let lazy = rs.last().unwrap();
        for (i, r) in rs.iter().enumerate() {
            for c in &r.choices {
                assert!(
                    lazy.choices.contains(c),
                    "{name}#{i}: choice `{c}` not below the lazy extreme"
                );
            }
        }
        // ... and it commits every anchor: no channel edge stays
        // concurrent with a non-channel event (concurrency *between*
        // return-to-zero edges of different channels is never
        // serialized by the lattice and may remain).
        let channel_signals: Vec<String> = spec
            .handshakes()
            .iter()
            .flat_map(|h| {
                [
                    spec.signal(h.req).name.clone(),
                    spec.signal(h.ack).name.clone(),
                ]
            })
            .collect();
        let is_channel = |r: &reshuffle_handshake::Reshuffling, s: reshuffle_petri::SignalId| {
            channel_signals.contains(&r.stg.signal(s).name)
        };
        for (a, b) in concurrent_pairs(&lazy.sg) {
            assert_eq!(
                is_channel(lazy, a.signal),
                is_channel(lazy, b.signal),
                "{name}: lazy extreme left a channel edge concurrent with a spec event"
            );
        }
        // And the lattice respects the enumeration budget while keeping
        // both ends.
        let capped = expand_handshakes(
            &spec,
            &ExpansionOptions {
                max_reshufflings: 2,
            },
        )
        .unwrap();
        assert_eq!(capped.len(), 2, "{name}: budget ignored");
        assert!(capped[0].choices.is_empty(), "{name}: eager lost to cap");
        assert!(
            capped[1].choices.len() >= capped[0].choices.len(),
            "{name}: lazy lost to cap"
        );
    }
}

#[test]
fn complete_corpus_entries_are_not_partial() {
    for (name, src) in examples::ALL {
        if examples::PARTIAL.contains(name) {
            continue;
        }
        let spec = parse_g(src).unwrap();
        assert!(!spec.is_partial(), "{name}: unexpectedly partial");
        let err = expand_handshakes(&spec, &ExpansionOptions::default()).unwrap_err();
        assert_eq!(err, HandshakeError::NotPartial, "{name}: {err:?}");
    }
}

#[test]
fn ranked_selection_strictly_beats_the_eager_expansion_on_pcreq() {
    // The acceptance example: the lattice has >= 2 points and the
    // pipeline's choice synthesizes to strictly fewer literals (and
    // fewer state signals) than the fully-eager expansion.
    let spec = parse_g(PCREQ_G).unwrap();
    let rs = expand_handshakes(&spec, &ExpansionOptions::default()).unwrap();
    assert!(rs.len() >= 2);

    let eager = &rs[0];
    assert!(eager.choices.is_empty());
    let eager_synth = Pipeline::from_stg(&eager.stg)
        .run(&PipelineOptions::default())
        .unwrap()
        .into_synthesis();
    let eager_lits = literal_estimate(&eager_synth.sg);

    let opts = PipelineOptions::new().with_expand(ExpansionOptions::default());
    let selected = run(PCREQ_G, &opts).unwrap();
    let selected_lits = literal_estimate(&selected.sg);

    assert!(!selected.expansion.is_empty(), "selection chose eager");
    assert!(
        selected_lits < eager_lits,
        "selected {selected_lits} literals must strictly beat eager's {eager_lits}"
    );
    assert!(selected.inserted.len() < eager_synth.inserted.len());
}

#[test]
fn trie_realization_beats_chained_on_the_partial_corpus() {
    // The shared-prefix cache must save real work on both partial
    // corpus entries (`hslr`, `pcreq`): strictly fewer restriction
    // products executed than the per-point chained path would run,
    // with the hit/product accounting adding up exactly.
    for (name, spec) in partial_specs() {
        let e = reshuffle_handshake::expand_handshakes_stats(&spec, &ExpansionOptions::default())
            .unwrap_or_else(|err| panic!("{name}: expansion failed: {err}"));
        assert_eq!(
            e.stats.chained_products,
            e.stats.restriction_products + e.stats.prefix_hits,
            "{name}: product accounting broken: {:?}",
            e.stats
        );
        assert!(
            e.stats.restriction_products < e.stats.chained_products,
            "{name}: trie executed {} products, chained would run {}",
            e.stats.restriction_products,
            e.stats.chained_products
        );
        assert!(e.stats.prefix_hits > 0, "{name}: no prefix reuse");
    }
}

#[test]
fn partial_specs_error_without_the_expand_stage() {
    for (name, spec) in partial_specs() {
        let src = reshuffle_petri::write_g(&spec);
        match run(&src, &PipelineOptions::default()) {
            Err(PipelineError::Expand(HandshakeError::NotExpanded)) => {}
            other => panic!("{name}: expected NotExpanded, got {other:?}"),
        }
    }
}

#[test]
fn partial_specs_roundtrip_through_the_writer() {
    // The `.handshake` declarations and toggle events survive a
    // write/parse cycle, and the re-parsed spec expands identically.
    for (name, spec) in partial_specs() {
        let text = reshuffle_petri::write_g(&spec);
        let reparsed = parse_g(&text).unwrap_or_else(|e| panic!("{name}: reparse failed: {e}"));
        assert!(reparsed.is_partial());
        assert_eq!(reparsed.handshakes().len(), spec.handshakes().len());
        let a = expand_handshakes(&spec, &ExpansionOptions::default()).unwrap();
        let b = expand_handshakes(&reparsed, &ExpansionOptions::default()).unwrap();
        assert_eq!(a.len(), b.len(), "{name}: lattice changed after roundtrip");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.choices, y.choices, "{name}: choices drifted");
            assert_eq!(
                x.sg.fingerprint(),
                y.sg.fingerprint(),
                "{name}: graphs drifted"
            );
        }
    }
}
