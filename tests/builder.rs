//! Corpus-wide equivalence of the stage-typed `Pipeline` builder with
//! the legacy free functions: for every example in
//! `reshuffle_bench::examples` and every pipeline mode the golden
//! suite pins, the builder — driven stage by stage *and* through the
//! `run()` shortcut — must produce a byte-identical netlist, identical
//! artifacts (inserted signals, serializing moves, expansion choices),
//! and the identical golden-pin row; failures must carry the identical
//! error message.
//!
//! This suite pins the deprecated wrappers' behavior, so it is the one
//! place outside the facade allowed to call them.
#![allow(deprecated)]

mod common;

use common::golden_line;
use reshuffle::{
    synthesize_with, Diagnostics, ExpansionOptions, Pipeline, PipelineError, PipelineOptions,
    ReduceOptions, Stage, Synthesis,
};
use reshuffle_bench::examples;

/// The four pipeline modes the golden suite pins per corpus entry.
fn modes() -> Vec<(&'static str, PipelineOptions)> {
    vec![
        ("default", PipelineOptions::new()),
        (
            "reduce",
            PipelineOptions::new().with_reduce(ReduceOptions::default()),
        ),
        (
            "expand",
            PipelineOptions::new().with_expand(ExpansionOptions::default()),
        ),
        (
            "exp+red",
            PipelineOptions::new()
                .with_expand(ExpansionOptions::default())
                .with_reduce(ReduceOptions::default()),
        ),
    ]
}

/// Drives the builder one stage transition at a time, mirroring what
/// `opts` encodes — the manual chain a caller inspecting intermediate
/// artifacts would write.
fn staged(src: &str, opts: &PipelineOptions) -> Result<(Synthesis, Diagnostics), PipelineError> {
    let parsed = Pipeline::from_g(src)?;
    let expanded = match &opts.expand {
        Some(eopts) => parsed.expand(eopts)?,
        None => parsed.complete()?,
    };
    let reduced = match &opts.reduce {
        Some(ropts) => expanded.reduce(ropts)?,
        None => expanded.skip_reduce(),
    };
    let resolved = reduced.resolve(&opts.csc)?;
    let done = if opts.skip_verify {
        resolved.synthesize_unverified(opts.style)?
    } else {
        resolved.synthesize(opts.style)?
    };
    Ok(done.into_parts())
}

/// Asserts two outcomes identical: same golden-pin row (the renderer
/// shared with the golden-corpus suite, so the comparison is against
/// the real pin format), and — on success — byte-identical netlists,
/// STGs, state graphs and per-stage artifacts (including the fields
/// the pin format omits for some modes).
fn assert_same(
    name: &str,
    mode: &str,
    what: &str,
    legacy: &Result<Synthesis, PipelineError>,
    other: &Result<Synthesis, PipelineError>,
) {
    assert_eq!(
        golden_line(name, mode, legacy),
        golden_line(name, mode, other),
        "{name}/{mode}: {what} drifted from the legacy pipeline"
    );
    if let (Ok(a), Ok(b)) = (legacy, other) {
        assert_eq!(
            a.netlist.describe(),
            b.netlist.describe(),
            "{name}/{mode}: {what} netlist is not byte-identical"
        );
        assert_eq!(
            reshuffle_petri::write_g(&a.stg),
            reshuffle_petri::write_g(&b.stg),
            "{name}/{mode}: {what} synthesized STG drifted"
        );
        assert_eq!(
            a.sg.fingerprint(),
            b.sg.fingerprint(),
            "{name}/{mode}: {what} state graph drifted"
        );
        assert_eq!(a.moves, b.moves, "{name}/{mode}: {what} move steps drifted");
        assert_eq!(
            a.inserted, b.inserted,
            "{name}/{mode}: {what} inserted signals drifted"
        );
        assert_eq!(
            a.expansion, b.expansion,
            "{name}/{mode}: {what} expansion choices drifted"
        );
    }
}

#[test]
fn builder_matches_legacy_across_the_corpus() {
    for (name, src) in examples::ALL {
        for (mode, opts) in modes() {
            let legacy = synthesize_with(src, &opts);
            let via_run = Pipeline::from_g(src)
                .and_then(|p| p.run(&opts))
                .map(|done| done.into_synthesis());
            assert_same(name, mode, "run()", &legacy, &via_run);
            let via_stages = staged(src, &opts).map(|(s, _)| s);
            assert_same(name, mode, "staged chain", &legacy, &via_stages);
        }
    }
}

#[test]
fn staged_diagnostics_cover_the_executed_stages() {
    for (name, src) in examples::ALL {
        for (mode, opts) in modes() {
            let Ok((_, diag)) = staged(src, &opts) else {
                continue; // failing modes are covered by the suite above
            };
            assert!(
                diag.stage(Stage::Parse).is_some(),
                "{name}/{mode}: no parse report"
            );
            assert!(
                diag.stage(Stage::Expand).is_some(),
                "{name}/{mode}: no expand report"
            );
            assert_eq!(
                diag.stage(Stage::Reduce).is_some(),
                opts.reduce.is_some(),
                "{name}/{mode}: reduce report does not match the options"
            );
            let resolve = diag
                .stage(Stage::Resolve)
                .unwrap_or_else(|| panic!("{name}/{mode}: no resolve report"));
            let synth = diag
                .stage(Stage::Synthesize)
                .unwrap_or_else(|| panic!("{name}/{mode}: no synthesize report"));
            assert!(synth.candidates >= Some(1), "{name}/{mode}: nothing ranked");
            assert!(
                resolve.states.is_some(),
                "{name}/{mode}: resolve lost the state count"
            );
            assert!(
                diag.total_wall().as_nanos() > 0,
                "{name}/{mode}: no wall time recorded"
            );
        }
    }
}

#[test]
fn run_with_cache_replays_every_mode_identically() {
    // One shared cache across the whole corpus: a second pass over all
    // entries and modes must be answered entirely from the cache, with
    // identical netlists and no stage work recorded.
    let cache = reshuffle::SynthCache::new();
    let mut first: Vec<(String, String)> = Vec::new();
    for (name, src) in examples::ALL {
        for (mode, opts) in modes() {
            if let Ok(done) = Pipeline::from_g(src).unwrap().with_cache(&cache).run(&opts) {
                first.push((format!("{name}/{mode}"), done.netlist().describe()));
            }
        }
    }
    let misses_after_first = cache.misses();
    let mut second = Vec::new();
    for (name, src) in examples::ALL {
        for (mode, opts) in modes() {
            if let Ok(done) = Pipeline::from_g(src).unwrap().with_cache(&cache).run(&opts) {
                assert_eq!(done.diagnostics().cache_hits, 1, "{name}/{mode}: not a hit");
                assert!(
                    done.diagnostics().stage(Stage::Synthesize).is_none(),
                    "{name}/{mode}: re-synthesis timing recorded on a cache hit"
                );
                second.push((format!("{name}/{mode}"), done.netlist().describe()));
            }
        }
    }
    assert_eq!(first, second, "cached replay drifted");
    assert_eq!(
        cache.hits(),
        first.len() as u64,
        "every successful mode must replay from the cache"
    );
    // Failing modes miss again (they cache nothing), successes do not.
    assert_eq!(cache.misses(), misses_after_first * 2 - first.len() as u64);
}
