//! Behavior preservation of the Section 4 concurrency reduction, over
//! the whole example corpus: a reduction may only *remove*
//! interleavings, never invent behaviour — the reduced STG must stay
//! consistent and speed-independent, and its state-graph trace set must
//! be a subset of the original's (probed with deterministic random
//! interleavings).

use reshuffle_bench::examples;
use reshuffle_petri::parse_g;
use reshuffle_reduce::{reduce_concurrency, ReduceOptions};
use reshuffle_sg::{build_state_graph, csc::analyze_csc, props::speed_independence, StateGraph};
use reshuffle_synth::literal_estimate;

/// Deterministic splitmix64 stream; seeds derive from the example name
/// so every corpus entry gets its own reproducible interleavings.
struct Rng(u64);

impl Rng {
    fn from_name(name: &str) -> Rng {
        Rng(name.bytes().fold(0x9e3779b97f4a7c15u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0xbf58476d1ce4e5b9)
        }))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Replays random walks of `reduced` inside `original`. The reducer
/// keeps the event table intact, so a walk is replayed event-by-event;
/// every step must exist in the original graph and land on a state with
/// the same binary code.
fn assert_traces_subset(name: &str, original: &StateGraph, reduced: &StateGraph) {
    let mut rng = Rng::from_name(name);
    for walk in 0..64 {
        let mut red_state = reduced.initial();
        let mut orig_state = original.initial();
        for step in 0..48 {
            let succ = reduced.succ(red_state);
            if succ.is_empty() {
                break; // corpus specs are live; defensive only
            }
            let (event, red_next) = succ.get((rng.next() % succ.len() as u64) as usize);
            red_state = red_next;
            orig_state = original.step(orig_state, event).unwrap_or_else(|| {
                panic!(
                    "{name}: walk {walk} step {step}: reduced trace fires {} \
                     but the original cannot",
                    reduced.event(event).label
                )
            });
            assert_eq!(
                original.code(orig_state),
                reduced.code(red_state),
                "{name}: walk {walk} step {step}: codes diverged"
            );
        }
    }
}

#[test]
fn reductions_preserve_behavior_across_the_corpus() {
    for (name, src) in examples::ALL {
        if examples::PARTIAL.contains(name) {
            // Partial specifications go through handshake expansion
            // before any reduction; the expansion property suite
            // covers them.
            continue;
        }
        let spec = parse_g(src).unwrap();
        let original = build_state_graph(&spec).unwrap();
        let red = reduce_concurrency(&spec, &ReduceOptions::default())
            .unwrap_or_else(|e| panic!("{name}: reduction failed: {e}"));

        // Consistency: the reduced STG must still binary-encode — and
        // to the very graph the incremental derivation produced.
        let rebuilt = build_state_graph(&red.stg)
            .unwrap_or_else(|e| panic!("{name}: reduced STG inconsistent: {e}"));
        assert_eq!(
            rebuilt.fingerprint(),
            red.sg.fingerprint(),
            "{name}: incremental state graph drifted from a full rebuild"
        );

        // Speed independence and liveness survive every move.
        assert!(
            speed_independence(&red.sg).is_speed_independent(),
            "{name}: reduction broke speed independence"
        );
        assert!(
            red.sg.deadlock_states().is_empty(),
            "{name}: reduction deadlocked the system"
        );

        // A reduction only removes interleavings.
        assert!(
            red.sg.num_states() <= original.num_states(),
            "{name}: reduction grew the state graph"
        );
        assert_traces_subset(name, &original, &red.sg);
    }
}

#[test]
fn symmetry_dominance_prunes_exactly_the_mirror_moves() {
    // Pinned per complete corpus entry: how many serializing-move
    // candidates the best-first search discarded because a mirror image
    // under a signal automorphism was also a candidate with a smaller
    // label. Only `par` has a non-trivial automorphism (the 1<->2
    // branch swap); everywhere else pruning must be a no-op.
    let expected: &[(&str, usize)] = &[
        ("toggle", 0),
        ("xyz", 0),
        ("lr", 0),
        ("mmu", 0),
        ("par", 4),
        ("mfig1", 0),
        ("creq", 0),
    ];
    for &(name, pruned) in expected {
        let src = examples::ALL.iter().find(|(n, _)| *n == name).unwrap().1;
        let red = reduce_concurrency(&parse_g(src).unwrap(), &ReduceOptions::default()).unwrap();
        assert_eq!(red.pruned, pruned, "{name}: pruned count drifted");
        // Every step carries its own label — the typed move list.
        for step in &red.steps {
            assert!(step.label.contains(" -> "), "{name}: malformed label");
        }
    }
}

#[test]
fn reduction_beats_state_signal_insertion_on_creq() {
    // The acceptance example: creq's CSC conflict is resolvable both
    // ways, and serialization wins — zero state signals and fewer
    // literals than the insertion-based netlist.
    let spec = parse_g(examples::CREQ_G).unwrap();
    let sg0 = build_state_graph(&spec).unwrap();
    assert_eq!(analyze_csc(&sg0).num_csc_conflicts(), 1);

    let unreduced = reshuffle_synth::resolve_csc(&spec, &Default::default()).unwrap();
    assert_eq!(unreduced.inserted.len(), 1);
    let unreduced_literals = literal_estimate(&unreduced.sg);

    let red = reduce_concurrency(&spec, &ReduceOptions::default()).unwrap();
    assert_eq!(red.csc_conflicts, 0, "reduction left the conflict");
    assert_eq!(
        red.stg.num_signals(),
        spec.num_signals(),
        "reduction must not insert state signals"
    );
    assert!(
        red.literals < unreduced_literals,
        "reduced {} literals must beat insertion's {}",
        red.literals,
        unreduced_literals
    );
}

#[test]
fn bounded_reduction_respects_the_cycle_budget() {
    // par trades cycle 12.0 -> 18.0 for literals when unconstrained; a
    // 12.0 budget must keep the specification instead.
    let spec = parse_g(examples::PAR_G).unwrap();
    let free = reduce_concurrency(&spec, &ReduceOptions::default()).unwrap();
    assert!(free.cycle > 12.0);
    assert!(!free.steps.is_empty());

    let bounded = reduce_concurrency(
        &spec,
        &ReduceOptions {
            max_cycle_time: Some(12.0),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(bounded.cycle <= 12.0);
    assert!(
        bounded.literals >= free.literals,
        "the bound cannot make logic cheaper than the free optimum"
    );
}
