//! Thread-count independence of the parallel state-graph build, and
//! equivalence of the CSR incremental product with a full rebuild.
//!
//! The sharded parallel exploration must be *byte-identical* for every
//! thread count — state numbering, arcs, fingerprints and `Debug`
//! rendering — because golden pins, `canonical_fingerprint`-keyed
//! caches and committed bench baselines all assume one canonical
//! graph per specification.

use reshuffle_bench::examples;
use reshuffle_petri::{parse_g, structural};
use reshuffle_sg::conc::concurrent_pairs;
use reshuffle_sg::restrict::restrict_with_place;
use reshuffle_sg::{build_state_graph, build_state_graph_with, BuildOptions, EventId};

fn opts(threads: usize) -> BuildOptions {
    BuildOptions {
        threads,
        ..Default::default()
    }
}

#[test]
fn corpus_builds_identically_at_1_2_8_threads() {
    for (name, src) in examples::ALL {
        let stg = parse_g(src).unwrap();
        let base = build_state_graph_with(&stg, &opts(1)).unwrap();
        let base_debug = format!("{base:?}");
        for threads in [2, 8] {
            let sg = build_state_graph_with(&stg, &opts(threads)).unwrap();
            assert_eq!(
                base.fingerprint(),
                sg.fingerprint(),
                "{name}: fingerprint differs at {threads} threads"
            );
            assert_eq!(
                base_debug,
                format!("{sg:?}"),
                "{name}: Debug output differs at {threads} threads"
            );
        }
    }
}

#[test]
fn scaled_generator_builds_identically_across_threads() {
    // n = 5 keeps the suite fast while still crossing multiple shards
    // every level (the frontier stays under the engine's spawn
    // threshold — the spawned path is pinned by the test below and by
    // the engine's own `spawned_path_matches_inline_path`).
    let stg = parse_g(&examples::scaled_pipeline(5)).unwrap();
    let base = build_state_graph_with(&stg, &opts(1)).unwrap();
    assert_eq!(base.num_states(), 2 * 3usize.pow(5) + 2);
    for threads in [2, 8] {
        let sg = build_state_graph_with(&stg, &opts(threads)).unwrap();
        assert_eq!(base.fingerprint(), sg.fingerprint());
        assert_eq!(format!("{base:?}"), format!("{sg:?}"));
    }
}

#[test]
fn spawned_workers_build_identically_at_scale() {
    // scaled_pipeline(9) peaks at a ~3100-state frontier — past the
    // engine's spawn threshold — so the multi-thread builds here run
    // the real scoped-worker path end to end through
    // `build_state_graph_with`, not the inline fallback.
    let stg = parse_g(&examples::scaled_pipeline(9)).unwrap();
    let (base, stats) =
        reshuffle_sg::build_state_graph_stats(&stg, &opts(1)).expect("serial build");
    assert_eq!(stats.states, 2 * 3usize.pow(9) + 2);
    assert!(
        stats.peak_frontier > 1024,
        "frontier {} never crossed the spawn threshold — this test would be vacuous",
        stats.peak_frontier
    );
    for threads in [2, 8] {
        let sg = build_state_graph_with(&stg, &opts(threads)).unwrap();
        assert_eq!(
            base.fingerprint(),
            sg.fingerprint(),
            "spawned build differs at {threads} threads"
        );
        assert_eq!(base.num_arcs(), sg.num_arcs());
        assert_eq!(base.codes(), sg.codes());
    }
}

#[test]
fn restrict_on_csr_matches_full_rebuild_across_corpus() {
    // For every complete corpus entry and every legal serializing
    // direction of every concurrent pair, the incremental CSR product
    // must be isomorphic to rebuilding the rewritten STG from scratch.
    let mut checked = 0usize;
    for (name, src) in examples::ALL {
        let stg = parse_g(src).unwrap();
        if stg.is_partial() {
            continue;
        }
        let sg = build_state_graph(&stg).unwrap();
        for (a, b) in concurrent_pairs(&sg) {
            for (from, to) in [(a, b), (b, a)] {
                // Same legality conditions the reduction search uses:
                // never delay an input, single-instance edges only.
                if !sg.signals()[to.signal.index()].kind.is_noninput() {
                    continue;
                }
                let &[from_t] = stg.transitions_of_edge(from).as_slice() else {
                    continue;
                };
                let &[to_t] = stg.transitions_of_edge(to).as_slice() else {
                    continue;
                };
                let Ok(product) =
                    restrict_with_place(&sg, &[EventId(from_t.0)], &[EventId(to_t.0)])
                else {
                    continue; // the rewrite would be unsafe
                };
                let mut stg2 = stg.clone();
                structural::insert_causal_place(&mut stg2, from_t, to_t).unwrap();
                let rebuilt = build_state_graph(&stg2).unwrap();
                assert_eq!(
                    product.fingerprint(),
                    rebuilt.fingerprint(),
                    "{name}: product for {from:?} -> {to:?} drifted from a full rebuild"
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 4, "too few serializations exercised: {checked}");
}

#[test]
fn marking_arena_is_consistent_with_per_state_views() {
    for (name, src) in examples::ALL {
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        assert!(
            sg.num_interned_markings() > 0,
            "{name}: built graph lost its markings"
        );
        assert!(
            sg.num_interned_markings() <= sg.num_states(),
            "{name}: arena larger than the state set"
        );
        // Every per-state view points into the interned arena (no
        // clones), and the arena holds no duplicate markings.
        let arena = sg.interned_markings();
        assert_eq!(arena.len(), sg.num_interned_markings());
        for s in sg.state_ids() {
            let id = sg
                .marking_id(s)
                .unwrap_or_else(|| panic!("{name}: state {s} lost its marking"));
            let via_arena = &arena[id.index()];
            let via_state = sg
                .marking_of(s)
                .unwrap_or_else(|| panic!("{name}: state {s} lost its marking"));
            assert!(
                std::ptr::eq(via_arena, via_state),
                "{name}: state {s} marking is not a view into the arena"
            );
        }
        for (i, a) in arena.iter().enumerate() {
            for b in &arena[i + 1..] {
                assert_ne!(a, b, "{name}: arena holds a duplicate marking");
            }
        }
    }
}
