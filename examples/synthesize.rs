//! Synthesize a `.g` STG from the command line:
//!
//! ```sh
//! cargo run --example synthesize -- path/to/spec.g
//! ```
//!
//! With no argument, runs the built-in xyz example. Partial
//! specifications (`.handshake` channels, toggle events) are expanded
//! automatically — the ranked reshuffling selection of Section 3.
//! `--diag` additionally prints the per-stage wall-time/counter
//! summary the pipeline recorded about itself.

use std::process::ExitCode;

use reshuffle::{ExpansionOptions, Pipeline};
use reshuffle_bench::examples::XYZ_G;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let show_diag = args.iter().any(|a| a == "--diag");
    if let Some(unknown) = args.iter().find(|a| a.starts_with("--") && *a != "--diag") {
        eprintln!("error: unknown flag `{unknown}` (expected --diag and/or a .g file path)");
        return ExitCode::FAILURE;
    }
    let source = match args.iter().find(|a| !a.starts_with("--")) {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => XYZ_G.to_string(),
    };
    let opts = reshuffle::PipelineOptions::new().with_expand(ExpansionOptions::default());
    let parsed = match Pipeline::from_g(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match parsed.run(&opts) {
        Ok(done) => {
            let s = done.synthesis();
            if !s.expansion.is_empty() {
                println!("reshuffling choices: {}", s.expansion.join(", "));
            }
            if !s.inserted.is_empty() {
                println!("inserted state signals: {}", s.inserted.join(", "));
            }
            println!("{}", s.netlist.describe());
            if show_diag {
                print!("{}", done.diagnostics().summary());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
