//! Synthesize a `.g` STG from the command line:
//!
//! ```sh
//! cargo run --example synthesize -- path/to/spec.g
//! ```
//!
//! With no argument, runs the built-in xyz example. Partial
//! specifications (`.handshake` channels, toggle events) are expanded
//! automatically — the ranked reshuffling selection of Section 3.

use std::process::ExitCode;

use reshuffle::ExpansionOptions;
use reshuffle_bench::examples::XYZ_G;

fn main() -> ExitCode {
    let source = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => XYZ_G.to_string(),
    };
    let opts = reshuffle::PipelineOptions {
        expand: Some(ExpansionOptions::default()),
        ..Default::default()
    };
    match reshuffle::synthesize_with(&source, &opts) {
        Ok(s) => {
            if !s.expansion.is_empty() {
                println!("reshuffling choices: {}", s.expansion.join(", "));
            }
            if !s.inserted.is_empty() {
                println!("inserted state signals: {}", s.inserted.join(", "));
            }
            println!("{}", s.netlist.describe());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
