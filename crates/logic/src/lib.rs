//! Two-level logic for asynchronous circuit synthesis.
//!
//! The DAC 1999 flow estimates and synthesizes the next-state logic of
//! every output signal. No suitable logic-minimization crate exists, so
//! this crate implements the substrate from scratch:
//!
//! * [`Cube`]/[`Cover`] — product terms and sums of products over ≤ 64
//!   variables, with the usual cube algebra;
//! * [`tautology`] — tautology/containment via unate reduction and
//!   Shannon splitting;
//! * [`complement`] — cover complementation;
//! * [`minimize`] — heuristic espresso-style minimization
//!   (EXPAND/IRREDUNDANT/REDUCE loop);
//! * [`exact_minimize`] — Quine–McCluskey + branch-and-bound covering,
//!   for exact literal counts on paper-sized functions;
//! * [`factor`]/[`Expr`] — algebraic factoring feeding technology
//!   mapping;
//! * [`Bdd`] — a small ROBDD package for equivalence checking, with a
//!   near-linear minterm-list loader and interval ISOP extraction;
//! * [`minimize_codes`] — BDD-backed minimization for functions given
//!   as huge minterm lists (million-state next-state tables), where the
//!   cube-list algorithms above would be quadratic in the state count.
//!
//! # Example
//!
//! ```
//! use reshuffle_logic::{Cover, minimize};
//!
//! // f = Σm(1,3) over 2 variables minimizes to the single literal x0.
//! let on = Cover::from_minterms(2, &[0b01, 0b11]);
//! let dc = Cover::empty(2);
//! let f = minimize(&on, &dc);
//! assert_eq!(f.len(), 1);
//! assert_eq!(f.num_literals(), 1);
//! ```

#![warn(missing_docs)]

pub mod bdd;
mod complement;
mod cover;
mod cube;
mod espresso;
mod factor;
pub mod interval;
mod qm;
pub mod tautology;

pub use bdd::Bdd;
pub use complement::{complement, complement_cube};
pub use cover::Cover;
pub use cube::{mask, Cube, MAX_VARS};
pub use espresso::{cost, minimize, verify_minimized, Cost};
pub use factor::{factor, sop_expr, Expr};
pub use interval::{minimize_codes, minimize_codes_with_bdd};
pub use qm::{exact_minimize, prime_implicants};
