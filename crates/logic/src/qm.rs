//! Exact two-level minimization: Quine–McCluskey prime generation plus
//! branch-and-bound unate covering. Exponential in general — intended
//! for functions of at most ~14 variables and used to cross-check the
//! heuristic minimizer and to get exact literal counts for the paper's
//! small controllers.

use std::collections::HashSet;

use crate::cover::Cover;
use crate::cube::Cube;

/// Generates all prime implicants of `on ∪ dc` given as minterm codes.
pub fn prime_implicants(num_vars: usize, on: &[u64], dc: &[u64]) -> Vec<Cube> {
    let mut current: HashSet<Cube> = on
        .iter()
        .chain(dc.iter())
        .map(|&m| Cube::minterm(m, num_vars))
        .collect();
    let mut primes: Vec<Cube> = Vec::new();
    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().copied().collect();
        let mut merged: HashSet<Cube> = HashSet::new();
        let mut was_merged: Vec<bool> = vec![false; cubes.len()];
        for i in 0..cubes.len() {
            for j in i + 1..cubes.len() {
                let (a, b) = (cubes[i], cubes[j]);
                // Mergeable: same variable support, distance 1.
                if (a.pos | a.neg) == (b.pos | b.neg) && a.distance(b) == 1 {
                    let m = a.supercube(b);
                    merged.insert(m);
                    was_merged[i] = true;
                    was_merged[j] = true;
                }
            }
        }
        for (i, &c) in cubes.iter().enumerate() {
            if !was_merged[i] {
                primes.push(c);
            }
        }
        current = merged;
    }
    primes.sort_unstable();
    primes.dedup();
    primes
}

/// Exact minimum cover: fewest cubes, ties broken by fewest literals.
///
/// Returns the chosen primes as a [`Cover`].
pub fn exact_minimize(num_vars: usize, on: &[u64], dc: &[u64]) -> Cover {
    if on.is_empty() {
        return Cover::empty(num_vars);
    }
    let primes = prime_implicants(num_vars, on, dc);
    // Deduplicate on-minterms.
    let mut minterms: Vec<u64> = on.to_vec();
    minterms.sort_unstable();
    minterms.dedup();
    // Covering table: for each minterm, which primes cover it.
    let covering: Vec<Vec<usize>> = minterms
        .iter()
        .map(|&m| {
            primes
                .iter()
                .enumerate()
                .filter(|(_, p)| p.covers_point(m))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    // Branch and bound.
    struct Search<'a> {
        primes: &'a [Cube],
        covering: &'a [Vec<usize>],
        best: Option<(usize, u32, Vec<usize>)>,
    }
    impl Search<'_> {
        fn go(&mut self, chosen: &mut Vec<usize>, covered: &mut Vec<bool>, lits: u32) {
            if let Some((bc, bl, _)) = &self.best {
                if chosen.len() > *bc || (chosen.len() == *bc && lits >= *bl) {
                    return;
                }
            }
            // Pick the uncovered minterm with the fewest candidate primes.
            let next = covered
                .iter()
                .enumerate()
                .filter(|&(_, &c)| !c)
                .min_by_key(|&(i, _)| self.covering[i].len())
                .map(|(i, _)| i);
            let Some(mi) = next else {
                let better = match &self.best {
                    None => true,
                    Some((bc, bl, _)) => chosen.len() < *bc || (chosen.len() == *bc && lits < *bl),
                };
                if better {
                    self.best = Some((chosen.len(), lits, chosen.clone()));
                }
                return;
            };
            if let Some((bc, _, _)) = &self.best {
                if chosen.len() + 1 > *bc {
                    return;
                }
            }
            let candidates = self.covering[mi].clone();
            for p in candidates {
                if chosen.contains(&p) {
                    continue;
                }
                let newly: Vec<usize> = covered
                    .iter()
                    .enumerate()
                    .filter(|&(i, &c)| !c && self.covering[i].contains(&p))
                    .map(|(i, _)| i)
                    .collect();
                for &i in &newly {
                    covered[i] = true;
                }
                chosen.push(p);
                self.go(chosen, covered, lits + self.primes[p].num_literals());
                chosen.pop();
                for &i in &newly {
                    covered[i] = false;
                }
            }
        }
    }

    let mut search = Search {
        primes: &primes,
        covering: &covering,
        best: None,
    };
    let mut covered = vec![false; minterms.len()];
    // Essential primes first: minterms covered by exactly one prime.
    let mut chosen: Vec<usize> = Vec::new();
    let mut lits = 0u32;
    for (i, cands) in covering.iter().enumerate() {
        if cands.len() == 1 && !covered[i] {
            let p = cands[0];
            if !chosen.contains(&p) {
                chosen.push(p);
                lits += primes[p].num_literals();
                for (j, c) in covered.iter_mut().enumerate() {
                    if covering[j].contains(&p) {
                        *c = true;
                    }
                }
            }
        }
    }
    search.go(&mut chosen, &mut covered, lits);
    let (_, _, sel) = search.best.expect("some cover exists");
    Cover::from_cubes(num_vars, sel.into_iter().map(|i| primes[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::espresso::{cost, minimize};
    use crate::tautology::cover_equal;

    #[test]
    fn primes_of_small_function() {
        // f = Σm(0,1,2) over 2 vars: primes a' (m0,m2... wait var0=LSB)
        // m0=00, m1=01, m2=10: primes are var0' (covers 0,2) and
        // var1' (covers 0,1).
        let primes = prime_implicants(2, &[0, 1, 2], &[]);
        assert_eq!(primes.len(), 2);
        for p in &primes {
            assert_eq!(p.num_literals(), 1);
        }
    }

    #[test]
    fn exact_on_xor() {
        let r = exact_minimize(2, &[1, 2], &[]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.num_literals(), 4);
    }

    #[test]
    fn exact_uses_dont_cares() {
        let r = exact_minimize(2, &[1], &[3]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.num_literals(), 1);
    }

    #[test]
    fn essential_prime_path() {
        // Σm(0,1,5,7): essential primes force specific selections.
        let on = [0u64, 1, 5, 7];
        let r = exact_minimize(3, &on, &[]);
        let onc = Cover::from_minterms(3, &on);
        assert!(cover_equal(&r, &onc));
        assert!(r.len() <= 3);
    }

    #[test]
    fn exact_never_worse_than_heuristic() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        for trial in 0..20 {
            seed = seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let nv = 3 + (trial % 2) as usize;
            let mut on_codes = Vec::new();
            for m in 0..(1u64 << nv) {
                if (seed >> (m % 59)) & 1 == 1 {
                    on_codes.push(m);
                }
            }
            if on_codes.is_empty() {
                continue;
            }
            let on = Cover::from_minterms(nv, &on_codes);
            let dc = Cover::empty(nv);
            let exact = exact_minimize(nv, &on_codes, &[]);
            let heur = minimize(&on, &dc);
            assert!(cover_equal(&exact, &on), "trial {trial}");
            assert!(
                cost(&exact) <= cost(&heur),
                "trial {trial}: exact {exact} worse than heuristic {heur}"
            );
        }
    }
}
