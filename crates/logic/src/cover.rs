//! Covers: sums of product terms.

use std::fmt;

use crate::cube::{mask, Cube};

/// A sum of cubes over a fixed number of variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    cubes: Vec<Cube>,
    num_vars: usize,
}

impl Cover {
    /// The empty cover (constant 0).
    pub fn empty(num_vars: usize) -> Cover {
        Cover {
            cubes: Vec::new(),
            num_vars,
        }
    }

    /// The universal cover (constant 1).
    pub fn one(num_vars: usize) -> Cover {
        Cover {
            cubes: vec![Cube::top()],
            num_vars,
        }
    }

    /// A cover from cubes; empty cubes are dropped.
    pub fn from_cubes(num_vars: usize, cubes: impl IntoIterator<Item = Cube>) -> Cover {
        Cover {
            cubes: cubes.into_iter().filter(|c| !c.is_empty()).collect(),
            num_vars,
        }
    }

    /// A cover of minterms from raw codes.
    pub fn from_minterms(num_vars: usize, codes: &[u64]) -> Cover {
        Cover {
            cubes: codes
                .iter()
                .map(|&code| Cube::minterm(code, num_vars))
                .collect(),
            num_vars,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True if constant 0 (no cubes).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total number of literals (the paper's logic-complexity estimate).
    pub fn num_literals(&self) -> u32 {
        self.cubes.iter().map(|c| c.num_literals()).sum()
    }

    /// Adds a cube (ignored if empty).
    pub fn push(&mut self, c: Cube) {
        if !c.is_empty() {
            self.cubes.push(c);
        }
    }

    /// True if some cube covers the minterm.
    pub fn covers_point(&self, code: u64) -> bool {
        self.cubes.iter().any(|c| c.covers_point(code))
    }

    /// True if some single cube covers `cube` entirely.
    pub fn single_cube_covers(&self, cube: Cube) -> bool {
        self.cubes.iter().any(|c| c.covers(cube))
    }

    /// The union of two covers.
    pub fn or(&self, other: &Cover) -> Cover {
        assert_eq!(self.num_vars, other.num_vars);
        let mut cubes = self.cubes.clone();
        cubes.extend_from_slice(&other.cubes);
        Cover {
            cubes,
            num_vars: self.num_vars,
        }
    }

    /// The product of two covers (pairwise cube intersections).
    pub fn and(&self, other: &Cover) -> Cover {
        assert_eq!(self.num_vars, other.num_vars);
        let mut out = Cover::empty(self.num_vars);
        for &a in &self.cubes {
            for &b in &other.cubes {
                out.push(a.intersect(b));
            }
        }
        out
    }

    /// The cofactor of the cover with respect to `var = value`.
    pub fn cofactor(&self, var: usize, value: bool) -> Cover {
        Cover {
            cubes: self
                .cubes
                .iter()
                .filter_map(|c| c.cofactor(var, value))
                .collect(),
            num_vars: self.num_vars,
        }
    }

    /// The cofactor with respect to a cube: keep cubes intersecting `c`,
    /// dropping the literals of `c` (used by tautology-based checks).
    pub fn cofactor_cube(&self, c: Cube) -> Cover {
        let lits = c.pos | c.neg;
        Cover {
            cubes: self
                .cubes
                .iter()
                .filter(|&&x| x.intersects(c))
                .map(|&x| Cube {
                    pos: x.pos & !lits,
                    neg: x.neg & !lits,
                })
                .collect(),
            num_vars: self.num_vars,
        }
    }

    /// Removes cubes covered by another single cube of the cover, and
    /// duplicate cubes. Cheap cleanup, not full irredundancy.
    pub fn weed(&mut self) {
        self.cubes.sort_unstable();
        self.cubes.dedup();
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        // Wider cubes (fewer literals) first so narrower ones get culled.
        let mut sorted = cubes;
        sorted.sort_by_key(|c| c.num_literals());
        'outer: for c in sorted {
            for k in &kept {
                if k.covers(c) {
                    continue 'outer;
                }
            }
            kept.push(c);
        }
        kept.sort_unstable();
        self.cubes = kept;
    }

    /// Exhaustively enumerates covered minterms (for testing; exponential
    /// in `num_vars`, caller should keep `num_vars` small).
    pub fn enumerate_minterms(&self) -> Vec<u64> {
        let m = mask(self.num_vars);
        let mut out = Vec::new();
        // Only sensible for small var counts.
        assert!(self.num_vars <= 24, "enumerate_minterms is for tests");
        for code in 0..=m {
            if self.covers_point(code) {
                out.push(code);
            }
            if code == m {
                break;
            }
        }
        out
    }

    /// Renders the cover as a named sum of products.
    pub fn render_named(&self, names: &[String]) -> String {
        if self.cubes.is_empty() {
            return "0".to_string();
        }
        self.cubes
            .iter()
            .map(|c| c.render_named(names))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        let parts: Vec<String> = self.cubes.iter().map(|c| c.render(self.num_vars)).collect();
        write!(f, "{}", parts.join(" + "))
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover sized at [`crate::cube::MAX_VARS`];
    /// prefer [`Cover::from_cubes`] when the variable count matters.
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        Cover::from_cubes(crate::cube::MAX_VARS, iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_and_cofactor() {
        // f = a + b' over 2 vars.
        let f = Cover::from_cubes(2, [Cube::literal(0, true), Cube::literal(1, false)]);
        assert!(f.covers_point(0b01)); // a=1,b=0
        assert!(f.covers_point(0b00)); // b=0
        assert!(!f.covers_point(0b10)); // a=0,b=1
        let fa0 = f.cofactor(0, false);
        // f|a=0 = b'
        assert_eq!(fa0.len(), 1);
        assert!(fa0.covers_point(0b00));
        assert!(!fa0.covers_point(0b10));
        let g = Cover::from_cubes(2, [Cube::literal(1, true)]);
        let fg = f.and(&g);
        // (a + b') & b = ab
        assert!(fg.covers_point(0b11));
        assert!(!fg.covers_point(0b01));
        assert!(!fg.covers_point(0b00));
    }

    #[test]
    fn weed_removes_contained() {
        let mut f = Cover::from_cubes(
            2,
            [
                Cube::literal(0, true),
                Cube::literal(0, true).intersect(Cube::literal(1, true)),
                Cube::literal(0, true),
            ],
        );
        f.weed();
        assert_eq!(f.len(), 1);
        assert_eq!(f.cubes()[0], Cube::literal(0, true));
    }

    #[test]
    fn minterm_enumeration() {
        let f = Cover::from_minterms(3, &[0, 7]);
        assert_eq!(f.enumerate_minterms(), vec![0, 7]);
        assert_eq!(f.num_literals(), 6);
    }

    #[test]
    fn cofactor_cube_drops_literals() {
        // f = ab + a'c; f cofactored by cube a -> b (+ nothing from a'c).
        let ab = Cube::literal(0, true).intersect(Cube::literal(1, true));
        let a_c = Cube::literal(0, false).intersect(Cube::literal(2, true));
        let f = Cover::from_cubes(3, [ab, a_c]);
        let fc = f.cofactor_cube(Cube::literal(0, true));
        assert_eq!(fc.len(), 1);
        assert_eq!(fc.cubes()[0], Cube::literal(1, true));
    }

    #[test]
    fn display_and_named() {
        let f = Cover::from_cubes(2, [Cube::literal(0, true)]);
        let names: Vec<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        assert_eq!(f.render_named(&names), "x");
        assert_eq!(Cover::empty(2).render_named(&names), "0");
        assert_eq!(Cover::one(2).render_named(&names), "1");
    }
}
