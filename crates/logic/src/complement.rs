//! Cover complementation by Shannon expansion.

use crate::cover::Cover;
use crate::cube::{Cube, MAX_VARS};

/// Computes a cover of the complement of `f` over its variable set.
pub fn complement(f: &Cover) -> Cover {
    comp_rec(f.clone(), f.num_vars())
}

fn comp_rec(mut f: Cover, num_vars: usize) -> Cover {
    if f.is_empty() {
        return Cover::one(num_vars);
    }
    if f.cubes().iter().any(|c| c.is_top()) {
        return Cover::empty(num_vars);
    }
    f.weed();
    if f.len() == 1 {
        return complement_cube(f.cubes()[0], num_vars);
    }
    // Split on the most frequent variable.
    let mut counts = [0usize; MAX_VARS];
    for c in f.cubes() {
        let mut bits = c.pos | c.neg;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            counts[i] += 1;
            bits &= bits - 1;
        }
    }
    let var = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap();
    let f0 = comp_rec(f.cofactor(var, false), num_vars);
    let f1 = comp_rec(f.cofactor(var, true), num_vars);
    // complement = x'·f0' + x·f1' with single-cube absorption cleanup.
    let mut out = Cover::empty(num_vars);
    for &c in f0.cubes() {
        // If the same cube appears in both halves it is independent of x.
        if f1.cubes().contains(&c) {
            out.push(c);
        } else {
            out.push(c.intersect(Cube::literal(var, false)));
        }
    }
    for &c in f1.cubes() {
        if !f0.cubes().contains(&c) {
            out.push(c.intersect(Cube::literal(var, true)));
        }
    }
    out.weed();
    out
}

/// De Morgan complement of a single cube: one cube per literal.
pub fn complement_cube(c: Cube, num_vars: usize) -> Cover {
    let mut out = Cover::empty(num_vars);
    for v in c.vars() {
        match c.get(v) {
            Some(true) => out.push(Cube::literal(v, false)),
            Some(false) => out.push(Cube::literal(v, true)),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tautology::{cover_equal, is_tautology};

    fn lit(v: usize, p: bool) -> Cube {
        Cube::literal(v, p)
    }

    #[test]
    fn complement_of_constants() {
        assert!(is_tautology(&complement(&Cover::empty(3))));
        assert!(complement(&Cover::one(3)).is_empty());
    }

    #[test]
    fn complement_of_cube() {
        // (ab)' = a' + b'.
        let f = Cover::from_cubes(2, [lit(0, true).intersect(lit(1, true))]);
        let g = complement(&f);
        let expect = Cover::from_cubes(2, [lit(0, false), lit(1, false)]);
        assert!(cover_equal(&g, &expect));
    }

    #[test]
    fn complement_partitions_space() {
        let cases = [
            Cover::from_cubes(3, [lit(0, true), lit(1, false).intersect(lit(2, true))]),
            Cover::from_minterms(3, &[1, 3, 5]),
            Cover::from_cubes(
                4,
                [
                    lit(0, true).intersect(lit(3, false)),
                    lit(1, true),
                    lit(2, false).intersect(lit(0, false)),
                ],
            ),
        ];
        for f in &cases {
            let fc = complement(f);
            // f ∪ f' is a tautology; f ∩ f' is empty.
            assert!(is_tautology(&f.or(&fc)), "f={f} f'={fc}");
            let inter = f.and(&fc);
            for m in 0..(1u64 << f.num_vars()) {
                assert!(!inter.covers_point(m), "overlap at {m:b} for {f}");
            }
        }
    }

    #[test]
    fn double_complement_is_identity() {
        let f = Cover::from_cubes(3, [lit(0, true).intersect(lit(1, true)), lit(2, false)]);
        let ff = complement(&complement(&f));
        assert!(cover_equal(&f, &ff));
    }
}
