//! Heuristic two-level minimization in the espresso style:
//! EXPAND → IRREDUNDANT → (REDUCE → EXPAND → IRREDUNDANT)*.
//!
//! The implementation trades the blocking/covering matrices of the
//! original for direct cube algebra (our functions have at most a few
//! thousand minterms over ≤ 64 variables), but keeps the loop structure
//! and the guarantees: the result covers the on-set, avoids the off-set,
//! and is made of prime, irredundant cubes.

use crate::complement::complement;
use crate::cover::Cover;
use crate::cube::Cube;
use crate::tautology::{cover_contains, cube_covered};

/// Cost of a cover: cube count then literal count (lexicographic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cost {
    /// Number of cubes (product terms).
    pub cubes: usize,
    /// Number of literals.
    pub literals: u32,
}

/// The cost of a cover.
pub fn cost(f: &Cover) -> Cost {
    Cost {
        cubes: f.len(),
        literals: f.num_literals(),
    }
}

/// Minimizes `on` against the don't-care set `dc`.
///
/// The result `R` satisfies `on ⊆ R ⊆ on ∪ dc`, checked by
/// [`verify_minimized`] in debug builds.
pub fn minimize(on: &Cover, dc: &Cover) -> Cover {
    assert_eq!(on.num_vars(), dc.num_vars());
    let num_vars = on.num_vars();
    if on.is_empty() {
        return Cover::empty(num_vars);
    }
    let care_union = on.or(dc);
    let off = complement(&care_union);
    if off.is_empty() {
        return Cover::one(num_vars);
    }

    let mut f = on.clone();
    f.weed();
    expand(&mut f, &off);
    irredundant(&mut f, dc);
    let mut best = f.clone();
    let mut best_cost = cost(&best);
    for _round in 0..8 {
        reduce(&mut f, dc);
        expand(&mut f, &off);
        irredundant(&mut f, dc);
        let c = cost(&f);
        if c < best_cost {
            best = f.clone();
            best_cost = c;
        } else {
            break;
        }
    }
    debug_assert!(verify_minimized(&best, on, dc), "minimize postcondition");
    best
}

/// Checks `on ⊆ r` and `r ∩ off = ∅` (i.e. `r ⊆ on ∪ dc`).
pub fn verify_minimized(r: &Cover, on: &Cover, dc: &Cover) -> bool {
    cover_contains(r, on) && cover_contains(&on.or(dc), r)
}

/// EXPAND: make each cube prime by greedily raising literals while
/// remaining disjoint from the off-set; drop cubes covered by an
/// expanded one.
fn expand(f: &mut Cover, off: &Cover) {
    let num_vars = f.num_vars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Smaller cubes first: they benefit most from expansion.
    cubes.sort_by_key(|c| std::cmp::Reverse(c.num_literals()));
    let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
    for (i, &c) in cubes.iter().enumerate() {
        if kept.iter().any(|k| k.covers(c)) {
            continue;
        }
        let mut cur = c;
        // Literal raise order: prefer dropping literals that block the
        // fewest off-cubes (cheap heuristic: frequency in the off-set).
        let mut lits: Vec<usize> = cur.vars().collect();
        lits.sort_by_key(|&v| {
            off.cubes()
                .iter()
                .filter(|o| (o.pos | o.neg) & (1 << v) != 0)
                .count()
        });
        for v in lits {
            let raised = cur.with(v, None);
            if !off.cubes().iter().any(|o| o.intersects(raised)) {
                cur = raised;
            }
        }
        // Drop the remaining unprocessed cubes covered by `cur` lazily
        // via the `kept.covers` check at loop head; also cull the tail.
        let _ = i;
        kept.push(cur);
    }
    let mut out = Cover::from_cubes(num_vars, kept);
    out.weed();
    *f = out;
}

/// IRREDUNDANT: greedily remove cubes covered by the rest of the cover
/// plus the don't-care set.
fn irredundant(f: &mut Cover, dc: &Cover) {
    let num_vars = f.num_vars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Try to remove large cubes last (keep the broad ones).
    cubes.sort_by_key(|c| std::cmp::Reverse(c.num_literals()));
    let mut i = 0;
    while i < cubes.len() {
        let c = cubes[i];
        let rest = Cover::from_cubes(
            num_vars,
            cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &x)| x),
        )
        .or(dc);
        if cube_covered(&rest, c) {
            cubes.remove(i);
        } else {
            i += 1;
        }
    }
    *f = Cover::from_cubes(num_vars, cubes);
}

/// REDUCE: shrink each cube to the supercube of the points it alone
/// covers (giving EXPAND a fresh direction to grow).
fn reduce(f: &mut Cover, dc: &Cover) {
    let num_vars = f.num_vars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    cubes.sort_by_key(|c| c.num_literals());
    for i in 0..cubes.len() {
        let c = cubes[i];
        let rest = Cover::from_cubes(
            num_vars,
            cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &x)| x),
        )
        .or(dc);
        // Points of c not covered by rest: c ∩ complement(rest|c).
        let unique_part = complement(&rest.cofactor_cube(c));
        if unique_part.is_empty() {
            // Fully redundant; leave for irredundant to drop.
            continue;
        }
        let mut sc = unique_part.cubes()[0];
        for &u in &unique_part.cubes()[1..] {
            sc = sc.supercube(u);
        }
        cubes[i] = c.intersect(sc);
    }
    *f = Cover::from_cubes(num_vars, cubes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tautology::cover_equal;

    fn lit(v: usize, p: bool) -> Cube {
        Cube::literal(v, p)
    }

    #[test]
    fn minimizes_adjacent_minterms() {
        // f = m(0,1) over 2 vars = a' (var0 is LSB).
        let on = Cover::from_minterms(2, &[0b00, 0b10]);
        let dc = Cover::empty(2);
        let r = minimize(&on, &dc);
        assert_eq!(r.len(), 1);
        assert_eq!(r.cubes()[0], lit(0, false));
    }

    #[test]
    fn uses_dont_cares() {
        // on = m(1), dc = m(3) over 2 vars -> var0 alone.
        let on = Cover::from_minterms(2, &[0b01]);
        let dc = Cover::from_minterms(2, &[0b11]);
        let r = minimize(&on, &dc);
        assert_eq!(r.len(), 1);
        assert_eq!(r.cubes()[0], lit(0, true));
        assert!(verify_minimized(&r, &on, &dc));
    }

    #[test]
    fn full_cover_collapses_to_one() {
        let on = Cover::from_minterms(3, &(0..8).collect::<Vec<u64>>());
        let r = minimize(&on, &Cover::empty(3));
        assert_eq!(r.len(), 1);
        assert!(r.cubes()[0].is_top());
    }

    #[test]
    fn xor_stays_two_cubes() {
        let on = Cover::from_minterms(2, &[0b01, 0b10]);
        let r = minimize(&on, &Cover::empty(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.num_literals(), 4);
        assert!(cover_equal(&r, &on));
    }

    #[test]
    fn classic_espresso_example() {
        // f(a,b,c,d) = Σm(0,1,2,5,6,7,8,9,10,14), var0 = a (LSB).
        // Known minimal: 4 cubes (one of several optima).
        let on = Cover::from_minterms(4, &[0, 1, 2, 5, 6, 7, 8, 9, 10, 14]);
        let r = minimize(&on, &Cover::empty(4));
        assert!(verify_minimized(&r, &on, &Cover::empty(4)));
        assert!(cover_equal(&r, &on));
        assert!(r.len() <= 5, "got {} cubes: {r}", r.len());
    }

    #[test]
    fn random_functions_roundtrip() {
        // Deterministic pseudo-random functions; result must equal input
        // exactly when dc is empty.
        let mut seed = 0x2545F4914F6CDD1Du64;
        for trial in 0..25 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let nv = 3 + (trial % 3);
            let mut on_codes = Vec::new();
            for m in 0..(1u64 << nv) {
                if (seed >> (m % 61)) & 1 == 1 {
                    on_codes.push(m);
                }
            }
            let on = Cover::from_minterms(nv as usize, &on_codes);
            let r = minimize(&on, &Cover::empty(nv as usize));
            assert!(cover_equal(&r, &on), "trial {trial}: {on} != {r} (nv={nv})");
            assert!(cost(&r) <= cost(&on));
        }
    }
}
