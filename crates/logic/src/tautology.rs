//! Tautology checking by unate reduction and Shannon splitting — the
//! workhorse behind containment and redundancy tests.

use crate::cover::Cover;
use crate::cube::Cube;

/// True if the cover evaluates to 1 for every assignment.
pub fn is_tautology(f: &Cover) -> bool {
    taut_rec(f.clone())
}

fn taut_rec(mut f: Cover) -> bool {
    // Quick outs.
    if f.cubes().iter().any(|c| c.is_top()) {
        return true;
    }
    if f.is_empty() {
        return false;
    }
    f.weed();
    if f.cubes().iter().any(|c| c.is_top()) {
        return true;
    }

    // Unate reduction: if some variable appears in only one phase, the
    // cover is a tautology iff the cofactor against that phase's
    // *absence* is — i.e. cubes with the literal can never help cover
    // the opposite half, so drop them and recurse on the rest.
    let mut pos_mask = 0u64;
    let mut neg_mask = 0u64;
    for c in f.cubes() {
        pos_mask |= c.pos;
        neg_mask |= c.neg;
    }
    let unate = (pos_mask ^ neg_mask) & (pos_mask | neg_mask);
    if unate != 0 {
        let var = unate.trailing_zeros() as usize;
        // Keep only cubes without a literal on `var`: for the cover to
        // be a tautology it must cover the half-space where the unate
        // literal is false, and there only literal-free cubes apply.
        let value = neg_mask & (1 << var) != 0; // literal is negative -> check var=1 side
        let g = f.cofactor(var, value);
        let reduced = Cover::from_cubes(
            f.num_vars(),
            g.cubes()
                .iter()
                .copied()
                .filter(|c| (c.pos | c.neg) & (1 << var) == 0),
        );
        return taut_rec(reduced);
    }

    // Binate splitting on the most frequent variable.
    let mut counts = [0usize; 64];
    for c in f.cubes() {
        let used = c.pos | c.neg;
        let mut bits = used;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            counts[i] += 1;
            bits &= bits - 1;
        }
    }
    let Some(var) = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
    else {
        // No literals anywhere: all cubes are top (handled above) or
        // the cover is empty.
        return false;
    };
    taut_rec(f.cofactor(var, false)) && taut_rec(f.cofactor(var, true))
}

/// True if cube `c` is covered by cover `f` (`c ⊆ f`): the cofactor of
/// `f` by `c` must be a tautology.
pub fn cube_covered(f: &Cover, c: Cube) -> bool {
    if c.is_empty() {
        return true;
    }
    is_tautology(&f.cofactor_cube(c))
}

/// True if every cube of `g` is covered by `f` (`g ⊆ f`).
pub fn cover_contains(f: &Cover, g: &Cover) -> bool {
    g.cubes().iter().all(|&c| cube_covered(f, c))
}

/// True if the covers denote the same function.
pub fn cover_equal(f: &Cover, g: &Cover) -> bool {
    cover_contains(f, g) && cover_contains(g, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, p: bool) -> Cube {
        Cube::literal(v, p)
    }

    #[test]
    fn simple_tautologies() {
        assert!(is_tautology(&Cover::one(3)));
        assert!(!is_tautology(&Cover::empty(3)));
        // a + a' = 1
        let f = Cover::from_cubes(1, [lit(0, true), lit(0, false)]);
        assert!(is_tautology(&f));
        // a + b is not.
        let g = Cover::from_cubes(2, [lit(0, true), lit(1, true)]);
        assert!(!is_tautology(&g));
    }

    #[test]
    fn three_var_tautology() {
        // ab + a'b + b' = 1 (b + b').
        let f = Cover::from_cubes(
            2,
            [
                lit(0, true).intersect(lit(1, true)),
                lit(0, false).intersect(lit(1, true)),
                lit(1, false),
            ],
        );
        assert!(is_tautology(&f));
    }

    #[test]
    fn xor_cover_is_not_tautology() {
        // a xor b = ab' + a'b.
        let f = Cover::from_cubes(
            2,
            [
                lit(0, true).intersect(lit(1, false)),
                lit(0, false).intersect(lit(1, true)),
            ],
        );
        assert!(!is_tautology(&f));
        // Adding the other two minterms completes it.
        let g = f.or(&Cover::from_cubes(
            2,
            [
                lit(0, true).intersect(lit(1, true)),
                lit(0, false).intersect(lit(1, false)),
            ],
        ));
        assert!(is_tautology(&g));
    }

    #[test]
    fn containment_checks() {
        // ab ⊆ a.
        let f = Cover::from_cubes(2, [lit(0, true)]);
        let ab = lit(0, true).intersect(lit(1, true));
        assert!(cube_covered(&f, ab));
        assert!(!cube_covered(&f, lit(1, true)));
        // Multi-cube coverage: ab + ab' covers a.
        let g = Cover::from_cubes(
            2,
            [
                lit(0, true).intersect(lit(1, true)),
                lit(0, true).intersect(lit(1, false)),
            ],
        );
        assert!(cube_covered(&g, lit(0, true)));
        assert!(cover_equal(&f, &g));
    }

    #[test]
    fn brute_force_cross_check() {
        // Random-ish covers over 4 vars: compare with minterm truth.
        let covers = [
            Cover::from_cubes(4, [lit(0, true), lit(1, false).intersect(lit(2, true))]),
            Cover::from_cubes(
                4,
                [
                    lit(0, true),
                    lit(0, false).intersect(lit(1, true)),
                    lit(1, false),
                ],
            ),
            Cover::from_minterms(4, &(0..16).collect::<Vec<u64>>()),
        ];
        for f in &covers {
            let truth_taut = (0..16u64).all(|m| f.covers_point(m));
            assert_eq!(is_tautology(f), truth_taut, "{f}");
        }
    }
}
