//! A small reduced ordered BDD package.
//!
//! Used for equivalence checking between independently derived covers
//! (minimizer cross-validation, netlist-vs-specification checks). The
//! variable order is the natural index order; our functions are small
//! enough that reordering is unnecessary.

use std::collections::HashMap;

use crate::cover::Cover;
use crate::cube::Cube;

/// Reference to a BDD node (0 = constant false, 1 = constant true).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(pub u32);

/// Constant false.
pub const FALSE: NodeRef = NodeRef(0);
/// Constant true.
pub const TRUE: NodeRef = NodeRef(1);

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: NodeRef,
    hi: NodeRef,
}

/// A BDD manager: owns the node table and operation caches.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, NodeRef, NodeRef), NodeRef>,
    and_cache: HashMap<(NodeRef, NodeRef), NodeRef>,
    or_cache: HashMap<(NodeRef, NodeRef), NodeRef>,
    not_cache: HashMap<NodeRef, NodeRef>,
}

impl Bdd {
    /// Creates a manager with the two constant nodes.
    pub fn new() -> Bdd {
        Bdd {
            nodes: vec![
                Node {
                    var: u32::MAX,
                    lo: FALSE,
                    hi: FALSE,
                },
                Node {
                    var: u32::MAX,
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            ..Default::default()
        }
    }

    /// Number of live nodes (including the constants).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        let r = NodeRef(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    /// The function of a single positive variable.
    pub fn var(&mut self, v: usize) -> NodeRef {
        self.mk(v as u32, FALSE, TRUE)
    }

    /// The function of a single literal.
    pub fn literal(&mut self, v: usize, phase: bool) -> NodeRef {
        if phase {
            self.mk(v as u32, FALSE, TRUE)
        } else {
            self.mk(v as u32, TRUE, FALSE)
        }
    }

    fn var_of(&self, r: NodeRef) -> u32 {
        self.nodes[r.0 as usize].var
    }

    fn cof(&self, r: NodeRef, var: u32, value: bool) -> NodeRef {
        let n = self.nodes[r.0 as usize];
        if r.0 <= 1 || n.var != var {
            r
        } else if value {
            n.hi
        } else {
            n.lo
        }
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        if a == FALSE || b == FALSE {
            return FALSE;
        }
        if a == TRUE {
            return b;
        }
        if b == TRUE || a == b {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.and_cache.get(&key) {
            return r;
        }
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = (self.cof(a, v, false), self.cof(a, v, true));
        let (b0, b1) = (self.cof(b, v, false), self.cof(b, v, true));
        let lo = self.and(a0, b0);
        let hi = self.and(a1, b1);
        let r = self.mk(v, lo, hi);
        self.and_cache.insert(key, r);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        if a == TRUE || b == TRUE {
            return TRUE;
        }
        if a == FALSE {
            return b;
        }
        if b == FALSE || a == b {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.or_cache.get(&key) {
            return r;
        }
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = (self.cof(a, v, false), self.cof(a, v, true));
        let (b0, b1) = (self.cof(b, v, false), self.cof(b, v, true));
        let lo = self.or(a0, b0);
        let hi = self.or(a1, b1);
        let r = self.mk(v, lo, hi);
        self.or_cache.insert(key, r);
        r
    }

    /// Negation.
    pub fn not(&mut self, a: NodeRef) -> NodeRef {
        if a == TRUE {
            return FALSE;
        }
        if a == FALSE {
            return TRUE;
        }
        if let Some(&r) = self.not_cache.get(&a) {
            return r;
        }
        let n = self.nodes[a.0 as usize];
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(a, r);
        r
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let nb = self.not(b);
        let na = self.not(a);
        let l = self.and(a, nb);
        let r = self.and(na, b);
        self.or(l, r)
    }

    /// Builds the BDD of a [`Cover`].
    pub fn from_cover(&mut self, f: &Cover) -> NodeRef {
        let mut acc = FALSE;
        for &c in f.cubes() {
            let mut term = TRUE;
            for v in c.vars() {
                let lit = self.literal(v, c.get(v) == Some(true));
                term = self.and(term, lit);
            }
            acc = self.or(acc, term);
        }
        acc
    }

    /// Evaluates the function at a point.
    pub fn eval(&self, mut r: NodeRef, code: u64) -> bool {
        while r.0 > 1 {
            let n = self.nodes[r.0 as usize];
            r = if (code >> n.var) & 1 == 1 { n.hi } else { n.lo };
        }
        r == TRUE
    }

    /// Builds the BDD of a set of minterms over `num_vars` variables.
    ///
    /// This is the scalable alternative to
    /// [`Cover::from_minterms`] + [`Bdd::from_cover`] when the minterm
    /// list is large (state-graph next-state tables with ~10⁶ codes):
    /// the codes are sorted once and the diagram is built by recursive
    /// slice splitting, so shared suffixes are constructed exactly once.
    pub fn from_codes(&mut self, codes: &[u64], num_vars: usize) -> NodeRef {
        assert!(num_vars <= 64);
        if num_vars == 0 {
            return if codes.is_empty() { FALSE } else { TRUE };
        }
        let mut sorted: Vec<u64> = codes.to_vec();
        // Sort by bit-reversed value so that at recursion depth `v` the
        // slice splits contiguously on bit `v` (the next-most-significant
        // bit of the reversed key).
        sorted.sort_unstable_by_key(|&c| c.reverse_bits() >> (64 - num_vars));
        sorted.dedup();
        self.build_sorted_codes(&sorted, 0, num_vars)
    }

    fn build_sorted_codes(&mut self, codes: &[u64], var: usize, num_vars: usize) -> NodeRef {
        if codes.is_empty() {
            return FALSE;
        }
        if var == num_vars {
            return TRUE;
        }
        let split = codes.partition_point(|&c| (c >> var) & 1 == 0);
        let lo = self.build_sorted_codes(&codes[..split], var + 1, num_vars);
        let hi = self.build_sorted_codes(&codes[split..], var + 1, num_vars);
        self.mk(var as u32, lo, hi)
    }

    /// True if the function has at least one satisfying point inside
    /// `cube` — the off-set oracle of BDD-backed cube expansion.
    pub fn cube_intersects(&self, r: NodeRef, cube: Cube) -> bool {
        fn rec(bdd: &Bdd, r: NodeRef, cube: Cube, memo: &mut HashMap<NodeRef, bool>) -> bool {
            if r == FALSE {
                return false;
            }
            if r == TRUE {
                return true;
            }
            if let Some(&hit) = memo.get(&r) {
                return hit;
            }
            let n = bdd.nodes[r.0 as usize];
            let hit = match cube.get(n.var as usize) {
                Some(false) => rec(bdd, n.lo, cube, memo),
                Some(true) => rec(bdd, n.hi, cube, memo),
                None => rec(bdd, n.lo, cube, memo) || rec(bdd, n.hi, cube, memo),
            };
            memo.insert(r, hit);
            hit
        }
        // The memo is sound because the cube constraint is fixed for the
        // whole walk; without it the search is worst-case exponential.
        rec(self, r, cube, &mut HashMap::new())
    }

    /// Minato–Morreale irredundant sum-of-products over the interval
    /// `lower ⊆ f ⊆ upper`: returns the cubes of an irredundant cover
    /// `f` together with its BDD. Runs in time polynomial in the BDD
    /// sizes — independent of how many minterms the interval contains.
    ///
    /// # Panics
    ///
    /// Debug-asserts `lower ⊆ upper`.
    pub fn isop(&mut self, lower: NodeRef, upper: NodeRef) -> (NodeRef, Vec<Cube>) {
        debug_assert!(
            {
                let nu = self.not(upper);
                self.and(lower, nu) == FALSE
            },
            "isop requires lower ⊆ upper"
        );
        let mut memo = HashMap::new();
        self.isop_rec(lower, upper, &mut memo)
    }

    #[allow(clippy::type_complexity)]
    fn isop_rec(
        &mut self,
        lower: NodeRef,
        upper: NodeRef,
        memo: &mut HashMap<(NodeRef, NodeRef), (NodeRef, Vec<Cube>)>,
    ) -> (NodeRef, Vec<Cube>) {
        if lower == FALSE {
            return (FALSE, Vec::new());
        }
        if upper == TRUE {
            return (TRUE, vec![Cube::top()]);
        }
        if let Some(hit) = memo.get(&(lower, upper)) {
            return hit.clone();
        }
        let v = self.var_of(lower).min(self.var_of(upper));
        let (l0, l1) = (self.cof(lower, v, false), self.cof(lower, v, true));
        let (u0, u1) = (self.cof(upper, v, false), self.cof(upper, v, true));
        // Points only coverable with the v' (resp. v) literal.
        let nu1 = self.not(u1);
        let need0 = self.and(l0, nu1);
        let (g0, mut c0) = self.isop_rec(need0, u0, memo);
        let nu0 = self.not(u0);
        let need1 = self.and(l1, nu0);
        let (g1, mut c1) = self.isop_rec(need1, u1, memo);
        // Remainder: lower points neither half covered, coverable by
        // cubes independent of v.
        let ng0 = self.not(g0);
        let ng1 = self.not(g1);
        let rem0 = self.and(l0, ng0);
        let rem1 = self.and(l1, ng1);
        let rem = self.or(rem0, rem1);
        let ud = self.and(u0, u1);
        let (gd, cd) = self.isop_rec(rem, ud, memo);
        let nv = self.literal(v as usize, false);
        let pv = self.literal(v as usize, true);
        let part0 = self.and(nv, g0);
        let part1 = self.and(pv, g1);
        let parts = self.or(part0, part1);
        let f = self.or(parts, gd);
        for c in &mut c0 {
            *c = c.intersect(Cube::literal(v as usize, false));
        }
        for c in &mut c1 {
            *c = c.intersect(Cube::literal(v as usize, true));
        }
        c0.extend(c1);
        c0.extend(cd);
        memo.insert((lower, upper), (f, c0.clone()));
        (f, c0)
    }

    /// Counts satisfying assignments over `num_vars` variables.
    pub fn sat_count(&self, r: NodeRef, num_vars: usize) -> u64 {
        fn rec(bdd: &Bdd, r: NodeRef, num_vars: u32, memo: &mut HashMap<NodeRef, u64>) -> u64 {
            // Returns count over variables var(r)..num_vars assuming
            // canonical weighting handled by caller.
            if r == FALSE {
                return 0;
            }
            if r == TRUE {
                return 1;
            }
            if let Some(&c) = memo.get(&r) {
                return c;
            }
            let n = bdd.nodes[r.0 as usize];
            let lo = rec(bdd, n.lo, num_vars, memo);
            let hi = rec(bdd, n.hi, num_vars, memo);
            let lo_skip = bdd.var_of(n.lo).min(num_vars) - n.var - 1;
            let hi_skip = bdd.var_of(n.hi).min(num_vars) - n.var - 1;
            let c = (lo << lo_skip) + (hi << hi_skip);
            memo.insert(r, c);
            c
        }
        let mut memo = HashMap::new();
        let c = rec(self, r, num_vars as u32, &mut memo);
        let top_skip = self.var_of(r).min(num_vars as u32);
        let top_skip = if r.0 <= 1 { num_vars as u32 } else { top_skip };
        c << top_skip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;

    #[test]
    fn basics() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let xy = b.and(x, y);
        assert!(b.eval(xy, 0b11));
        assert!(!b.eval(xy, 0b01));
        let nx = b.not(x);
        let taut = b.or(x, nx);
        assert_eq!(taut, TRUE);
        let contra = b.and(x, nx);
        assert_eq!(contra, FALSE);
    }

    #[test]
    fn canonical_equality() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        // x or y built two ways gives the same node.
        let a = b.or(x, y);
        let ny = b.not(y);
        let nx = b.not(x);
        let both_off = b.and(nx, ny);
        let c = b.not(both_off);
        assert_eq!(a, c);
    }

    #[test]
    fn xor_truth() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f = b.xor(x, y);
        assert!(!b.eval(f, 0b00));
        assert!(b.eval(f, 0b01));
        assert!(b.eval(f, 0b10));
        assert!(!b.eval(f, 0b11));
    }

    #[test]
    fn from_cover_matches_eval() {
        let f = Cover::from_cubes(
            3,
            [
                Cube::literal(0, true).intersect(Cube::literal(1, false)),
                Cube::literal(2, true),
            ],
        );
        let mut b = Bdd::new();
        let r = b.from_cover(&f);
        for code in 0..8u64 {
            assert_eq!(b.eval(r, code), f.covers_point(code));
        }
    }

    #[test]
    fn sat_count() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f = b.or(x, y);
        assert_eq!(b.sat_count(f, 2), 3);
        assert_eq!(b.sat_count(TRUE, 3), 8);
        assert_eq!(b.sat_count(FALSE, 3), 0);
        let g = b.and(x, y);
        assert_eq!(b.sat_count(g, 2), 1);
        // With an extra free variable the counts double.
        assert_eq!(b.sat_count(g, 3), 2);
    }
}
