//! A small reduced ordered BDD package.
//!
//! Used for equivalence checking between independently derived covers
//! (minimizer cross-validation, netlist-vs-specification checks). The
//! variable order is the natural index order; our functions are small
//! enough that reordering is unnecessary.

use std::collections::HashMap;

use crate::cover::Cover;

/// Reference to a BDD node (0 = constant false, 1 = constant true).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(pub u32);

/// Constant false.
pub const FALSE: NodeRef = NodeRef(0);
/// Constant true.
pub const TRUE: NodeRef = NodeRef(1);

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: NodeRef,
    hi: NodeRef,
}

/// A BDD manager: owns the node table and operation caches.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, NodeRef, NodeRef), NodeRef>,
    and_cache: HashMap<(NodeRef, NodeRef), NodeRef>,
    or_cache: HashMap<(NodeRef, NodeRef), NodeRef>,
    not_cache: HashMap<NodeRef, NodeRef>,
}

impl Bdd {
    /// Creates a manager with the two constant nodes.
    pub fn new() -> Bdd {
        Bdd {
            nodes: vec![
                Node {
                    var: u32::MAX,
                    lo: FALSE,
                    hi: FALSE,
                },
                Node {
                    var: u32::MAX,
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            ..Default::default()
        }
    }

    /// Number of live nodes (including the constants).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        let r = NodeRef(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    /// The function of a single positive variable.
    pub fn var(&mut self, v: usize) -> NodeRef {
        self.mk(v as u32, FALSE, TRUE)
    }

    /// The function of a single literal.
    pub fn literal(&mut self, v: usize, phase: bool) -> NodeRef {
        if phase {
            self.mk(v as u32, FALSE, TRUE)
        } else {
            self.mk(v as u32, TRUE, FALSE)
        }
    }

    fn var_of(&self, r: NodeRef) -> u32 {
        self.nodes[r.0 as usize].var
    }

    fn cof(&self, r: NodeRef, var: u32, value: bool) -> NodeRef {
        let n = self.nodes[r.0 as usize];
        if r.0 <= 1 || n.var != var {
            r
        } else if value {
            n.hi
        } else {
            n.lo
        }
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        if a == FALSE || b == FALSE {
            return FALSE;
        }
        if a == TRUE {
            return b;
        }
        if b == TRUE || a == b {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.and_cache.get(&key) {
            return r;
        }
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = (self.cof(a, v, false), self.cof(a, v, true));
        let (b0, b1) = (self.cof(b, v, false), self.cof(b, v, true));
        let lo = self.and(a0, b0);
        let hi = self.and(a1, b1);
        let r = self.mk(v, lo, hi);
        self.and_cache.insert(key, r);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        if a == TRUE || b == TRUE {
            return TRUE;
        }
        if a == FALSE {
            return b;
        }
        if b == FALSE || a == b {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.or_cache.get(&key) {
            return r;
        }
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = (self.cof(a, v, false), self.cof(a, v, true));
        let (b0, b1) = (self.cof(b, v, false), self.cof(b, v, true));
        let lo = self.or(a0, b0);
        let hi = self.or(a1, b1);
        let r = self.mk(v, lo, hi);
        self.or_cache.insert(key, r);
        r
    }

    /// Negation.
    pub fn not(&mut self, a: NodeRef) -> NodeRef {
        if a == TRUE {
            return FALSE;
        }
        if a == FALSE {
            return TRUE;
        }
        if let Some(&r) = self.not_cache.get(&a) {
            return r;
        }
        let n = self.nodes[a.0 as usize];
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(a, r);
        r
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let nb = self.not(b);
        let na = self.not(a);
        let l = self.and(a, nb);
        let r = self.and(na, b);
        self.or(l, r)
    }

    /// Builds the BDD of a [`Cover`].
    pub fn from_cover(&mut self, f: &Cover) -> NodeRef {
        let mut acc = FALSE;
        for &c in f.cubes() {
            let mut term = TRUE;
            for v in c.vars() {
                let lit = self.literal(v, c.get(v) == Some(true));
                term = self.and(term, lit);
            }
            acc = self.or(acc, term);
        }
        acc
    }

    /// Evaluates the function at a point.
    pub fn eval(&self, mut r: NodeRef, code: u64) -> bool {
        while r.0 > 1 {
            let n = self.nodes[r.0 as usize];
            r = if (code >> n.var) & 1 == 1 { n.hi } else { n.lo };
        }
        r == TRUE
    }

    /// Counts satisfying assignments over `num_vars` variables.
    pub fn sat_count(&self, r: NodeRef, num_vars: usize) -> u64 {
        fn rec(bdd: &Bdd, r: NodeRef, num_vars: u32, memo: &mut HashMap<NodeRef, u64>) -> u64 {
            // Returns count over variables var(r)..num_vars assuming
            // canonical weighting handled by caller.
            if r == FALSE {
                return 0;
            }
            if r == TRUE {
                return 1;
            }
            if let Some(&c) = memo.get(&r) {
                return c;
            }
            let n = bdd.nodes[r.0 as usize];
            let lo = rec(bdd, n.lo, num_vars, memo);
            let hi = rec(bdd, n.hi, num_vars, memo);
            let lo_skip = bdd.var_of(n.lo).min(num_vars) - n.var - 1;
            let hi_skip = bdd.var_of(n.hi).min(num_vars) - n.var - 1;
            let c = (lo << lo_skip) + (hi << hi_skip);
            memo.insert(r, c);
            c
        }
        let mut memo = HashMap::new();
        let c = rec(self, r, num_vars as u32, &mut memo);
        let top_skip = self.var_of(r).min(num_vars as u32);
        let top_skip = if r.0 <= 1 { num_vars as u32 } else { top_skip };
        c << top_skip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;

    #[test]
    fn basics() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let xy = b.and(x, y);
        assert!(b.eval(xy, 0b11));
        assert!(!b.eval(xy, 0b01));
        let nx = b.not(x);
        let taut = b.or(x, nx);
        assert_eq!(taut, TRUE);
        let contra = b.and(x, nx);
        assert_eq!(contra, FALSE);
    }

    #[test]
    fn canonical_equality() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        // x or y built two ways gives the same node.
        let a = b.or(x, y);
        let ny = b.not(y);
        let nx = b.not(x);
        let both_off = b.and(nx, ny);
        let c = b.not(both_off);
        assert_eq!(a, c);
    }

    #[test]
    fn xor_truth() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f = b.xor(x, y);
        assert!(!b.eval(f, 0b00));
        assert!(b.eval(f, 0b01));
        assert!(b.eval(f, 0b10));
        assert!(!b.eval(f, 0b11));
    }

    #[test]
    fn from_cover_matches_eval() {
        let f = Cover::from_cubes(
            3,
            [
                Cube::literal(0, true).intersect(Cube::literal(1, false)),
                Cube::literal(2, true),
            ],
        );
        let mut b = Bdd::new();
        let r = b.from_cover(&f);
        for code in 0..8u64 {
            assert_eq!(b.eval(r, code), f.covers_point(code));
        }
    }

    #[test]
    fn sat_count() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f = b.or(x, y);
        assert_eq!(b.sat_count(f, 2), 3);
        assert_eq!(b.sat_count(TRUE, 3), 8);
        assert_eq!(b.sat_count(FALSE, 3), 0);
        let g = b.and(x, y);
        assert_eq!(b.sat_count(g, 2), 1);
        // With an extra free variable the counts double.
        assert_eq!(b.sat_count(g, 3), 2);
    }
}
