//! Boolean expression trees and algebraic factoring.
//!
//! Technology mapping decomposes each next-state function into 2-input
//! gates; factoring first (dividing out the most frequent literal)
//! shrinks the resulting tree, matching how the paper's flow decomposes
//! complex gates before mapping.

use std::fmt;

use crate::cover::Cover;
use crate::cube::Cube;

/// A Boolean expression over variables identified by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Constant 0 or 1.
    Const(bool),
    /// A literal: variable index and phase (`true` = positive).
    Lit(usize, bool),
    /// Conjunction of subexpressions (flattened, at least 2 entries).
    And(Vec<Expr>),
    /// Disjunction of subexpressions (flattened, at least 2 entries).
    Or(Vec<Expr>),
}

impl Expr {
    /// Builds a conjunction, flattening and simplifying trivial cases.
    pub fn and(parts: Vec<Expr>) -> Expr {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Expr::Const(true) => {}
                Expr::Const(false) => return Expr::Const(false),
                Expr::And(xs) => flat.extend(xs),
                x => flat.push(x),
            }
        }
        match flat.len() {
            0 => Expr::Const(true),
            1 => flat.pop().unwrap(),
            _ => Expr::And(flat),
        }
    }

    /// Builds a disjunction, flattening and simplifying trivial cases.
    pub fn or(parts: Vec<Expr>) -> Expr {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Expr::Const(false) => {}
                Expr::Const(true) => return Expr::Const(true),
                Expr::Or(xs) => flat.extend(xs),
                x => flat.push(x),
            }
        }
        match flat.len() {
            0 => Expr::Const(false),
            1 => flat.pop().unwrap(),
            _ => Expr::Or(flat),
        }
    }

    /// Number of literal leaves.
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Lit(..) => 1,
            Expr::And(xs) | Expr::Or(xs) => xs.iter().map(Expr::literal_count).sum(),
        }
    }

    /// Evaluates under the assignment `code` (bit i = variable i).
    pub fn eval(&self, code: u64) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Lit(v, phase) => ((code >> v) & 1 == 1) == *phase,
            Expr::And(xs) => xs.iter().all(|x| x.eval(code)),
            Expr::Or(xs) => xs.iter().any(|x| x.eval(code)),
        }
    }

    /// Renders with variable names.
    pub fn render_named(&self, names: &[String]) -> String {
        match self {
            Expr::Const(b) => if *b { "1" } else { "0" }.to_string(),
            Expr::Lit(v, phase) => {
                let n = names.get(*v).cloned().unwrap_or_else(|| format!("x{v}"));
                if *phase {
                    n
                } else {
                    format!("{n}'")
                }
            }
            Expr::And(xs) => xs
                .iter()
                .map(|x| match x {
                    Expr::Or(_) => format!("({})", x.render_named(names)),
                    _ => x.render_named(names),
                })
                .collect::<Vec<_>>()
                .join(" "),
            Expr::Or(xs) => xs
                .iter()
                .map(|x| x.render_named(names))
                .collect::<Vec<_>>()
                .join(" + "),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..64).map(|i| format!("x{i}")).collect();
        write!(f, "{}", self.render_named(&names))
    }
}

/// The flat sum-of-products expression of a cover.
pub fn sop_expr(f: &Cover) -> Expr {
    let terms: Vec<Expr> = f.cubes().iter().map(|&c| cube_expr(c)).collect();
    Expr::or(terms)
}

fn cube_expr(c: Cube) -> Expr {
    if c.is_top() {
        return Expr::Const(true);
    }
    let lits: Vec<Expr> = c
        .vars()
        .map(|v| Expr::Lit(v, c.get(v) == Some(true)))
        .collect();
    Expr::and(lits)
}

/// Quick algebraic factoring: repeatedly divide by the literal occurring
/// in the most cubes. `F = l·(F/l) + r` — recursing on quotient and
/// remainder. Falls back to flat SOP when no literal repeats.
pub fn factor(f: &Cover) -> Expr {
    let cubes = f.cubes().to_vec();
    factor_cubes(&cubes)
}

fn factor_cubes(cubes: &[Cube]) -> Expr {
    if cubes.is_empty() {
        return Expr::Const(false);
    }
    if cubes.len() == 1 {
        return cube_expr(cubes[0]);
    }
    // Count literal occurrences.
    let mut best: Option<(usize, bool, usize)> = None; // (var, phase, count)
    for phase in [true, false] {
        for v in 0..crate::cube::MAX_VARS {
            let count = cubes.iter().filter(|c| c.get(v) == Some(phase)).count();
            if count >= 2 && best.map(|(_, _, bc)| count > bc).unwrap_or(true) {
                best = Some((v, phase, count));
            }
        }
    }
    let Some((v, phase, _)) = best else {
        // No sharing: flat SOP.
        return Expr::or(cubes.iter().map(|&c| cube_expr(c)).collect());
    };
    let quotient: Vec<Cube> = cubes
        .iter()
        .filter(|c| c.get(v) == Some(phase))
        .map(|c| c.with(v, None))
        .collect();
    let remainder: Vec<Cube> = cubes
        .iter()
        .filter(|c| c.get(v) != Some(phase))
        .copied()
        .collect();
    let q = Expr::and(vec![Expr::Lit(v, phase), factor_cubes(&quotient)]);
    if remainder.is_empty() {
        q
    } else {
        Expr::or(vec![q, factor_cubes(&remainder)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, p: bool) -> Cube {
        Cube::literal(v, p)
    }

    #[test]
    fn sop_and_eval_agree_with_cover() {
        let f = Cover::from_cubes(
            3,
            [
                lit(0, true).intersect(lit(1, true)),
                lit(0, false).intersect(lit(2, true)),
            ],
        );
        let e = sop_expr(&f);
        for code in 0..8u64 {
            assert_eq!(e.eval(code), f.covers_point(code), "code {code:b}");
        }
    }

    #[test]
    fn factoring_preserves_function() {
        let f = Cover::from_cubes(
            4,
            [
                lit(0, true).intersect(lit(1, true)),
                lit(0, true).intersect(lit(2, true)),
                lit(0, true).intersect(lit(3, false)),
                lit(1, false).intersect(lit(2, false)),
            ],
        );
        let e = factor(&f);
        for code in 0..16u64 {
            assert_eq!(e.eval(code), f.covers_point(code), "code {code:b}");
        }
        // ab + ac + ad' factors to a(b + c + d'), saving literals.
        assert!(e.literal_count() < sop_expr(&f).literal_count());
    }

    #[test]
    fn factoring_shares_most_common_literal() {
        // ab + ac -> a(b + c): 3 literals instead of 4.
        let f = Cover::from_cubes(
            3,
            [
                lit(0, true).intersect(lit(1, true)),
                lit(0, true).intersect(lit(2, true)),
            ],
        );
        let e = factor(&f);
        assert_eq!(e.literal_count(), 3);
    }

    #[test]
    fn constants() {
        assert_eq!(sop_expr(&Cover::empty(2)), Expr::Const(false));
        assert_eq!(sop_expr(&Cover::one(2)), Expr::Const(true));
        assert_eq!(factor(&Cover::empty(2)), Expr::Const(false));
        let e = factor(&Cover::one(2));
        assert!(e.eval(0) && e.eval(3));
    }

    #[test]
    fn rendering() {
        let f = Cover::from_cubes(2, [lit(0, true).intersect(lit(1, false))]);
        let names: Vec<String> = ["req", "ack"].iter().map(|s| s.to_string()).collect();
        assert_eq!(sop_expr(&f).render_named(&names), "req ack'");
    }

    #[test]
    fn builders_simplify() {
        assert_eq!(
            Expr::and(vec![Expr::Const(true), Expr::Lit(0, true)]),
            Expr::Lit(0, true)
        );
        assert_eq!(
            Expr::and(vec![Expr::Const(false), Expr::Lit(0, true)]),
            Expr::Const(false)
        );
        assert_eq!(
            Expr::or(vec![Expr::Const(false), Expr::Lit(1, false)]),
            Expr::Lit(1, false)
        );
        assert_eq!(Expr::or(vec![]), Expr::Const(false));
    }
}
