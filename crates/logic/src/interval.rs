//! Scalable minimization of incompletely specified functions given as
//! raw minterm lists.
//!
//! [`minimize`](crate::minimize) manipulates explicit cube lists, which
//! is the right tool for paper-sized functions but quadratic-or-worse in
//! the minterm count: deriving next-state logic from a 10⁶-state graph
//! would spend hours in `weed`/`complement`. This module goes through a
//! BDD instead: the on/off code lists become diagrams in near-linear
//! time ([`Bdd::from_codes`]), the cover is extracted by the
//! Minato–Morreale interval ISOP ([`Bdd::isop`]) whose cost tracks the
//! *diagram* sizes, and the result is polished to prime + irredundant
//! with BDD oracles. The result satisfies the same contract as
//! [`minimize`](crate::minimize): `on ⊆ f` and `f ∩ off = ∅`.

use crate::bdd::{Bdd, NodeRef, FALSE};
use crate::cover::Cover;
use crate::cube::Cube;

/// Minimizes the incompletely specified function with on-set `on_codes`
/// and off-set `off_codes` (everything else don't-care) over `num_vars`
/// variables. The two code lists must be disjoint.
///
/// Returns a prime, irredundant cover `f` with `on ⊆ f ⊆ ¬off`, plus
/// the [`Bdd`] artifacts so callers can run further checks against the
/// same diagrams.
pub fn minimize_codes(num_vars: usize, on_codes: &[u64], off_codes: &[u64]) -> Cover {
    let (cover, _bdd) = minimize_codes_with_bdd(num_vars, on_codes, off_codes);
    cover
}

/// Artifacts of a [`minimize_codes`] run: the manager plus the on/off
/// diagrams, for callers that want to verify against them.
#[derive(Debug)]
pub struct IntervalArtifacts {
    /// The BDD manager holding both diagrams.
    pub bdd: Bdd,
    /// Characteristic function of the on-set.
    pub on: NodeRef,
    /// Characteristic function of the off-set.
    pub off: NodeRef,
}

/// When the exact on/dc covers extracted from the diagrams stay under
/// this many cubes, they are handed to the espresso loop for full
/// minimization quality; above it the interval ISOP result is polished
/// locally instead (prime + irredundant, but no REDUCE restarts).
const ESPRESSO_HANDOFF_CUBES: usize = 4096;

/// [`minimize_codes`], also returning the diagrams it built.
pub fn minimize_codes_with_bdd(
    num_vars: usize,
    on_codes: &[u64],
    off_codes: &[u64],
) -> (Cover, IntervalArtifacts) {
    let mut bdd = Bdd::new();
    let on = bdd.from_codes(on_codes, num_vars);
    let off = bdd.from_codes(off_codes, num_vars);
    debug_assert_eq!(bdd.and(on, off), FALSE, "on/off sets must be disjoint");
    // Exact cube covers of the on- and don't-care sets, extracted from
    // the diagrams (lower = upper makes the ISOP exact). These compress
    // a million minterms into the handful of cubes the structure really
    // has, which the cube-list espresso loop then minimizes exactly as
    // it would have minimized the raw minterm lists — only feasibly so.
    let (_, on_cubes) = bdd.isop(on, on);
    let reach = bdd.or(on, off);
    let dc = bdd.not(reach);
    let (_, dc_cubes) = bdd.isop(dc, dc);
    let cover = if on_cubes.len() + dc_cubes.len() <= ESPRESSO_HANDOFF_CUBES {
        let on_cover = Cover::from_cubes(num_vars, on_cubes);
        let dc_cover = Cover::from_cubes(num_vars, dc_cubes);
        crate::espresso::minimize(&on_cover, &dc_cover)
    } else {
        // Safety valve: even the exact covers are huge. Take the
        // interval ISOP (irredundant by construction) and polish it to
        // primes against the off-set diagram.
        let upper = bdd.not(off);
        let (_f, cubes) = bdd.isop(on, upper);
        let mut cover = Cover::from_cubes(num_vars, expand_cubes(&bdd, off, cubes));
        cover.weed();
        irredundant(&mut bdd, on, &mut cover);
        cover
    };
    debug_assert!({
        let f = bdd.from_cover(&cover);
        let nf = bdd.not(f);
        bdd.and(on, nf) == FALSE && bdd.and(f, off) == FALSE
    });
    (cover, IntervalArtifacts { bdd, on, off })
}

/// EXPAND against the off-set diagram: greedily raise literals while the
/// cube stays disjoint from `off`. Mirrors the cube-list `expand` of the
/// espresso loop, with the off-set intersection answered by a BDD walk.
fn expand_cubes(bdd: &Bdd, off: NodeRef, cubes: Vec<Cube>) -> Vec<Cube> {
    cubes
        .into_iter()
        .map(|c| {
            let mut cur = c;
            for v in c.vars() {
                let raised = cur.with(v, None);
                if !bdd.cube_intersects(off, raised) {
                    cur = raised;
                }
            }
            cur
        })
        .collect()
}

/// IRREDUNDANT with a BDD oracle: drop a cube when the on-points it
/// covers are already covered by the rest of the cover.
fn irredundant(bdd: &mut Bdd, on: NodeRef, cover: &mut Cover) {
    let num_vars = cover.num_vars();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    // Try to remove narrow cubes first, keeping the broad ones.
    cubes.sort_by_key(|c| std::cmp::Reverse(c.num_literals()));
    let mut i = 0;
    while i < cubes.len() {
        let c = cubes[i];
        let rest = Cover::from_cubes(
            num_vars,
            cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &x)| x),
        );
        let rest_bdd = bdd.from_cover(&rest);
        let c_bdd = bdd.from_cover(&Cover::from_cubes(num_vars, [c]));
        let not_rest = bdd.not(rest_bdd);
        let uniquely_on = bdd.and(c_bdd, on);
        if bdd.and(uniquely_on, not_rest) == FALSE {
            cubes.remove(i);
        } else {
            i += 1;
        }
    }
    cubes.sort_unstable();
    *cover = Cover::from_cubes(num_vars, cubes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::espresso::{cost, minimize};
    use crate::tautology::cover_equal;

    /// Exhaustively checks the contract on ⊆ f ⊆ ¬off.
    fn check_contract(f: &Cover, num_vars: usize, on: &[u64], off: &[u64]) {
        for &m in on {
            assert!(f.covers_point(m), "on-minterm {m:b} uncovered by {f}");
        }
        for &m in off {
            assert!(!f.covers_point(m), "off-minterm {m:b} covered by {f}");
        }
        let _ = num_vars;
    }

    #[test]
    fn matches_espresso_on_small_functions() {
        // Deterministic pseudo-random incompletely specified functions:
        // the interval path must produce a valid cover no costlier than
        // 2x espresso's (both are heuristics; neither dominates).
        let mut seed = 0x9E3779B97F4A7C15u64;
        for trial in 0..40 {
            let nv = 3 + trial % 4;
            let mut on = Vec::new();
            let mut off = Vec::new();
            for m in 0..(1u64 << nv) {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                match (seed >> 33) % 3 {
                    0 => on.push(m),
                    1 => off.push(m),
                    _ => {}
                }
            }
            let f = minimize_codes(nv, &on, &off);
            check_contract(&f, nv, &on, &off);
            let on_cover = Cover::from_minterms(nv, &on);
            let dc_codes: Vec<u64> = (0..(1u64 << nv))
                .filter(|m| !on.contains(m) && !off.contains(m))
                .collect();
            let dc = Cover::from_minterms(nv, &dc_codes);
            let esp = minimize(&on_cover, &dc);
            assert!(
                cost(&f).cubes <= 2 * esp.len().max(1),
                "trial {trial}: interval {f} vs espresso {esp}"
            );
        }
    }

    #[test]
    fn completely_specified_equals_function() {
        // With an empty dc set the cover must equal the on-set exactly.
        let on = [0b001u64, 0b011, 0b101, 0b111];
        let off = [0b000u64, 0b010, 0b100, 0b110];
        let f = minimize_codes(3, &on, &off);
        assert_eq!(f.len(), 1, "{f}");
        assert_eq!(f.num_literals(), 1);
        let on_cover = Cover::from_minterms(3, &on);
        assert!(cover_equal(&f, &on_cover));
    }

    #[test]
    fn empty_and_universal() {
        assert!(minimize_codes(4, &[], &[0, 1]).is_empty());
        let f = minimize_codes(4, &[3], &[]);
        assert_eq!(f.len(), 1);
        assert!(f.cubes()[0].is_top(), "everything else is dc: {f}");
    }

    #[test]
    fn large_structured_function_is_fast() {
        // A 20-variable function with 2^16 on-minterms: far beyond what
        // the cube-list path could weed, near-instant through the BDD.
        let nv = 20;
        let on: Vec<u64> = (0..1u64 << 16).map(|m| m << 4 | 0b1010).collect();
        let off: Vec<u64> = (0..1u64 << 10).map(|m| m << 4 | 0b0101).collect();
        let f = minimize_codes(nv, &on, &off);
        check_contract(&f, nv, &on[..200], &off[..200]);
        assert!(f.len() <= 2, "{f}");
    }
}
