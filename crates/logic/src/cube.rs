//! Cubes (product terms) over up to 64 Boolean variables.
//!
//! A cube stores two bitmasks: `pos` (variables appearing as positive
//! literals) and `neg` (negative literals). A variable in neither mask
//! is absent (don't care); a variable in both makes the cube empty.

use std::fmt;

/// Maximum number of variables supported by [`Cube`].
pub const MAX_VARS: usize = 64;

/// A product term over `num_vars` variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    /// Bit i set: variable i appears as a positive literal.
    pub pos: u64,
    /// Bit i set: variable i appears as a negative literal.
    pub neg: u64,
}

impl Cube {
    /// The universal cube (no literals; covers everything).
    pub const fn top() -> Cube {
        Cube { pos: 0, neg: 0 }
    }

    /// A cube from a full minterm: `code` gives the value of each of the
    /// `num_vars` variables.
    pub fn minterm(code: u64, num_vars: usize) -> Cube {
        assert!(num_vars <= MAX_VARS);
        let mask = mask(num_vars);
        Cube {
            pos: code & mask,
            neg: !code & mask,
        }
    }

    /// A cube with a single literal.
    pub fn literal(var: usize, positive: bool) -> Cube {
        assert!(var < MAX_VARS);
        if positive {
            Cube {
                pos: 1 << var,
                neg: 0,
            }
        } else {
            Cube {
                pos: 0,
                neg: 1 << var,
            }
        }
    }

    /// True if the cube contains contradictory literals (covers nothing).
    pub fn is_empty(self) -> bool {
        self.pos & self.neg != 0
    }

    /// True if the cube has no literals (covers everything).
    pub fn is_top(self) -> bool {
        self.pos == 0 && self.neg == 0
    }

    /// Number of literals.
    pub fn num_literals(self) -> u32 {
        (self.pos | self.neg).count_ones()
    }

    /// The value constraint on `var`: `Some(true)` positive literal,
    /// `Some(false)` negative, `None` absent.
    pub fn get(self, var: usize) -> Option<bool> {
        let bit = 1u64 << var;
        if self.pos & bit != 0 {
            Some(true)
        } else if self.neg & bit != 0 {
            Some(false)
        } else {
            None
        }
    }

    /// Returns the cube with the constraint on `var` replaced.
    pub fn with(self, var: usize, value: Option<bool>) -> Cube {
        let bit = 1u64 << var;
        let mut c = Cube {
            pos: self.pos & !bit,
            neg: self.neg & !bit,
        };
        match value {
            Some(true) => c.pos |= bit,
            Some(false) => c.neg |= bit,
            None => {}
        }
        c
    }

    /// True if the cube covers the minterm `code`.
    pub fn covers_point(self, code: u64) -> bool {
        (self.pos & !code) == 0 && (self.neg & code) == 0
    }

    /// True if `self` covers every point of `other` (`other ⊆ self`);
    /// equivalently, `self`'s literal set is a subset of `other`'s.
    pub fn covers(self, other: Cube) -> bool {
        !other.is_empty() && (self.pos & !other.pos) == 0 && (self.neg & !other.neg) == 0
    }

    /// The intersection of two cubes (may be empty).
    pub fn intersect(self, other: Cube) -> Cube {
        Cube {
            pos: self.pos | other.pos,
            neg: self.neg | other.neg,
        }
    }

    /// True if the cubes share at least one point.
    pub fn intersects(self, other: Cube) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The smallest cube covering both (bitwise literal intersection).
    pub fn supercube(self, other: Cube) -> Cube {
        Cube {
            pos: self.pos & other.pos,
            neg: self.neg & other.neg,
        }
    }

    /// Number of variables on which the cubes have opposite literals.
    pub fn distance(self, other: Cube) -> u32 {
        ((self.pos & other.neg) | (self.neg & other.pos)).count_ones()
    }

    /// The consensus of two cubes, defined when their distance is 1:
    /// drop the clashing variable, intersect the rest.
    pub fn consensus(self, other: Cube) -> Option<Cube> {
        let clash = (self.pos & other.neg) | (self.neg & other.pos);
        if clash.count_ones() != 1 {
            return None;
        }
        let c = Cube {
            pos: (self.pos | other.pos) & !clash,
            neg: (self.neg | other.neg) & !clash,
        };
        (!c.is_empty()).then_some(c)
    }

    /// The positive or negative cofactor with respect to `var`: `None`
    /// if the cube requires the opposite value, otherwise the cube with
    /// the `var` literal dropped.
    pub fn cofactor(self, var: usize, value: bool) -> Option<Cube> {
        match self.get(var) {
            Some(v) if v != value => None,
            _ => Some(self.with(var, None)),
        }
    }

    /// Iterates over the variables with literals in this cube.
    pub fn vars(self) -> impl Iterator<Item = usize> {
        let used = self.pos | self.neg;
        (0..MAX_VARS).filter(move |&i| used & (1 << i) != 0)
    }

    /// Renders the cube as a positional string over `num_vars` variables
    /// (`1` positive, `0` negative, `-` absent), LSB variable first.
    pub fn render(self, num_vars: usize) -> String {
        (0..num_vars)
            .map(|i| match self.get(i) {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            })
            .collect()
    }

    /// Renders the cube as a product of named literals, e.g. `a b' c`.
    pub fn render_named(self, names: &[String]) -> String {
        if self.is_top() {
            return "1".to_string();
        }
        let mut parts = Vec::new();
        for (i, name) in names.iter().take(MAX_VARS).enumerate() {
            match self.get(i) {
                Some(true) => parts.push(name.clone()),
                Some(false) => parts.push(format!("{name}'")),
                None => {}
            }
        }
        parts.join(" ")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(MAX_VARS).trim_end_matches('-'))
    }
}

/// The all-ones mask over `num_vars` variables.
pub fn mask(num_vars: usize) -> u64 {
    if num_vars >= 64 {
        u64::MAX
    } else {
        (1u64 << num_vars) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_and_points() {
        let c = Cube::minterm(0b101, 3);
        assert!(c.covers_point(0b101));
        assert!(!c.covers_point(0b100));
        assert_eq!(c.num_literals(), 3);
        assert_eq!(c.render(3), "101");
    }

    #[test]
    fn literal_and_with() {
        let c = Cube::literal(2, true);
        assert_eq!(c.get(2), Some(true));
        assert_eq!(c.get(0), None);
        let c2 = c.with(2, Some(false));
        assert_eq!(c2.get(2), Some(false));
        let c3 = c.with(2, None);
        assert!(c3.is_top());
    }

    #[test]
    fn covers_is_subset_of_literals() {
        let big = Cube::literal(0, true);
        let small = Cube::literal(0, true).intersect(Cube::literal(1, false));
        assert!(big.covers(small));
        assert!(!small.covers(big));
        assert!(Cube::top().covers(big));
        // Empty cubes are covered by nothing (convention).
        let empty = Cube::literal(0, true).intersect(Cube::literal(0, false));
        assert!(empty.is_empty());
        assert!(!big.covers(empty));
    }

    #[test]
    fn intersect_detects_conflict() {
        let a = Cube::literal(1, true);
        let b = Cube::literal(1, false);
        assert!(a.intersect(b).is_empty());
        assert!(!a.intersects(b));
        assert_eq!(a.distance(b), 1);
    }

    #[test]
    fn consensus_rules() {
        // ab + a'c -> consensus bc.
        let ab = Cube::literal(0, true).intersect(Cube::literal(1, true));
        let a_c = Cube::literal(0, false).intersect(Cube::literal(2, true));
        let cons = ab.consensus(a_c).unwrap();
        assert_eq!(cons.get(0), None);
        assert_eq!(cons.get(1), Some(true));
        assert_eq!(cons.get(2), Some(true));
        // Distance 2: no consensus.
        let x = Cube::minterm(0b00, 2);
        let y = Cube::minterm(0b11, 2);
        assert_eq!(x.consensus(y), None);
    }

    #[test]
    fn cofactor_drops_literal() {
        let c = Cube::literal(0, true).intersect(Cube::literal(1, false));
        let cf = c.cofactor(0, true).unwrap();
        assert_eq!(cf.get(0), None);
        assert_eq!(cf.get(1), Some(false));
        assert_eq!(c.cofactor(0, false), None);
        // Cofactor on an absent variable just returns the cube.
        assert_eq!(c.cofactor(5, true), Some(c));
    }

    #[test]
    fn supercube_merges() {
        let a = Cube::minterm(0b00, 2);
        let b = Cube::minterm(0b01, 2);
        let s = a.supercube(b);
        assert_eq!(s.get(0), None);
        assert_eq!(s.get(1), Some(false));
        assert!(s.covers(a) && s.covers(b));
    }

    #[test]
    fn named_rendering() {
        let names: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let c = Cube::literal(0, true).intersect(Cube::literal(2, false));
        assert_eq!(c.render_named(&names), "a c'");
        assert_eq!(Cube::top().render_named(&names), "1");
    }

    #[test]
    fn vars_iterator() {
        let c = Cube::literal(3, true).intersect(Cube::literal(10, false));
        let vs: Vec<usize> = c.vars().collect();
        assert_eq!(vs, vec![3, 10]);
    }
}
