//! Concurrency reduction of STGs (DAC 1999, Sec. 4).
//!
//! Reducing concurrency — serializing transitions that the
//! specification allows in parallel — shrinks the state graph, often
//! removes CSC conflicts without extra state signals, and trades cycle
//! time for logic. The search enumerates serializing moves from the
//! concurrency relation of [`reshuffle_sg::conc`], applies each as a
//! structural STG rewrite (an ordering place `from -> p -> to`,
//! [`reshuffle_petri::structural::insert_causal_place`]), re-derives the
//! state graph incrementally as the product of the old graph with the
//! new place ([`reshuffle_sg::restrict`]), and ranks candidates by
//! remaining CSC conflicts, then the literal estimate of
//! [`reshuffle_synth::literal_estimate`], then the timed cycle metric of
//! `reshuffle-timing` — optionally under a hard cycle-time bound.
//!
//! Moves that would delay an input transition, deadlock the system,
//! stop an event from ever firing, or break speed independence are
//! discarded; consistency is preserved by construction (the rewrite
//! only restricts the language, and state codes carry over). Mirror
//! moves under a signal automorphism of the specification (symmetric
//! fork/join branches, interchangeable channels) are dominated and
//! pruned before scoring — see [`Reduction::pruned`].

#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use reshuffle_petri::structural::{insert_causal_place, map_transition, signal_automorphisms};
use reshuffle_petri::{Stg, TransitionId};
use reshuffle_sg::conc::concurrent_pairs;
use reshuffle_sg::csc::analyze_csc;
use reshuffle_sg::props::{all_events_fire, speed_independence};
use reshuffle_sg::restrict::restrict_with_place;
use reshuffle_sg::{build_state_graph, EventId, SgError, StateGraph};
use reshuffle_synth::literal_estimate;
use reshuffle_timing::{simulate, DelayModel, SimOptions, TimingError};

/// Errors from concurrency reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum ReduceError {
    /// The input STG has no state graph (inconsistent, unsafe, …).
    Sg(SgError),
    /// The input STG has no periodic timed behaviour to bound.
    Timing(TimingError),
    /// No reduction satisfies the constraints (e.g. the cycle-time
    /// bound excludes the specification and every candidate).
    NoFeasibleReduction,
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::Sg(e) => write!(f, "concurrency reduction: {e}"),
            ReduceError::Timing(e) => write!(f, "concurrency reduction: {e}"),
            ReduceError::NoFeasibleReduction => {
                write!(f, "no concurrency reduction satisfies the constraints")
            }
        }
    }
}

impl std::error::Error for ReduceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReduceError::Sg(e) => Some(e),
            ReduceError::Timing(e) => Some(e),
            ReduceError::NoFeasibleReduction => None,
        }
    }
}

impl From<SgError> for ReduceError {
    fn from(e: SgError) -> Self {
        ReduceError::Sg(e)
    }
}

impl From<TimingError> for ReduceError {
    fn from(e: TimingError) -> Self {
        ReduceError::Timing(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, ReduceError>;

/// Constraints and budgets for the reduction search.
#[derive(Debug, Clone)]
pub struct ReduceOptions {
    /// Upper bound on the steady-state cycle time of the reduced STG
    /// (`None` = unconstrained, minimize conflicts and literals only).
    pub max_cycle_time: Option<f64>,
    /// Maximum number of serializing moves to apply.
    pub max_moves: usize,
    /// Maximum number of best-first node expansions (bounds the search).
    pub max_expansions: usize,
    /// Delay charged to input events by the cycle metric (Table 1/2
    /// model: 2.0).
    pub input_delay: f64,
    /// Delay charged to non-input events by the cycle metric (1.0).
    pub gate_delay: f64,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions {
            max_cycle_time: None,
            max_moves: 16,
            max_expansions: 128,
            input_delay: 2.0,
            gate_delay: 1.0,
        }
    }
}

/// One accepted serializing move on the winning path, with the
/// statistics of the specification *after* the move — the `tables
/// --moves` report renders these as before→after deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveStep {
    /// The move, as a `from -> to` string.
    pub label: String,
    /// Literal estimate after the move.
    pub literals: u32,
    /// Steady-state cycle time after the move.
    pub cycle: f64,
    /// Remaining CSC conflicts after the move.
    pub csc_conflicts: usize,
}

/// A concurrency-reduced refinement of the input STG.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced STG (the input STG if no move improved it).
    pub stg: Stg,
    /// Its state graph, re-derived incrementally move by move.
    pub sg: StateGraph,
    /// The winning path: every serializing move applied, in order, with
    /// its label and the statistics of the specification after it.
    pub steps: Vec<MoveStep>,
    /// Literal estimate of the reduced specification.
    pub literals: u32,
    /// Steady-state cycle time of the reduced specification under the
    /// options' delay model.
    pub cycle: f64,
    /// Remaining CSC conflicts of the reduced specification.
    pub csc_conflicts: usize,
    /// Candidate moves discarded by symmetry dominance: a move whose
    /// mirror image under a signal automorphism of the current STG was
    /// also a candidate with a lexicographically smaller label. Mirrors
    /// score identically, so re-scoring them only burns search budget.
    pub pruned: usize,
    /// Best-first nodes expanded before the search stopped.
    pub expansions: usize,
    /// Candidate moves scored (state graph re-derived and evaluated).
    pub scored: usize,
}

impl Reduction {
    /// The labels of the applied moves, in order (`from -> to` strings).
    pub fn move_labels(&self) -> impl Iterator<Item = &str> {
        self.steps.iter().map(|s| s.label.as_str())
    }
}

/// Search priority: (CSC conflicts, literals, cycle-time bits, moves).
type Score = (usize, u32, u64, usize);

/// One node of the best-first search.
struct Node {
    stg: Stg,
    sg: StateGraph,
    moves: Vec<String>,
    parent: Option<usize>,
    conflicts: usize,
    literals: u32,
    cycle: f64,
}

impl Node {
    /// Lexicographic search priority: dissolve CSC conflicts first, then
    /// minimize literals, then cycle time, then prefer fewer moves. The
    /// cycle is non-negative, so its bit pattern orders like the value.
    fn score(&self) -> Score {
        (
            self.conflicts,
            self.literals,
            self.cycle.to_bits(),
            self.moves.len(),
        )
    }
}

/// Searches for a concurrency reduction of `stg` that minimizes first
/// the number of CSC conflicts, then the literal estimate, subject to
/// `opts`. Returns a zero-move [`Reduction`] when no serializing move
/// improves on the specification.
///
/// # Worked example
///
/// The mirror of the paper's Fig. 1 controller — `Req` driven by the
/// circuit, `Ack` by the environment — allows `Req+` concurrent with
/// `Ack-`. Its five-state graph binary-codes two states identically
/// (`11`), one enabling the output edge `Req-` and one not: a CSC
/// conflict that state-signal insertion cannot fix (the conflicting
/// states are separated by input events only). Serializing `Req+` after
/// `Ack-` removes the offending interleaving instead: four states, all
/// codes distinct, and the single output reduces to an inverter
/// (`Req' = !Ack`, one literal) — no state signal inserted.
///
/// ```
/// use reshuffle_petri::parse_g;
/// use reshuffle_reduce::{reduce_concurrency, ReduceOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stg = parse_g(
///     ".model mfig1\n.inputs Ack\n.outputs Req\n.graph\n\
///      Ack+ Req-\nReq- Req+ Ack-\nAck- Ack+\nReq+ Ack+\n\
///      .marking { <Req+,Ack+> <Ack-,Ack+> }\n.end\n",
/// )?;
/// let red = reduce_concurrency(&stg, &ReduceOptions::default())?;
/// assert_eq!(red.move_labels().collect::<Vec<_>>(), ["Ack- -> Req+"]);
/// assert_eq!(red.sg.num_states(), 4);
/// assert_eq!(red.csc_conflicts, 0);
/// assert_eq!(red.literals, 1);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`ReduceError::Sg`] / [`ReduceError::Timing`] if the input STG
///   itself has no state graph or no periodic behaviour;
/// * [`ReduceError::NoFeasibleReduction`] if `opts.max_cycle_time`
///   excludes the specification and every candidate reduction.
pub fn reduce_concurrency(stg: &Stg, opts: &ReduceOptions) -> Result<Reduction> {
    let sg = build_state_graph(stg)?;
    reduce_concurrency_from(stg, sg, opts)
}

/// [`reduce_concurrency`] for callers that already built the
/// specification's state graph (`sg` must be the state graph of `stg`);
/// avoids rebuilding the most expensive artifact.
///
/// # Errors
///
/// See [`reduce_concurrency`].
pub fn reduce_concurrency_from(
    stg: &Stg,
    sg: StateGraph,
    opts: &ReduceOptions,
) -> Result<Reduction> {
    let (conflicts, literals, cycle) = evaluate(stg, &sg, opts)?;
    let root = Node {
        stg: stg.clone(),
        sg,
        moves: Vec::new(),
        parent: None,
        conflicts,
        literals,
        cycle,
    };

    // (`Option::is_none_or` would read better but postdates the 1.75 MSRV.)
    let feasible = |n: &Node| match opts.max_cycle_time {
        None => true,
        Some(b) => n.cycle <= b,
    };
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(root.sg.fingerprint());
    let mut best: Option<usize> = feasible(&root).then_some(0);
    let mut nodes: Vec<Node> = vec![root];
    // Min-heap on (score, node id); the id breaks ties deterministically.
    let mut heap: BinaryHeap<Reverse<(Score, usize)>> = BinaryHeap::new();
    heap.push(Reverse((nodes[0].score(), 0)));

    // Serializing places only ever break symmetry, so an asymmetric
    // root spec stays asymmetric along every path — skip the per-node
    // automorphism brute force entirely in that (common) case.
    let maybe_symmetric = !signal_automorphisms(stg).is_empty();

    let mut expansions = 0usize;
    let mut pruned_total = 0usize;
    let mut scored = 0usize;
    while let Some(Reverse((_, id))) = heap.pop() {
        if expansions >= opts.max_expansions {
            break;
        }
        if nodes[id].moves.len() >= opts.max_moves {
            continue;
        }
        expansions += 1;
        let (candidates, pruned) = candidate_moves(&nodes[id], maybe_symmetric);
        pruned_total += pruned;
        for (stg2, sg2, label) in candidates {
            if !visited.insert(sg2.fingerprint()) {
                continue;
            }
            scored += 1;
            let Ok((conflicts, literals, cycle)) = evaluate(&stg2, &sg2, opts) else {
                continue; // e.g. the move deadlocks the timed simulation
            };
            if matches!(opts.max_cycle_time, Some(b) if cycle > b) {
                continue; // the bound prunes this branch
            }
            let mut moves = nodes[id].moves.clone();
            moves.push(label);
            let node = Node {
                stg: stg2,
                sg: sg2,
                moves,
                parent: Some(id),
                conflicts,
                literals,
                cycle,
            };
            let nid = nodes.len();
            if !matches!(best, Some(b) if nodes[b].score() <= node.score()) {
                best = Some(nid);
            }
            heap.push(Reverse((node.score(), nid)));
            nodes.push(node);
        }
    }

    let Some(best) = best else {
        return Err(ReduceError::NoFeasibleReduction);
    };
    // Reconstruct the winning path for the per-move delta report.
    let mut steps = Vec::new();
    let mut cur = best;
    while let Some(parent) = nodes[cur].parent {
        steps.push(MoveStep {
            label: nodes[cur]
                .moves
                .last()
                .expect("non-root node carries its move")
                .clone(),
            literals: nodes[cur].literals,
            cycle: nodes[cur].cycle,
            csc_conflicts: nodes[cur].conflicts,
        });
        cur = parent;
    }
    steps.reverse();
    let n = nodes.swap_remove(best);
    Ok(Reduction {
        stg: n.stg,
        sg: n.sg,
        steps,
        literals: n.literals,
        cycle: n.cycle,
        csc_conflicts: n.conflicts,
        pruned: pruned_total,
        expansions,
        scored,
    })
}

/// Scores one STG/state-graph pair: CSC conflicts, literal estimate and
/// steady-state cycle time under the options' delay model.
fn evaluate(
    stg: &Stg,
    sg: &StateGraph,
    opts: &ReduceOptions,
) -> std::result::Result<(usize, u32, f64), TimingError> {
    let conflicts = analyze_csc(sg).num_csc_conflicts();
    let literals = literal_estimate(sg);
    let delays = DelayModel::uniform(stg, opts.input_delay, opts.gate_delay);
    let run = simulate(stg, &delays, &SimOptions::default())?;
    Ok((conflicts, literals, run.period))
}

/// Enumerates the legal serializing moves applicable to `node`: for each
/// concurrent pair, each direction whose delayed edge is non-input and
/// single-instance, with the state graph re-derived incrementally and
/// the liveness/speed-independence gates applied. Mirror-image moves
/// under a signal automorphism of the node's STG are dominated — they
/// score identically by symmetry — so only the lexicographically least
/// representative of each orbit is kept; the second value counts the
/// discarded mirrors. `maybe_symmetric` is the root spec's verdict:
/// when it had no automorphisms, no derived node can have any either.
fn candidate_moves(node: &Node, maybe_symmetric: bool) -> (Vec<(Stg, StateGraph, String)>, usize) {
    let mut out: Vec<(Stg, StateGraph, String, TransitionId, TransitionId)> = Vec::new();
    for (a, b) in concurrent_pairs(&node.sg) {
        for (from, to) in [(a, b), (b, a)] {
            // Never delay the environment: the waiting edge must be an
            // output or internal signal.
            if !node.sg.signals()[to.signal.index()].kind.is_noninput() {
                continue;
            }
            // Serializing multi-instance edges needs per-instance case
            // analysis the paper does not require for its benchmarks.
            let &[from_t] = node.stg.transitions_of_edge(from).as_slice() else {
                continue;
            };
            let &[to_t] = node.stg.transitions_of_edge(to).as_slice() else {
                continue;
            };
            let Ok(sg2) = restrict_with_place(&node.sg, &[EventId(from_t.0)], &[EventId(to_t.0)])
            else {
                continue; // the rewrite would make the net unsafe
            };
            // Liveness: no deadlock, every event still fires somewhere.
            if !sg2.deadlock_states().is_empty() || !all_events_fire(&sg2) {
                continue;
            }
            if !speed_independence(&sg2).is_speed_independent() {
                continue;
            }
            let mut stg2 = node.stg.clone();
            if insert_causal_place(&mut stg2, from_t, to_t).is_err() {
                continue;
            }
            let label = format!(
                "{} -> {}",
                node.stg.transition_name(from_t),
                node.stg.transition_name(to_t)
            );
            out.push((stg2, sg2, label, from_t, to_t));
        }
    }

    // Symmetry dominance: keep only orbit-minimal labels.
    let mut pruned = 0usize;
    let autos = if maybe_symmetric {
        signal_automorphisms(&node.stg)
    } else {
        Vec::new()
    };
    if !autos.is_empty() {
        let labels: HashSet<String> = out.iter().map(|(_, _, l, _, _)| l.clone()).collect();
        out.retain(|(_, _, label, from_t, to_t)| {
            for perm in &autos {
                let (Some(mf), Some(mt)) = (
                    map_transition(&node.stg, *from_t, perm),
                    map_transition(&node.stg, *to_t, perm),
                ) else {
                    continue;
                };
                let mirror = format!(
                    "{} -> {}",
                    node.stg.transition_name(mf),
                    node.stg.transition_name(mt)
                );
                if labels.contains(&mirror) && mirror.as_str() < label.as_str() {
                    pruned += 1;
                    return false;
                }
            }
            true
        });
    }
    (
        out.into_iter()
            .map(|(stg, sg, label, _, _)| (stg, sg, label))
            .collect(),
        pruned,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::parse_g;

    const MFIG1: &str = "\
.model mfig1
.inputs Ack
.outputs Req
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    const TOGGLE: &str = "\
.model t
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn mfig1_conflict_dissolved_without_state_signals() {
        let stg = parse_g(MFIG1).unwrap();
        let red = reduce_concurrency(&stg, &ReduceOptions::default()).unwrap();
        assert_eq!(red.steps.len(), 1);
        assert_eq!(red.csc_conflicts, 0);
        assert_eq!(red.sg.num_states(), 4);
        // The reduced STG rebuilds to the incrementally-derived graph.
        let rebuilt = build_state_graph(&red.stg).unwrap();
        assert_eq!(rebuilt.fingerprint(), red.sg.fingerprint());
        // The winning path is recorded step by step, and mfig1 has no
        // symmetric moves to prune.
        assert_eq!(
            red.steps,
            vec![MoveStep {
                label: "Ack- -> Req+".to_string(),
                literals: 1,
                cycle: 6.0,
                csc_conflicts: 0,
            }]
        );
        assert_eq!(red.pruned, 0);
        // The search did real work and reported it.
        assert!(red.expansions > 0);
        assert!(red.scored > 0);
    }

    /// Fork/join with two symmetric request/ack branches: every move on
    /// branch 1 has a mirror on branch 2.
    const SYMPAR: &str = "\
.model sympar
.inputs go a1 a2
.outputs r1 r2
.graph
go+ r1+ r2+
r1+ a1+
r2+ a2+
a1+ go-
a2+ go-
go- r1- r2-
r1- a1-
r2- a2-
a1- go+
a2- go+
.marking { <a1-,go+> <a2-,go+> }
.end
";

    #[test]
    fn symmetric_moves_are_pruned() {
        let stg = parse_g(SYMPAR).unwrap();
        let red = reduce_concurrency(&stg, &ReduceOptions::default()).unwrap();
        // The root's candidate set is mirror-symmetric under the 1<->2
        // branch swap, so half of it is dominance-pruned (deeper nodes
        // have broken symmetry and prune nothing).
        assert!(red.pruned > 0, "no mirrors pruned");
        // Pruning must not change the outcome quality: the winner's
        // moves all live on the lexicographically-least branch.
        for m in red.move_labels() {
            assert!(!m.starts_with("a2") && !m.starts_with("r2"), "{m}");
        }
    }

    #[test]
    fn sequential_spec_reduces_to_itself() {
        let stg = parse_g(TOGGLE).unwrap();
        let red = reduce_concurrency(&stg, &ReduceOptions::default()).unwrap();
        assert!(red.steps.is_empty());
        assert_eq!(red.sg.num_states(), 4);
        assert_eq!(red.cycle, 6.0);
    }

    #[test]
    fn cycle_bound_prunes_everything() {
        // The toggle's cycle is 6.0; a bound below that excludes even
        // the unreduced specification.
        let stg = parse_g(TOGGLE).unwrap();
        let opts = ReduceOptions {
            max_cycle_time: Some(1.0),
            ..Default::default()
        };
        let e = reduce_concurrency(&stg, &opts).unwrap_err();
        assert_eq!(e, ReduceError::NoFeasibleReduction);
    }

    #[test]
    fn cycle_bound_keeps_the_spec_when_moves_are_too_slow() {
        // mfig1's spec cycle is 5.0 and its only useful move costs 6.0:
        // bounding at 5.0 forces the zero-move reduction.
        let stg = parse_g(MFIG1).unwrap();
        let opts = ReduceOptions {
            max_cycle_time: Some(5.0),
            ..Default::default()
        };
        let red = reduce_concurrency(&stg, &opts).unwrap();
        assert!(red.steps.is_empty());
        assert_eq!(red.csc_conflicts, 1);
        assert_eq!(red.cycle, 5.0);
    }

    #[test]
    fn move_budget_zero_is_identity() {
        let stg = parse_g(MFIG1).unwrap();
        let opts = ReduceOptions {
            max_moves: 0,
            ..Default::default()
        };
        let red = reduce_concurrency(&stg, &opts).unwrap();
        assert!(red.steps.is_empty());
        assert_eq!(red.csc_conflicts, 1);
    }

    #[test]
    fn inconsistent_input_reports_sg_error() {
        let bad = parse_g(
            ".model bad\n.inputs a\n.graph\na+ a+/2\na+/2 a+\n\
             .marking { <a+/2,a+> }\n.end\n",
        )
        .unwrap();
        let e = reduce_concurrency(&bad, &ReduceOptions::default()).unwrap_err();
        assert!(matches!(e, ReduceError::Sg(_)), "{e:?}");
    }
}
