//! Concurrency reduction of STGs (DAC 1999, Sec. 4).
//!
//! Reducing concurrency — serializing transitions that the
//! specification allows in parallel — shrinks the state graph, often
//! removes CSC conflicts without extra state signals, and trades cycle
//! time for logic. The paper drives the search with the literal
//! estimate of [`reshuffle_synth::literal_estimate`] and the timed
//! cycle metrics of `reshuffle-timing`.
//!
//! This crate is the typed skeleton for that optimization loop: the
//! entry points and result shapes are final, the algorithms return
//! [`ReduceError::Unimplemented`] until a later PR lands them.

#![warn(missing_docs)]

use std::fmt;

use reshuffle_petri::Stg;

/// Errors from concurrency reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReduceError {
    /// The requested feature is not implemented yet.
    Unimplemented {
        /// The missing feature, for error messages.
        feature: &'static str,
    },
    /// No reduction satisfies the constraints (e.g. the cycle-time
    /// bound).
    NoFeasibleReduction,
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::Unimplemented { feature } => {
                write!(
                    f,
                    "concurrency reduction: `{feature}` is not implemented yet"
                )
            }
            ReduceError::NoFeasibleReduction => {
                write!(f, "no concurrency reduction satisfies the constraints")
            }
        }
    }
}

impl std::error::Error for ReduceError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, ReduceError>;

/// Constraints and budgets for the reduction search.
#[derive(Debug, Clone)]
pub struct ReduceOptions {
    /// Upper bound on the steady-state cycle time of the reduced STG
    /// (`None` = unconstrained, minimize literals only).
    pub max_cycle_time: Option<f64>,
    /// Maximum number of serializing moves to apply.
    pub max_moves: usize,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions {
            max_cycle_time: None,
            max_moves: 16,
        }
    }
}

/// A concurrency-reduced refinement of the input STG.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced STG.
    pub stg: Stg,
    /// Serializing moves applied, in order, as human-readable strings.
    pub moves: Vec<String>,
    /// Literal estimate of the reduced specification.
    pub literals: u32,
}

/// Searches for a concurrency reduction of `stg` that minimizes the
/// literal estimate subject to `opts`.
///
/// # Errors
///
/// Currently always [`ReduceError::Unimplemented`]; later PRs will
/// return [`ReduceError::NoFeasibleReduction`] when the constraints
/// cannot be met.
pub fn reduce_concurrency(_stg: &Stg, _opts: &ReduceOptions) -> Result<Reduction> {
    Err(ReduceError::Unimplemented {
        feature: "serializing-move search",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::parse_g;

    #[test]
    fn reduction_is_honestly_unimplemented() {
        let stg = parse_g(
            ".model t\n.inputs a\n.outputs b\n.graph\n\
             a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let err = reduce_concurrency(&stg, &ReduceOptions::default()).unwrap_err();
        assert!(matches!(err, ReduceError::Unimplemented { .. }));
    }
}
