//! Implementability properties of state graphs (Section 2 of the paper):
//! determinism, commutativity, output persistency — together
//! *speed independence* — plus deadlock freedom.
//!
//! Checks return structured *violation reports* rather than errors, so
//! callers can both assert properties in tests and display diagnostics.

use reshuffle_petri::SignalEdge;

use crate::sg::{StateGraph, StateId};

/// A determinism violation: two arcs with the same edge label leave one
/// state towards different targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NondeterminismWitness {
    /// The branching state.
    pub state: StateId,
    /// The doubly-enabled edge.
    pub edge: SignalEdge,
    /// The two distinct successor states.
    pub targets: (StateId, StateId),
}

/// A commutativity violation: the two orders of firing a diamond of
/// events reach different states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommutativityWitness {
    /// The state where both events are enabled.
    pub state: StateId,
    /// The two event edges.
    pub edges: (SignalEdge, SignalEdge),
    /// States reached by `a;b` and by `b;a`.
    pub results: (StateId, StateId),
}

/// A persistency violation: `disabled` was enabled in `state` but not
/// after firing `by`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistencyWitness {
    /// The state where both events were enabled.
    pub state: StateId,
    /// The event that got disabled.
    pub disabled: SignalEdge,
    /// The event whose firing disabled it.
    pub by: SignalEdge,
}

/// Returns all determinism violations (empty = deterministic).
pub fn nondeterminism_witnesses(sg: &StateGraph) -> Vec<NondeterminismWitness> {
    let mut out = Vec::new();
    for s in sg.state_ids() {
        let succ = sg.succ(s);
        for i in 0..succ.len() {
            let (e1, t1) = succ.get(i);
            for j in i + 1..succ.len() {
                let (e2, t2) = succ.get(j);
                let (Some(a), Some(b)) = (sg.event(e1).edge, sg.event(e2).edge) else {
                    continue;
                };
                if a == b && t1 != t2 {
                    out.push(NondeterminismWitness {
                        state: s,
                        edge: a,
                        targets: (t1, t2),
                    });
                }
            }
        }
    }
    out
}

/// Returns all commutativity violations (empty = commutative).
///
/// For every state with two distinct enabled edges `a`, `b` where both
/// interleavings exist, the final states must coincide.
pub fn commutativity_witnesses(sg: &StateGraph) -> Vec<CommutativityWitness> {
    let mut out = Vec::new();
    for s in sg.state_ids() {
        let edges = sg.enabled_edges(s);
        for (i, &a) in edges.iter().enumerate() {
            for &b in &edges[i + 1..] {
                let (Some(sa), Some(sb)) = (sg.step_edge(s, a), sg.step_edge(s, b)) else {
                    continue;
                };
                let (Some(sab), Some(sba)) = (sg.step_edge(sa, b), sg.step_edge(sb, a)) else {
                    continue;
                };
                if sab != sba {
                    out.push(CommutativityWitness {
                        state: s,
                        edges: (a, b),
                        results: (sab, sba),
                    });
                }
            }
        }
    }
    out
}

/// Returns all output-persistency violations (empty = output-persistent).
///
/// Per the paper: every *non-input* event must stay enabled until it
/// fires, and *input* events may only be disabled by other input events
/// (the environment's choice), never by the circuit's own events.
pub fn persistency_witnesses(sg: &StateGraph) -> Vec<PersistencyWitness> {
    let mut out = Vec::new();
    for s in sg.state_ids() {
        let edges = sg.enabled_edges(s);
        for (ev, t) in sg.succ(s) {
            let Some(fired) = sg.event(ev).edge else {
                continue;
            };
            let fired_is_input = sg.signal(fired.signal).kind == reshuffle_petri::SignalKind::Input;
            for &other in &edges {
                if other == fired {
                    continue;
                }
                let other_is_input =
                    sg.signal(other.signal).kind == reshuffle_petri::SignalKind::Input;
                // Input events may disable input events.
                if fired_is_input && other_is_input {
                    continue;
                }
                if !sg.enables_edge(t, other) {
                    out.push(PersistencyWitness {
                        state: s,
                        disabled: other,
                        by: fired,
                    });
                }
            }
        }
    }
    out
}

/// Aggregate speed-independence report.
#[derive(Debug, Clone, Default)]
pub struct SpeedIndependenceReport {
    /// Determinism violations.
    pub nondeterminism: Vec<NondeterminismWitness>,
    /// Commutativity violations.
    pub noncommutativity: Vec<CommutativityWitness>,
    /// Persistency violations.
    pub nonpersistency: Vec<PersistencyWitness>,
}

impl SpeedIndependenceReport {
    /// True if no violations were found.
    pub fn is_speed_independent(&self) -> bool {
        self.nondeterminism.is_empty()
            && self.noncommutativity.is_empty()
            && self.nonpersistency.is_empty()
    }
}

/// Runs all three speed-independence checks.
pub fn speed_independence(sg: &StateGraph) -> SpeedIndependenceReport {
    SpeedIndependenceReport {
        nondeterminism: nondeterminism_witnesses(sg),
        noncommutativity: commutativity_witnesses(sg),
        nonpersistency: persistency_witnesses(sg),
    }
}

/// True if every event of the graph's event table labels at least one arc.
pub fn all_events_fire(sg: &StateGraph) -> bool {
    let mut fired = vec![false; sg.num_events()];
    for s in sg.state_ids() {
        for &e in sg.succ(s).events() {
            fired[e.index()] = true;
        }
    }
    fired.into_iter().all(|b| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_state_graph;
    use reshuffle_petri::parse_g;

    const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn fig1_is_speed_independent() {
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        let rep = speed_independence(&sg);
        assert!(rep.is_speed_independent(), "{rep:?}");
        assert!(all_events_fire(&sg));
    }

    #[test]
    fn output_disabled_by_input_is_flagged() {
        // Free choice between input a+ and output b+: firing a+ disables
        // b+, which violates output persistency.
        let src = "\
.model race
.inputs a
.outputs b
.graph
p0 a+ b+
a+ a-
b+ b-
a- p0
b- p0
.marking { p0 }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let w = persistency_witnesses(&sg);
        assert!(!w.is_empty());
        // Both directions are violations: a+ disables b+ (output killed)
        // and b+ disables a+ (input disabled by an output).
        assert!(w.len() >= 2, "{w:?}");
    }

    #[test]
    fn input_choice_is_allowed() {
        // Free choice between two inputs is legal (environment decides).
        let src = "\
.model choice
.inputs a b
.graph
p0 a+ b+
a+ a-
b+ b-
a- p0
b- p0
.marking { p0 }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let w = persistency_witnesses(&sg);
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn concurrent_events_are_persistent() {
        let src = "\
.model conc
.inputs a
.outputs b
.graph
p0 a+
p1 b+
a+ a-
b+ b-
a- p0
b- p1
.marking { p0 p1 }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let rep = speed_independence(&sg);
        assert!(rep.is_speed_independent(), "{rep:?}");
    }
}
