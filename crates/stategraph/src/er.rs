//! Excitation regions (Section 2 of the paper).
//!
//! The *excitation set* of an edge `a` is every state enabling `a`; an
//! *excitation region* `ER(a)` is a maximal connected subset of it
//! (connectivity in the underlying undirected state graph). For
//! speed-independent graphs, two output events are concurrent iff their
//! excitation sets intersect — the hook used by `FwdRed`.

use std::collections::{BTreeSet, VecDeque};

use reshuffle_petri::SignalEdge;

use crate::sg::{StateGraph, StateId};

/// All states enabling some event with edge `edge`.
pub fn excitation_set(sg: &StateGraph, edge: SignalEdge) -> BTreeSet<StateId> {
    sg.state_ids()
        .filter(|&s| sg.enables_edge(s, edge))
        .collect()
}

/// The excitation set partitioned into maximal connected regions.
/// Connectivity uses arcs of the graph restricted to the set, in either
/// direction.
pub fn excitation_regions(sg: &StateGraph, edge: SignalEdge) -> Vec<BTreeSet<StateId>> {
    let set = excitation_set(sg, edge);
    let pred = sg.predecessors();
    let mut seen: BTreeSet<StateId> = BTreeSet::new();
    let mut regions = Vec::new();
    for &start in &set {
        if seen.contains(&start) {
            continue;
        }
        let mut region = BTreeSet::new();
        let mut q = VecDeque::new();
        q.push_back(start);
        seen.insert(start);
        while let Some(s) = q.pop_front() {
            region.insert(s);
            let neighbors = sg
                .succ(s)
                .targets()
                .iter()
                .copied()
                .chain(pred[s as usize].iter().map(|&(_, t)| t));
            for t in neighbors {
                if set.contains(&t) && seen.insert(t) {
                    q.push_back(t);
                }
            }
        }
        regions.push(region);
    }
    regions
}

/// The minimal states of a region: states with no predecessor inside the
/// region (entry points of the excitation).
pub fn minimal_states(sg: &StateGraph, region: &BTreeSet<StateId>) -> Vec<StateId> {
    let pred = sg.predecessors();
    region
        .iter()
        .copied()
        .filter(|&s| !pred[s as usize].iter().any(|&(_, p)| region.contains(&p)))
        .collect()
}

/// States backward-reachable from `targets` while staying inside
/// `within` (inclusive of `targets ∩ within`). Used by `FwdRed`:
/// `back_reach(ER(a) ∩ ER(b))` restricted to `ER(a)`.
pub fn backward_reachable_within(
    sg: &StateGraph,
    targets: &BTreeSet<StateId>,
    within: &BTreeSet<StateId>,
) -> BTreeSet<StateId> {
    let pred = sg.predecessors();
    let mut out: BTreeSet<StateId> = targets
        .iter()
        .copied()
        .filter(|s| within.contains(s))
        .collect();
    let mut q: VecDeque<StateId> = out.iter().copied().collect();
    while let Some(s) = q.pop_front() {
        for &(_, p) in &pred[s as usize] {
            if within.contains(&p) && out.insert(p) {
                q.push_back(p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_state_graph;
    use reshuffle_petri::{parse_g, Polarity};

    const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn fig1_ers_intersect_as_in_paper() {
        // ER(Req+) = {1*0*, 00*}, ER(Ack-) = {1*0*, 1*1}: they intersect,
        // so Req+ and Ack- are concurrent.
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        let req = sg.signal_by_name("Req").unwrap();
        let ack = sg.signal_by_name("Ack").unwrap();
        let req_p = SignalEdge {
            signal: req,
            polarity: Polarity::Rise,
        };
        let ack_m = SignalEdge {
            signal: ack,
            polarity: Polarity::Fall,
        };
        let er_req = excitation_set(&sg, req_p);
        let er_ack = excitation_set(&sg, ack_m);
        assert_eq!(er_req.len(), 2);
        assert_eq!(er_ack.len(), 2);
        let inter: Vec<_> = er_req.intersection(&er_ack).collect();
        assert_eq!(inter.len(), 1);
    }

    #[test]
    fn regions_are_connected_components() {
        // Two instances of b+ in disjoint parts of the cycle produce two
        // separate excitation regions of edge b+.
        let src = "\
.model two
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+/2
a+/2 b+/2
b+/2 a-/2
a-/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let b = sg.signal_by_name("b").unwrap();
        let bp = SignalEdge {
            signal: b,
            polarity: Polarity::Rise,
        };
        let regions = excitation_regions(&sg, bp);
        assert_eq!(regions.len(), 2);
        for r in &regions {
            assert_eq!(r.len(), 1);
            assert_eq!(minimal_states(&sg, r).len(), 1);
        }
    }

    #[test]
    fn minimal_states_of_multi_state_region() {
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        let req = sg.signal_by_name("Req").unwrap();
        let req_p = SignalEdge {
            signal: req,
            polarity: Polarity::Rise,
        };
        let regions = excitation_regions(&sg, req_p);
        assert_eq!(regions.len(), 1);
        // ER(Req+) = {1*0*, 00*}; its minimal state is 1*0* (entered by
        // Req-), since 00* is reached from 1*0* by Ack-.
        let mins = minimal_states(&sg, &regions[0]);
        assert_eq!(mins.len(), 1);
    }

    #[test]
    fn backward_reach_stays_within() {
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        let req = sg.signal_by_name("Req").unwrap();
        let ack = sg.signal_by_name("Ack").unwrap();
        let req_p = SignalEdge {
            signal: req,
            polarity: Polarity::Rise,
        };
        let ack_m = SignalEdge {
            signal: ack,
            polarity: Polarity::Fall,
        };
        let er_req = excitation_set(&sg, req_p);
        let er_ack = excitation_set(&sg, ack_m);
        let inter: BTreeSet<_> = er_req.intersection(&er_ack).copied().collect();
        let br = backward_reachable_within(&sg, &inter, &er_req);
        // 1*0* is minimal in ER(Req+), so nothing else is backward
        // reachable inside the region.
        assert_eq!(br, inter);
    }
}
