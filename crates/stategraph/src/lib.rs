//! State graphs for asynchronous circuit synthesis.
//!
//! This crate builds binary-encoded state graphs from Signal Transition
//! Graphs and implements the analyses of Section 2 of *Automatic
//! Synthesis and Optimization of Partially Specified Asynchronous
//! Systems* (DAC 1999):
//!
//! * [`build_state_graph`] — reachability + consistent binary encoding;
//! * [`props`] — determinism, commutativity, output persistency
//!   (together: speed independence);
//! * [`csc`] — Unique/Complete State Coding conflict detection;
//! * [`er`] — excitation regions and their minimal states;
//! * [`conc`] — the concurrency relation (state diamonds);
//! * [`restrict`] — incremental re-derivation after serializing rewrites;
//! * [`nextstate`] — implied-value tables feeding logic synthesis.
//!
//! # Example
//!
//! ```
//! use reshuffle_petri::parse_g;
//! use reshuffle_sg::{build_state_graph, csc::analyze_csc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The controller of Fig. 1: it violates CSC (codes 11* vs 1*1).
//! let stg = parse_g(
//!     ".model fig1\n.inputs Req\n.outputs Ack\n.graph\n\
//!      Ack+ Req-\nReq- Req+ Ack-\nAck- Ack+\nReq+ Ack+\n\
//!      .marking { <Req+,Ack+> <Ack-,Ack+> }\n.end\n",
//! )?;
//! let sg = build_state_graph(&stg)?;
//! assert_eq!(sg.num_states(), 5);
//! assert_eq!(analyze_csc(&sg).num_csc_conflicts(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod build;
pub mod conc;
pub mod csc;
pub mod dot;
pub mod er;
mod error;
pub mod nextstate;
pub mod props;
pub mod restrict;
mod sg;

pub use build::{
    build_state_graph, build_state_graph_stats, build_state_graph_with, event_label_map,
    BuildOptions, BuildStats,
};
pub use error::{Result, SgError};
pub use sg::{Arcs, ArcsIter, EventId, EventInfo, MarkingId, State, StateGraph, StateId};
