//! Graphviz export of state graphs, rendering states as binary codes
//! with excitation stars (like Fig. 1(d) of the paper).

use std::fmt::Write as _;

use crate::sg::StateGraph;

/// Renders the state graph as a Graphviz digraph.
pub fn write_dot(sg: &StateGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for s in sg.state_ids() {
        let shape = if s == sg.initial() {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(
            out,
            "  s{s} [shape={shape},label=\"{}\"];",
            sg.render_state(s)
        );
    }
    for s in sg.state_ids() {
        for (e, t) in sg.succ(s) {
            let _ = writeln!(out, "  s{s} -> s{t} [label=\"{}\"];", sg.event(e).label);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_state_graph;
    use reshuffle_petri::parse_g;

    #[test]
    fn dot_contains_codes_and_labels() {
        let src = "\
.model ok
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let dot = write_dot(&sg);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("a+"));
        assert!(dot.contains("doublecircle"));
        // Four states rendered.
        assert_eq!(dot.matches("shape=").count(), 4);
    }
}
