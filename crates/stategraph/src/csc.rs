//! Unique and Complete State Coding (USC/CSC) analysis.
//!
//! A consistent SG has *CSC* iff every pair of states with equal binary
//! codes enables the same set of non-input signal events (Section 2).
//! CSC is necessary and sufficient for deriving logic; the number of
//! remaining conflicts drives the cost function of the reduction search.

use std::collections::HashMap;

use crate::sg::{StateGraph, StateId};

/// A pair of states witnessing a coding conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodingConflict {
    /// First state (lower id).
    pub a: StateId,
    /// Second state.
    pub b: StateId,
    /// The shared binary code.
    pub code: u64,
    /// True if the pair also violates CSC (different non-input
    /// excitation); false for pure USC conflicts.
    pub csc: bool,
}

/// Report of all USC/CSC conflicts of a state graph.
#[derive(Debug, Clone, Default)]
pub struct CscReport {
    /// All conflicting pairs (USC conflicts; `csc` marks CSC ones).
    pub conflicts: Vec<CodingConflict>,
}

impl CscReport {
    /// Number of CSC-violating pairs.
    pub fn num_csc_conflicts(&self) -> usize {
        self.conflicts.iter().filter(|c| c.csc).count()
    }

    /// Number of USC-violating pairs (includes CSC pairs).
    pub fn num_usc_conflicts(&self) -> usize {
        self.conflicts.len()
    }

    /// True if the graph satisfies CSC.
    pub fn has_csc(&self) -> bool {
        self.num_csc_conflicts() == 0
    }

    /// True if the graph satisfies USC (stronger than CSC).
    pub fn has_usc(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// The number of distinct binary codes involved in CSC conflicts.
    pub fn num_conflicting_codes(&self) -> usize {
        let mut codes: Vec<u64> = self
            .conflicts
            .iter()
            .filter(|c| c.csc)
            .map(|c| c.code)
            .collect();
        codes.sort_unstable();
        codes.dedup();
        codes.len()
    }
}

/// Computes all USC/CSC conflicts by bucketing states on their codes.
pub fn analyze_csc(sg: &StateGraph) -> CscReport {
    let mut buckets: HashMap<u64, Vec<StateId>> = HashMap::new();
    for s in sg.state_ids() {
        buckets.entry(sg.code(s)).or_default().push(s);
    }
    let mut conflicts = Vec::new();
    for (&code, states) in &buckets {
        if states.len() < 2 {
            continue;
        }
        for (i, &a) in states.iter().enumerate() {
            let ea = sg.enabled_noninput_edges(a);
            for &b in &states[i + 1..] {
                let eb = sg.enabled_noninput_edges(b);
                conflicts.push(CodingConflict {
                    a: a.min(b),
                    b: a.max(b),
                    code,
                    csc: ea != eb,
                });
            }
        }
    }
    conflicts.sort_by_key(|c| (c.a, c.b));
    CscReport { conflicts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_state_graph;
    use reshuffle_petri::parse_g;

    const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn fig1_has_one_csc_conflict() {
        // The paper: binary codes 11* and 1*1 correspond to different
        // states -> CSC violated.
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        let rep = analyze_csc(&sg);
        assert!(!rep.has_csc());
        assert_eq!(rep.num_csc_conflicts(), 1);
        let c = rep.conflicts.iter().find(|c| c.csc).unwrap();
        // One of the two states enables Ack- (an output), the other not.
        let ea = sg.enabled_noninput_edges(c.a);
        let eb = sg.enabled_noninput_edges(c.b);
        assert_ne!(ea, eb);
    }

    #[test]
    fn simple_pipeline_has_csc() {
        let src = "\
.model ok
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let rep = analyze_csc(&sg);
        assert!(rep.has_csc());
        assert!(rep.has_usc());
        assert_eq!(rep.num_conflicting_codes(), 0);
    }

    #[test]
    fn usc_without_csc_conflict() {
        // Two states share code 10 but enable the same outputs (none):
        // after a+ (environment) the circuit is idle both times.
        // Construct: a+ b+ a- b- a+/2 ... a cycle revisiting code.
        let src = "\
.model usc
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+/2
a+/2 b+/2
b+/2 a-/2
a-/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let rep = analyze_csc(&sg);
        // Eight states, four distinct codes, each shared by two states
        // with identical output excitation -> USC conflicts, no CSC.
        assert_eq!(sg.num_states(), 8);
        assert!(rep.has_csc(), "{:?}", rep.conflicts);
        assert!(!rep.has_usc());
        assert_eq!(rep.num_usc_conflicts(), 4);
    }
}
