//! Errors for state-graph construction and analysis.

use std::fmt;

use reshuffle_petri::PetriError;

/// Errors produced while building or analysing a state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgError {
    /// Error bubbled up from the underlying Petri-net machinery.
    Petri(PetriError),
    /// More signals than the 64 supported by the `u64` state codes.
    TooManySignals(usize),
    /// The STG is not consistent: a signal would have to be both 0 and 1
    /// in the same state, or rise/fall edges do not alternate.
    Inconsistent {
        /// Name of the offending signal.
        signal: String,
        /// Human-readable witness of the violation.
        witness: String,
    },
    /// A structural precondition was violated (described in the message).
    Invalid(String),
}

impl fmt::Display for SgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgError::Petri(e) => write!(f, "{e}"),
            SgError::TooManySignals(n) => {
                write!(f, "{n} signals exceed the supported maximum of 64")
            }
            SgError::Inconsistent { signal, witness } => {
                write!(f, "STG is not consistent for signal `{signal}`: {witness}")
            }
            SgError::Invalid(m) => write!(f, "invalid state graph: {m}"),
        }
    }
}

impl std::error::Error for SgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SgError::Petri(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PetriError> for SgError {
    fn from(e: PetriError) -> Self {
        SgError::Petri(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, SgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SgError::TooManySignals(100).to_string().contains("64"));
        let e = SgError::Inconsistent {
            signal: "a".into(),
            witness: "a+ fires twice".into(),
        };
        assert!(e.to_string().contains("`a`"));
        let p: SgError = PetriError::UnknownName("x".into()).into();
        assert!(p.to_string().contains("x"));
    }
}
