//! The state-graph data structure.
//!
//! A [`StateGraph`] is a finite automaton whose states carry binary
//! signal codes and whose arcs are labelled with *events*. An event is a
//! specific STG transition (so two instances `a+` and `a+/2` are two
//! events with the same [`SignalEdge`] label); most properties
//! (determinism, persistency, concurrency, excitation regions) are
//! defined at the *edge* level, merging instances, exactly as in the
//! paper.
//!
//! State graphs are immutable once built; transformations (concurrency
//! reduction) construct new graphs via [`StateGraph::from_parts`].

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};

use reshuffle_petri::{Marking, Signal, SignalEdge, SignalId, SignalKind};

use crate::error::{Result, SgError};

/// Index of a state within a [`StateGraph`].
pub type StateId = u32;

/// Index of an event (an STG transition) within a [`StateGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// Dense index of the event.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Static information about an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventInfo {
    /// Rendered label, e.g. `ack+/2` or a dummy name.
    pub label: String,
    /// The signal edge, if not a dummy.
    pub edge: Option<SignalEdge>,
}

/// One state: binary code plus outgoing arcs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Binary code: bit *i* is the value of signal *i*.
    pub code: u64,
    /// Outgoing arcs `(event, successor)`, sorted by event id.
    pub succ: Vec<(EventId, StateId)>,
    /// Originating marking, if the graph was built from an STG.
    pub marking: Option<Marking>,
}

/// A state graph with binary-encoded states.
#[derive(Debug, Clone)]
pub struct StateGraph {
    name: String,
    signals: Vec<Signal>,
    events: Vec<EventInfo>,
    states: Vec<State>,
    initial: StateId,
}

impl StateGraph {
    /// Assembles a state graph from raw parts, validating arc targets,
    /// sorting successor lists and rejecting empty graphs.
    ///
    /// # Errors
    ///
    /// Returns [`SgError::Invalid`] on dangling arc targets, an
    /// out-of-range initial state, or more than 64 signals.
    pub fn from_parts(
        name: impl Into<String>,
        signals: Vec<Signal>,
        events: Vec<EventInfo>,
        mut states: Vec<State>,
        initial: StateId,
    ) -> Result<Self> {
        if signals.len() > 64 {
            return Err(SgError::TooManySignals(signals.len()));
        }
        if states.is_empty() {
            return Err(SgError::Invalid("no states".into()));
        }
        if initial as usize >= states.len() {
            return Err(SgError::Invalid(format!(
                "initial state {initial} out of range ({} states)",
                states.len()
            )));
        }
        let num_states = states.len();
        for (i, st) in states.iter_mut().enumerate() {
            for &(e, tgt) in &st.succ {
                if e.index() >= events.len() {
                    return Err(SgError::Invalid(format!("state {i}: unknown event {e:?}")));
                }
                if tgt as usize >= num_states {
                    return Err(SgError::Invalid(format!(
                        "state {i}: dangling arc to {tgt}"
                    )));
                }
            }
            st.succ.sort_unstable();
            st.succ.dedup();
        }
        Ok(StateGraph {
            name: name.into(),
            signals,
            events,
            states,
            initial,
        })
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of signals.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// The signal table.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// The signal with the given id.
    pub fn signal(&self, s: SignalId) -> &Signal {
        &self.signals[s.index()]
    }

    /// Looks up a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(SignalId::from_index)
    }

    /// The event table.
    pub fn events(&self) -> &[EventInfo] {
        &self.events
    }

    /// Information about one event.
    pub fn event(&self, e: EventId) -> &EventInfo {
        &self.events[e.index()]
    }

    /// Looks up an event by its rendered label.
    pub fn event_by_label(&self, label: &str) -> Option<EventId> {
        self.events
            .iter()
            .position(|ev| ev.label == label)
            .map(|i| EventId(i as u32))
    }

    /// True if the event is an edge of an input signal.
    pub fn is_input_event(&self, e: EventId) -> bool {
        match self.events[e.index()].edge {
            Some(edge) => self.signals[edge.signal.index()].kind == SignalKind::Input,
            None => false,
        }
    }

    /// True if the event is an edge of an output or internal signal.
    pub fn is_noninput_event(&self, e: EventId) -> bool {
        match self.events[e.index()].edge {
            Some(edge) => self.signals[edge.signal.index()].kind.is_noninput(),
            None => false,
        }
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// A state by id.
    pub fn state(&self, s: StateId) -> &State {
        &self.states[s as usize]
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        0..self.states.len() as StateId
    }

    /// The binary code of state `s`.
    pub fn code(&self, s: StateId) -> u64 {
        self.states[s as usize].code
    }

    /// The value of signal `sig` in state `s`.
    pub fn value(&self, s: StateId, sig: SignalId) -> bool {
        (self.states[s as usize].code >> sig.index()) & 1 == 1
    }

    /// Outgoing arcs of state `s`.
    pub fn succ(&self, s: StateId) -> &[(EventId, StateId)] {
        &self.states[s as usize].succ
    }

    /// The successor of `s` under event `e`, if any.
    pub fn step(&self, s: StateId, e: EventId) -> Option<StateId> {
        self.states[s as usize]
            .succ
            .iter()
            .find(|&&(ev, _)| ev == e)
            .map(|&(_, t)| t)
    }

    /// The successor of `s` under any event with the given edge label.
    pub fn step_edge(&self, s: StateId, edge: SignalEdge) -> Option<StateId> {
        self.states[s as usize]
            .succ
            .iter()
            .find(|&&(ev, _)| self.events[ev.index()].edge == Some(edge))
            .map(|&(_, t)| t)
    }

    /// True if some event with the given edge is enabled in `s`.
    pub fn enables_edge(&self, s: StateId, edge: SignalEdge) -> bool {
        self.states[s as usize]
            .succ
            .iter()
            .any(|&(ev, _)| self.events[ev.index()].edge == Some(edge))
    }

    /// The distinct signal edges enabled in `s`.
    pub fn enabled_edges(&self, s: StateId) -> Vec<SignalEdge> {
        let mut edges: Vec<SignalEdge> = self.states[s as usize]
            .succ
            .iter()
            .filter_map(|&(ev, _)| self.events[ev.index()].edge)
            .collect();
        edges.sort_by_key(|e| (e.signal, e.polarity));
        edges.dedup();
        edges
    }

    /// The distinct *non-input* signal edges enabled in `s` (the set CSC
    /// compares between equally-coded states).
    pub fn enabled_noninput_edges(&self, s: StateId) -> Vec<SignalEdge> {
        self.enabled_edges(s)
            .into_iter()
            .filter(|e| self.signals[e.signal.index()].kind.is_noninput())
            .collect()
    }

    /// Computes the predecessor lists (arcs reversed).
    pub fn predecessors(&self) -> Vec<Vec<(EventId, StateId)>> {
        let mut pred: Vec<Vec<(EventId, StateId)>> = vec![Vec::new(); self.states.len()];
        for s in self.state_ids() {
            for &(e, t) in self.succ(s) {
                pred[t as usize].push((e, s));
            }
        }
        pred
    }

    /// Total number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.states.iter().map(|st| st.succ.len()).sum()
    }

    /// States with no outgoing arcs.
    pub fn deadlock_states(&self) -> Vec<StateId> {
        self.state_ids()
            .filter(|&s| self.succ(s).is_empty())
            .collect()
    }

    /// A canonical 64-bit fingerprint of the graph: BFS-renumber states
    /// from the initial state visiting arcs in event order (the graph is
    /// deterministic per event id), then hash codes and renumbered arcs.
    /// Isomorphic graphs over the same event table hash equal.
    pub fn fingerprint(&self) -> u64 {
        let order = self.bfs_order();
        let renum: HashMap<StateId, u32> = order
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let mut h = DefaultHasher::new();
        self.signals.len().hash(&mut h);
        self.events.len().hash(&mut h);
        for &s in &order {
            self.states[s as usize].code.hash(&mut h);
            for &(e, t) in self.succ(s) {
                e.0.hash(&mut h);
                renum.get(&t).copied().unwrap_or(u32::MAX).hash(&mut h);
            }
        }
        h.finish()
    }

    /// BFS order of states reachable from the initial state (arcs in
    /// event order). States unreachable from the initial state are
    /// appended in id order (a well-formed graph has none).
    pub fn bfs_order(&self) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut order = Vec::with_capacity(self.states.len());
        let mut q = VecDeque::new();
        q.push_back(self.initial);
        seen[self.initial as usize] = true;
        while let Some(s) = q.pop_front() {
            order.push(s);
            for &(_, t) in self.succ(s) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    q.push_back(t);
                }
            }
        }
        for s in self.state_ids() {
            if !seen[s as usize] {
                order.push(s);
            }
        }
        order
    }

    /// The set of states reachable from the initial state.
    pub fn reachable_from_initial(&self) -> Vec<bool> {
        let mut seen = vec![false; self.states.len()];
        let mut q = VecDeque::new();
        q.push_back(self.initial);
        seen[self.initial as usize] = true;
        while let Some(s) = q.pop_front() {
            for &(_, t) in self.succ(s) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    q.push_back(t);
                }
            }
        }
        seen
    }

    /// Builds a new graph keeping only states marked `true` in `keep`
    /// and only arcs accepted by `keep_arc(src, event, dst)`. States are
    /// renumbered densely; the initial state must be kept.
    ///
    /// # Errors
    ///
    /// Returns [`SgError::Invalid`] if the initial state is dropped or
    /// if a kept arc points to a dropped state.
    pub fn filtered(
        &self,
        keep: &[bool],
        mut keep_arc: impl FnMut(StateId, EventId, StateId) -> bool,
    ) -> Result<StateGraph> {
        if !keep[self.initial as usize] {
            return Err(SgError::Invalid("initial state dropped".into()));
        }
        let mut renum: Vec<Option<StateId>> = vec![None; self.states.len()];
        let mut next = 0u32;
        for s in self.state_ids() {
            if keep[s as usize] {
                renum[s as usize] = Some(next);
                next += 1;
            }
        }
        let mut states = Vec::with_capacity(next as usize);
        for s in self.state_ids() {
            if !keep[s as usize] {
                continue;
            }
            let mut succ = Vec::new();
            for &(e, t) in self.succ(s) {
                if keep_arc(s, e, t) {
                    match renum[t as usize] {
                        Some(nt) => succ.push((e, nt)),
                        None => {
                            return Err(SgError::Invalid(format!(
                                "kept arc {s} -{}-> {t} targets a dropped state",
                                self.event(e).label
                            )))
                        }
                    }
                }
            }
            states.push(State {
                code: self.states[s as usize].code,
                succ,
                marking: self.states[s as usize].marking.clone(),
            });
        }
        StateGraph::from_parts(
            self.name.clone(),
            self.signals.clone(),
            self.events.clone(),
            states,
            renum[self.initial as usize].unwrap(),
        )
    }

    /// Renders the code of state `s` with one char per signal, `*`-marked
    /// for enabled signals, in signal order — like Fig. 1(d): `1*0*`.
    pub fn render_state(&self, s: StateId) -> String {
        let mut out = String::new();
        for sig in 0..self.signals.len() {
            let sig_id = SignalId::from_index(sig);
            let v = if self.value(s, sig_id) { '1' } else { '0' };
            out.push(v);
            let excited = self.enabled_edges(s).iter().any(|e| e.signal == sig_id);
            if excited {
                out.push('*');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::Polarity;

    fn sig(name: &str, kind: SignalKind) -> Signal {
        Signal {
            name: name.into(),
            kind,
        }
    }

    /// Hand-built 4-state diamond: a+ and b+ concurrent from 00.
    pub(crate) fn diamond() -> StateGraph {
        let signals = vec![sig("a", SignalKind::Input), sig("b", SignalKind::Output)];
        let ea = SignalEdge {
            signal: SignalId(0),
            polarity: Polarity::Rise,
        };
        let eb = SignalEdge {
            signal: SignalId(1),
            polarity: Polarity::Rise,
        };
        let events = vec![
            EventInfo {
                label: "a+".into(),
                edge: Some(ea),
            },
            EventInfo {
                label: "b+".into(),
                edge: Some(eb),
            },
        ];
        let states = vec![
            State {
                code: 0b00,
                succ: vec![(EventId(0), 1), (EventId(1), 2)],
                marking: None,
            },
            State {
                code: 0b01,
                succ: vec![(EventId(1), 3)],
                marking: None,
            },
            State {
                code: 0b10,
                succ: vec![(EventId(0), 3)],
                marking: None,
            },
            State {
                code: 0b11,
                succ: vec![],
                marking: None,
            },
        ];
        StateGraph::from_parts("diamond", signals, events, states, 0).unwrap()
    }

    #[test]
    fn basic_queries() {
        let g = diamond();
        assert_eq!(g.num_states(), 4);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.code(3), 0b11);
        assert!(g.value(3, SignalId(0)));
        assert_eq!(g.step(0, EventId(0)), Some(1));
        assert_eq!(g.step(1, EventId(0)), None);
        assert!(g.is_input_event(EventId(0)));
        assert!(g.is_noninput_event(EventId(1)));
        assert_eq!(g.deadlock_states(), vec![3]);
        assert_eq!(g.event_by_label("b+"), Some(EventId(1)));
    }

    #[test]
    fn predecessors_mirror_successors() {
        let g = diamond();
        let pred = g.predecessors();
        assert_eq!(pred[0], vec![]);
        assert_eq!(pred[3].len(), 2);
    }

    #[test]
    fn fingerprint_stable_under_renumbering() {
        let g1 = diamond();
        // Same graph with states 1 and 2 swapped.
        let signals = g1.signals().to_vec();
        let events = g1.events().to_vec();
        let states = vec![
            State {
                code: 0b00,
                succ: vec![(EventId(0), 2), (EventId(1), 1)],
                marking: None,
            },
            State {
                code: 0b10,
                succ: vec![(EventId(0), 3)],
                marking: None,
            },
            State {
                code: 0b01,
                succ: vec![(EventId(1), 3)],
                marking: None,
            },
            State {
                code: 0b11,
                succ: vec![],
                marking: None,
            },
        ];
        let g2 = StateGraph::from_parts("diamond", signals, events, states, 0).unwrap();
        assert_eq!(g1.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn fingerprint_differs_on_arc_removal() {
        let g1 = diamond();
        let keep = vec![true; 4];
        let g2 = g1
            .filtered(&keep, |s, e, _| !(s == 0 && e == EventId(1)))
            .unwrap();
        // Dropping state 2's incoming arc leaves it unreachable but kept;
        // fingerprints must differ.
        assert_ne!(g1.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn filtered_renumbers() {
        let g = diamond();
        let keep = vec![true, true, false, true];
        let r = g.filtered(&keep, |_, _, _| true).unwrap_err();
        // arc 0 -b+-> 2 targets dropped state -> error unless filtered out
        assert!(matches!(r, SgError::Invalid(_)));
        let r = g.filtered(&keep, |_, _, t| t != 2).unwrap();
        assert_eq!(r.num_states(), 3);
        assert_eq!(r.num_arcs(), 2);
        assert_eq!(r.code(2), 0b11);
    }

    #[test]
    fn render_state_marks_excited() {
        let g = diamond();
        assert_eq!(g.render_state(0), "0*0*");
        assert_eq!(g.render_state(1), "10*");
        assert_eq!(g.render_state(3), "11");
    }

    #[test]
    fn rejects_bad_parts() {
        let signals = vec![sig("a", SignalKind::Input)];
        let events = vec![];
        let states = vec![State {
            code: 0,
            succ: vec![(EventId(0), 0)],
            marking: None,
        }];
        assert!(StateGraph::from_parts("x", signals, events, states, 0).is_err());
    }
}
