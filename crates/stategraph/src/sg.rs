//! The state-graph data structure.
//!
//! A [`StateGraph`] is a finite automaton whose states carry binary
//! signal codes and whose arcs are labelled with *events*. An event is a
//! specific STG transition (so two instances `a+` and `a+/2` are two
//! events with the same [`SignalEdge`] label); most properties
//! (determinism, persistency, concurrency, excitation regions) are
//! defined at the *edge* level, merging instances, exactly as in the
//! paper.
//!
//! # Storage layout
//!
//! The graph is stored in a compressed struct-of-arrays (CSR) form:
//! one flat `codes` array, flat `arc_events`/`arc_targets` arrays
//! indexed through a `succ_offsets` prefix array, and originating
//! markings deduplicated into one interned arena ([`MarkingId`] per
//! state). There is no per-state heap allocation, so a graph with
//! hundreds of thousands of states is three large allocations plus the
//! arena — trivially serializable and cheap to clone. Analyses read it
//! through the [`StateGraph::succ`] slice accessor ([`Arcs`]), which
//! iterates `(event, target)` pairs exactly like the old per-state
//! lists did.
//!
//! State graphs are immutable once built; transformations (concurrency
//! reduction) construct new graphs via [`StateGraph::from_parts`], the
//! validating constructor that compacts per-state lists into CSR.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};

use reshuffle_petri::{Marking, Signal, SignalEdge, SignalId, SignalKind};

use crate::error::{Result, SgError};

/// Index of a state within a [`StateGraph`].
pub type StateId = u32;

/// Index of an event (an STG transition) within a [`StateGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// Dense index of the event.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Index into a [`StateGraph`]'s interned marking arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MarkingId(pub u32);

impl MarkingId {
    /// Dense index of the marking in the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MarkingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Sentinel for "state has no originating marking".
const NO_MARKING: u32 = u32::MAX;

/// Static information about an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventInfo {
    /// Rendered label, e.g. `ack+/2` or a dummy name.
    pub label: String,
    /// The signal edge, if not a dummy.
    pub edge: Option<SignalEdge>,
}

/// One state as handed to [`StateGraph::from_parts`]: binary code plus
/// outgoing arcs. This is a *construction* type — the assembled graph
/// compacts these into the flat CSR arrays and does not keep per-state
/// `State` values around.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct State {
    /// Binary code: bit *i* is the value of signal *i*.
    pub code: u64,
    /// Outgoing arcs `(event, successor)`; sorted and deduplicated by
    /// the constructor.
    pub succ: Vec<(EventId, StateId)>,
    /// Originating marking, if the graph was built from an STG.
    pub marking: Option<Marking>,
}

/// The outgoing arcs of one state: a zero-copy view over the graph's
/// flat arc arrays, iterating `(event, target)` pairs in event order.
#[derive(Clone, Copy)]
pub struct Arcs<'a> {
    events: &'a [EventId],
    targets: &'a [StateId],
}

/// Iterator type of [`Arcs`].
pub type ArcsIter<'a> = std::iter::Zip<
    std::iter::Copied<std::slice::Iter<'a, EventId>>,
    std::iter::Copied<std::slice::Iter<'a, StateId>>,
>;

impl<'a> Arcs<'a> {
    /// Number of arcs.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the state has no outgoing arcs.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The `i`-th arc as an `(event, target)` pair.
    pub fn get(&self, i: usize) -> (EventId, StateId) {
        (self.events[i], self.targets[i])
    }

    /// Iterates `(event, target)` pairs.
    pub fn iter(&self) -> ArcsIter<'a> {
        self.events
            .iter()
            .copied()
            .zip(self.targets.iter().copied())
    }

    /// The arc events alone, as a slice.
    pub fn events(&self) -> &'a [EventId] {
        self.events
    }

    /// The arc targets alone, as a slice.
    pub fn targets(&self) -> &'a [StateId] {
        self.targets
    }
}

impl<'a> IntoIterator for Arcs<'a> {
    type Item = (EventId, StateId);
    type IntoIter = ArcsIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Debug for Arcs<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// A state graph with binary-encoded states in compressed (CSR)
/// storage — see the module docs for the layout.
#[derive(Debug, Clone)]
pub struct StateGraph {
    name: String,
    signals: Vec<Signal>,
    events: Vec<EventInfo>,
    /// Binary code per state.
    codes: Vec<u64>,
    /// Prefix offsets into the arc arrays; `len() == num_states + 1`.
    succ_offsets: Vec<u32>,
    /// Arc events, grouped by source state, sorted by event id within
    /// each group.
    arc_events: Vec<EventId>,
    /// Arc targets, parallel to `arc_events`.
    arc_targets: Vec<StateId>,
    /// Interned marking id per state (`NO_MARKING` = none); empty when
    /// no state has a marking.
    marking_ids: Vec<u32>,
    /// The interned marking arena, in first-use state order.
    markings: Vec<Marking>,
    initial: StateId,
}

impl StateGraph {
    /// Assembles a state graph from raw parts, validating arc targets,
    /// sorting successor lists, deduplicating identical markings into
    /// the interned arena, and rejecting empty graphs. The per-state
    /// lists are compacted into the flat CSR arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SgError::Invalid`] on dangling arc targets, an
    /// out-of-range initial state, or more than 64 signals.
    pub fn from_parts(
        name: impl Into<String>,
        signals: Vec<Signal>,
        events: Vec<EventInfo>,
        mut states: Vec<State>,
        initial: StateId,
    ) -> Result<Self> {
        if signals.len() > 64 {
            return Err(SgError::TooManySignals(signals.len()));
        }
        if states.is_empty() {
            return Err(SgError::Invalid("no states".into()));
        }
        if initial as usize >= states.len() {
            return Err(SgError::Invalid(format!(
                "initial state {initial} out of range ({} states)",
                states.len()
            )));
        }
        let num_states = states.len();
        for (i, st) in states.iter_mut().enumerate() {
            for &(e, tgt) in &st.succ {
                if e.index() >= events.len() {
                    return Err(SgError::Invalid(format!("state {i}: unknown event {e:?}")));
                }
                if tgt as usize >= num_states {
                    return Err(SgError::Invalid(format!(
                        "state {i}: dangling arc to {tgt}"
                    )));
                }
            }
            st.succ.sort_unstable();
            st.succ.dedup();
        }

        // Compact into CSR, interning duplicate markings.
        let num_arcs: usize = states.iter().map(|s| s.succ.len()).sum();
        let mut codes = Vec::with_capacity(num_states);
        let mut succ_offsets = Vec::with_capacity(num_states + 1);
        let mut arc_events = Vec::with_capacity(num_arcs);
        let mut arc_targets = Vec::with_capacity(num_arcs);
        let mut marking_ids = Vec::with_capacity(num_states);
        let mut markings: Vec<Marking> = Vec::new();
        let mut intern: HashMap<Marking, u32> = HashMap::new();
        succ_offsets.push(0);
        let mut any_marking = false;
        for st in states {
            codes.push(st.code);
            for (e, t) in st.succ {
                arc_events.push(e);
                arc_targets.push(t);
            }
            succ_offsets.push(arc_events.len() as u32);
            match st.marking {
                None => marking_ids.push(NO_MARKING),
                Some(m) => {
                    any_marking = true;
                    let id = *intern.entry(m.clone()).or_insert_with(|| {
                        markings.push(m);
                        (markings.len() - 1) as u32
                    });
                    marking_ids.push(id);
                }
            }
        }
        if !any_marking {
            marking_ids = Vec::new();
        }
        Ok(StateGraph {
            name: name.into(),
            signals,
            events,
            codes,
            succ_offsets,
            arc_events,
            arc_targets,
            marking_ids,
            markings,
            initial,
        })
    }

    /// Assembles a graph directly from CSR arrays — the zero-copy path
    /// used by the parallel builder, which produces the flat layout
    /// natively. Validates the same invariants as
    /// [`StateGraph::from_parts`] plus offset monotonicity; arc groups
    /// must already be sorted by event id.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_csr(
        name: String,
        signals: Vec<Signal>,
        events: Vec<EventInfo>,
        codes: Vec<u64>,
        succ_offsets: Vec<u32>,
        arc_events: Vec<EventId>,
        arc_targets: Vec<StateId>,
        marking_ids: Vec<u32>,
        markings: Vec<Marking>,
        initial: StateId,
    ) -> Result<Self> {
        if signals.len() > 64 {
            return Err(SgError::TooManySignals(signals.len()));
        }
        let n = codes.len();
        if n == 0 {
            return Err(SgError::Invalid("no states".into()));
        }
        if initial as usize >= n {
            return Err(SgError::Invalid(format!(
                "initial state {initial} out of range ({n} states)"
            )));
        }
        if succ_offsets.len() != n + 1
            || succ_offsets[0] != 0
            || succ_offsets[n] as usize != arc_events.len()
            || arc_events.len() != arc_targets.len()
            || succ_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(SgError::Invalid("malformed CSR offsets".into()));
        }
        if !marking_ids.is_empty() && marking_ids.len() != n {
            return Err(SgError::Invalid("marking table length mismatch".into()));
        }
        if arc_events.iter().any(|e| e.index() >= events.len()) {
            return Err(SgError::Invalid("unknown arc event".into()));
        }
        if arc_targets.iter().any(|&t| t as usize >= n) {
            return Err(SgError::Invalid("dangling arc target".into()));
        }
        if marking_ids
            .iter()
            .any(|&m| m != NO_MARKING && m as usize >= markings.len())
        {
            return Err(SgError::Invalid("dangling marking id".into()));
        }
        Ok(StateGraph {
            name,
            signals,
            events,
            codes,
            succ_offsets,
            arc_events,
            arc_targets,
            marking_ids,
            markings,
            initial,
        })
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.codes.len()
    }

    /// Number of events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of signals.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// The signal table.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// The signal with the given id.
    pub fn signal(&self, s: SignalId) -> &Signal {
        &self.signals[s.index()]
    }

    /// Looks up a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(SignalId::from_index)
    }

    /// The event table.
    pub fn events(&self) -> &[EventInfo] {
        &self.events
    }

    /// Information about one event.
    pub fn event(&self, e: EventId) -> &EventInfo {
        &self.events[e.index()]
    }

    /// Looks up an event by its rendered label.
    pub fn event_by_label(&self, label: &str) -> Option<EventId> {
        self.events
            .iter()
            .position(|ev| ev.label == label)
            .map(|i| EventId(i as u32))
    }

    /// True if the event is an edge of an input signal.
    pub fn is_input_event(&self, e: EventId) -> bool {
        match self.events[e.index()].edge {
            Some(edge) => self.signals[edge.signal.index()].kind == SignalKind::Input,
            None => false,
        }
    }

    /// True if the event is an edge of an output or internal signal.
    pub fn is_noninput_event(&self, e: EventId) -> bool {
        match self.events[e.index()].edge {
            Some(edge) => self.signals[edge.signal.index()].kind.is_noninput(),
            None => false,
        }
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        0..self.codes.len() as StateId
    }

    /// The binary code of state `s`.
    pub fn code(&self, s: StateId) -> u64 {
        self.codes[s as usize]
    }

    /// All binary codes, indexed by state id.
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// The value of signal `sig` in state `s`.
    pub fn value(&self, s: StateId, sig: SignalId) -> bool {
        (self.codes[s as usize] >> sig.index()) & 1 == 1
    }

    /// Outgoing arcs of state `s`, as a zero-copy `(event, target)`
    /// view into the flat arc arrays.
    pub fn succ(&self, s: StateId) -> Arcs<'_> {
        let lo = self.succ_offsets[s as usize] as usize;
        let hi = self.succ_offsets[s as usize + 1] as usize;
        Arcs {
            events: &self.arc_events[lo..hi],
            targets: &self.arc_targets[lo..hi],
        }
    }

    /// The interned marking of state `s`, if the graph was built from
    /// an STG. Markings are deduplicated: states reached under the same
    /// marking (e.g. two-phase parity unfoldings) share one arena entry.
    pub fn marking_of(&self, s: StateId) -> Option<&Marking> {
        self.marking_id(s).map(|m| &self.markings[m.index()])
    }

    /// The arena id of state `s`'s marking, if any.
    pub fn marking_id(&self, s: StateId) -> Option<MarkingId> {
        match self.marking_ids.get(s as usize) {
            Some(&m) if m != NO_MARKING => Some(MarkingId(m)),
            _ => None,
        }
    }

    /// The interned marking arena (one entry per *distinct* marking, in
    /// first-use state order).
    pub fn interned_markings(&self) -> &[Marking] {
        &self.markings
    }

    /// Number of distinct interned markings.
    pub fn num_interned_markings(&self) -> usize {
        self.markings.len()
    }

    /// The successor of `s` under event `e`, if any.
    pub fn step(&self, s: StateId, e: EventId) -> Option<StateId> {
        let arcs = self.succ(s);
        arcs.events
            .iter()
            .position(|&ev| ev == e)
            .map(|i| arcs.targets[i])
    }

    /// The successor of `s` under any event with the given edge label.
    pub fn step_edge(&self, s: StateId, edge: SignalEdge) -> Option<StateId> {
        let arcs = self.succ(s);
        arcs.events
            .iter()
            .position(|&ev| self.events[ev.index()].edge == Some(edge))
            .map(|i| arcs.targets[i])
    }

    /// True if some event with the given edge is enabled in `s`.
    pub fn enables_edge(&self, s: StateId, edge: SignalEdge) -> bool {
        self.succ(s)
            .events
            .iter()
            .any(|&ev| self.events[ev.index()].edge == Some(edge))
    }

    /// The distinct signal edges enabled in `s`.
    pub fn enabled_edges(&self, s: StateId) -> Vec<SignalEdge> {
        let mut edges: Vec<SignalEdge> = self
            .succ(s)
            .events
            .iter()
            .filter_map(|&ev| self.events[ev.index()].edge)
            .collect();
        edges.sort_by_key(|e| (e.signal, e.polarity));
        edges.dedup();
        edges
    }

    /// The distinct *non-input* signal edges enabled in `s` (the set CSC
    /// compares between equally-coded states).
    pub fn enabled_noninput_edges(&self, s: StateId) -> Vec<SignalEdge> {
        self.enabled_edges(s)
            .into_iter()
            .filter(|e| self.signals[e.signal.index()].kind.is_noninput())
            .collect()
    }

    /// Computes the predecessor lists (arcs reversed).
    pub fn predecessors(&self) -> Vec<Vec<(EventId, StateId)>> {
        let mut pred: Vec<Vec<(EventId, StateId)>> = vec![Vec::new(); self.num_states()];
        for s in self.state_ids() {
            for (e, t) in self.succ(s) {
                pred[t as usize].push((e, s));
            }
        }
        pred
    }

    /// Total number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.arc_events.len()
    }

    /// States with no outgoing arcs.
    pub fn deadlock_states(&self) -> Vec<StateId> {
        self.state_ids()
            .filter(|&s| self.succ(s).is_empty())
            .collect()
    }

    /// A canonical 64-bit fingerprint of the graph: BFS-renumber states
    /// from the initial state visiting arcs in event order (the graph is
    /// deterministic per event id), then hash codes and renumbered arcs.
    /// Isomorphic graphs over the same event table hash equal.
    pub fn fingerprint(&self) -> u64 {
        let order = self.bfs_order();
        let mut renum = vec![u32::MAX; self.num_states()];
        for (i, &s) in order.iter().enumerate() {
            renum[s as usize] = i as u32;
        }
        let mut h = DefaultHasher::new();
        self.signals.len().hash(&mut h);
        self.events.len().hash(&mut h);
        for &s in &order {
            self.codes[s as usize].hash(&mut h);
            for (e, t) in self.succ(s) {
                e.0.hash(&mut h);
                renum[t as usize].hash(&mut h);
            }
        }
        h.finish()
    }

    /// BFS order of states reachable from the initial state (arcs in
    /// event order). States unreachable from the initial state are
    /// appended in id order (a well-formed graph has none).
    pub fn bfs_order(&self) -> Vec<StateId> {
        let mut seen = vec![false; self.num_states()];
        let mut order = Vec::with_capacity(self.num_states());
        let mut q = VecDeque::new();
        q.push_back(self.initial);
        seen[self.initial as usize] = true;
        while let Some(s) = q.pop_front() {
            order.push(s);
            for &t in self.succ(s).targets() {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    q.push_back(t);
                }
            }
        }
        for s in self.state_ids() {
            if !seen[s as usize] {
                order.push(s);
            }
        }
        order
    }

    /// The set of states reachable from the initial state.
    pub fn reachable_from_initial(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states()];
        let mut q = VecDeque::new();
        q.push_back(self.initial);
        seen[self.initial as usize] = true;
        while let Some(s) = q.pop_front() {
            for &t in self.succ(s).targets() {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    q.push_back(t);
                }
            }
        }
        seen
    }

    /// Builds a new graph keeping only states marked `true` in `keep`
    /// and only arcs accepted by `keep_arc(src, event, dst)`. States are
    /// renumbered densely; the initial state must be kept. Interned
    /// markings of kept states carry over (re-interned densely).
    ///
    /// # Errors
    ///
    /// Returns [`SgError::Invalid`] if the initial state is dropped or
    /// if a kept arc points to a dropped state.
    pub fn filtered(
        &self,
        keep: &[bool],
        mut keep_arc: impl FnMut(StateId, EventId, StateId) -> bool,
    ) -> Result<StateGraph> {
        if !keep[self.initial as usize] {
            return Err(SgError::Invalid("initial state dropped".into()));
        }
        let mut renum: Vec<u32> = vec![u32::MAX; self.num_states()];
        let mut next = 0u32;
        for s in self.state_ids() {
            if keep[s as usize] {
                renum[s as usize] = next;
                next += 1;
            }
        }
        let mut codes = Vec::with_capacity(next as usize);
        let mut succ_offsets = Vec::with_capacity(next as usize + 1);
        let mut arc_events = Vec::new();
        let mut arc_targets = Vec::new();
        let mut marking_ids = Vec::with_capacity(if self.marking_ids.is_empty() {
            0
        } else {
            next as usize
        });
        let mut markings = Vec::new();
        let mut remap: HashMap<u32, u32> = HashMap::new();
        succ_offsets.push(0);
        for s in self.state_ids() {
            if !keep[s as usize] {
                continue;
            }
            codes.push(self.codes[s as usize]);
            for (e, t) in self.succ(s) {
                if keep_arc(s, e, t) {
                    if renum[t as usize] == u32::MAX {
                        return Err(SgError::Invalid(format!(
                            "kept arc {s} -{}-> {t} targets a dropped state",
                            self.event(e).label
                        )));
                    }
                    arc_events.push(e);
                    arc_targets.push(renum[t as usize]);
                }
            }
            succ_offsets.push(arc_events.len() as u32);
            if !self.marking_ids.is_empty() {
                let old = self.marking_ids[s as usize];
                if old == NO_MARKING {
                    marking_ids.push(NO_MARKING);
                } else {
                    let id = *remap.entry(old).or_insert_with(|| {
                        markings.push(self.markings[old as usize].clone());
                        (markings.len() - 1) as u32
                    });
                    marking_ids.push(id);
                }
            }
        }
        StateGraph::from_csr(
            self.name.clone(),
            self.signals.clone(),
            self.events.clone(),
            codes,
            succ_offsets,
            arc_events,
            arc_targets,
            marking_ids,
            markings,
            renum[self.initial as usize],
        )
    }

    /// Renders the code of state `s` with one char per signal, `*`-marked
    /// for enabled signals, in signal order — like Fig. 1(d): `1*0*`.
    pub fn render_state(&self, s: StateId) -> String {
        let mut out = String::new();
        let enabled = self.enabled_edges(s);
        for sig in 0..self.signals.len() {
            let sig_id = SignalId::from_index(sig);
            let v = if self.value(s, sig_id) { '1' } else { '0' };
            out.push(v);
            if enabled.iter().any(|e| e.signal == sig_id) {
                out.push('*');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::{PlaceId, Polarity};

    fn sig(name: &str, kind: SignalKind) -> Signal {
        Signal {
            name: name.into(),
            kind,
        }
    }

    /// Hand-built 4-state diamond: a+ and b+ concurrent from 00.
    pub(crate) fn diamond() -> StateGraph {
        let signals = vec![sig("a", SignalKind::Input), sig("b", SignalKind::Output)];
        let ea = SignalEdge {
            signal: SignalId(0),
            polarity: Polarity::Rise,
        };
        let eb = SignalEdge {
            signal: SignalId(1),
            polarity: Polarity::Rise,
        };
        let events = vec![
            EventInfo {
                label: "a+".into(),
                edge: Some(ea),
            },
            EventInfo {
                label: "b+".into(),
                edge: Some(eb),
            },
        ];
        let states = vec![
            State {
                code: 0b00,
                succ: vec![(EventId(0), 1), (EventId(1), 2)],
                marking: None,
            },
            State {
                code: 0b01,
                succ: vec![(EventId(1), 3)],
                marking: None,
            },
            State {
                code: 0b10,
                succ: vec![(EventId(0), 3)],
                marking: None,
            },
            State {
                code: 0b11,
                succ: vec![],
                marking: None,
            },
        ];
        StateGraph::from_parts("diamond", signals, events, states, 0).unwrap()
    }

    #[test]
    fn basic_queries() {
        let g = diamond();
        assert_eq!(g.num_states(), 4);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.code(3), 0b11);
        assert!(g.value(3, SignalId(0)));
        assert_eq!(g.step(0, EventId(0)), Some(1));
        assert_eq!(g.step(1, EventId(0)), None);
        assert!(g.is_input_event(EventId(0)));
        assert!(g.is_noninput_event(EventId(1)));
        assert_eq!(g.deadlock_states(), vec![3]);
        assert_eq!(g.event_by_label("b+"), Some(EventId(1)));
    }

    #[test]
    fn arcs_view_matches_construction_lists() {
        let g = diamond();
        let arcs = g.succ(0);
        assert_eq!(arcs.len(), 2);
        assert!(!arcs.is_empty());
        assert_eq!(arcs.get(0), (EventId(0), 1));
        assert_eq!(arcs.get(1), (EventId(1), 2));
        assert_eq!(arcs.events(), &[EventId(0), EventId(1)]);
        assert_eq!(arcs.targets(), &[1, 2]);
        let collected: Vec<_> = g.succ(0).iter().collect();
        assert_eq!(collected, vec![(EventId(0), 1), (EventId(1), 2)]);
        assert!(g.succ(3).is_empty());
        assert!(!format!("{:?}", g.succ(0)).is_empty());
    }

    #[test]
    fn predecessors_mirror_successors() {
        let g = diamond();
        let pred = g.predecessors();
        assert_eq!(pred[0], vec![]);
        assert_eq!(pred[3].len(), 2);
    }

    #[test]
    fn fingerprint_stable_under_renumbering() {
        let g1 = diamond();
        // Same graph with states 1 and 2 swapped.
        let signals = g1.signals().to_vec();
        let events = g1.events().to_vec();
        let states = vec![
            State {
                code: 0b00,
                succ: vec![(EventId(0), 2), (EventId(1), 1)],
                marking: None,
            },
            State {
                code: 0b10,
                succ: vec![(EventId(0), 3)],
                marking: None,
            },
            State {
                code: 0b01,
                succ: vec![(EventId(1), 3)],
                marking: None,
            },
            State {
                code: 0b11,
                succ: vec![],
                marking: None,
            },
        ];
        let g2 = StateGraph::from_parts("diamond", signals, events, states, 0).unwrap();
        assert_eq!(g1.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn fingerprint_differs_on_arc_removal() {
        let g1 = diamond();
        let keep = vec![true; 4];
        let g2 = g1
            .filtered(&keep, |s, e, _| !(s == 0 && e == EventId(1)))
            .unwrap();
        // Dropping state 2's incoming arc leaves it unreachable but kept;
        // fingerprints must differ.
        assert_ne!(g1.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn filtered_renumbers() {
        let g = diamond();
        let keep = vec![true, true, false, true];
        let r = g.filtered(&keep, |_, _, _| true).unwrap_err();
        // arc 0 -b+-> 2 targets dropped state -> error unless filtered out
        assert!(matches!(r, SgError::Invalid(_)));
        let r = g.filtered(&keep, |_, _, t| t != 2).unwrap();
        assert_eq!(r.num_states(), 3);
        assert_eq!(r.num_arcs(), 2);
        assert_eq!(r.code(2), 0b11);
    }

    #[test]
    fn markings_are_interned_and_shared() {
        let signals = vec![sig("a", SignalKind::Input)];
        let ea = SignalEdge {
            signal: SignalId(0),
            polarity: Polarity::Toggle,
        };
        let events = vec![EventInfo {
            label: "a~".into(),
            edge: Some(ea),
        }];
        let m0 = Marking::with_tokens(2, &[PlaceId(0)]);
        let m1 = Marking::with_tokens(2, &[PlaceId(1)]);
        // Four states over two distinct markings (parity unfolding).
        let states = vec![
            State {
                code: 0,
                succ: vec![(EventId(0), 1)],
                marking: Some(m0.clone()),
            },
            State {
                code: 1,
                succ: vec![(EventId(0), 2)],
                marking: Some(m1.clone()),
            },
            State {
                code: 1,
                succ: vec![(EventId(0), 3)],
                marking: Some(m0.clone()),
            },
            State {
                code: 0,
                succ: vec![(EventId(0), 0)],
                marking: Some(m1.clone()),
            },
        ];
        let g = StateGraph::from_parts("parity", signals, events, states, 0).unwrap();
        assert_eq!(g.num_interned_markings(), 2);
        assert_eq!(g.interned_markings().len(), 2);
        assert_eq!(g.marking_of(0), Some(&m0));
        assert_eq!(g.marking_of(1), Some(&m1));
        // States 0 and 2 share one arena entry.
        assert_eq!(g.marking_id(0), g.marking_id(2));
        assert_ne!(g.marking_id(0), g.marking_id(1));
        // Filtering preserves the interned markings of kept states.
        let f = g
            .filtered(&[true, true, true, true], |_, _, _| true)
            .unwrap();
        assert_eq!(f.num_interned_markings(), 2);
        assert_eq!(f.marking_of(2), Some(&m0));
    }

    #[test]
    fn absent_markings_cost_nothing() {
        let g = diamond();
        assert_eq!(g.num_interned_markings(), 0);
        assert_eq!(g.marking_of(0), None);
        assert_eq!(g.marking_id(0), None);
    }

    #[test]
    fn render_state_marks_excited() {
        let g = diamond();
        assert_eq!(g.render_state(0), "0*0*");
        assert_eq!(g.render_state(1), "10*");
        assert_eq!(g.render_state(3), "11");
    }

    #[test]
    fn rejects_bad_parts() {
        let signals = vec![sig("a", SignalKind::Input)];
        let events = vec![];
        let states = vec![State {
            code: 0,
            succ: vec![(EventId(0), 0)],
            marking: None,
        }];
        assert!(StateGraph::from_parts("x", signals, events, states, 0).is_err());
    }

    #[test]
    fn rejects_bad_csr() {
        let signals = vec![sig("a", SignalKind::Input)];
        let bad = StateGraph::from_csr(
            "x".into(),
            signals,
            vec![],
            vec![0],
            vec![0, 2], // offsets claim 2 arcs, arrays hold none
            vec![],
            vec![],
            vec![],
            vec![],
            0,
        );
        assert!(matches!(bad, Err(SgError::Invalid(_))));
    }
}
