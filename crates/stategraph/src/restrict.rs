//! Incremental state-graph re-derivation after a serializing rewrite.
//!
//! Concurrency reduction (Section 4) rewrites the STG by adding one
//! fresh 1-safe place `p` with arcs `from -> p -> to`, so `to` now also
//! waits for a token produced by `from`. The state graph of the
//! rewritten STG is exactly the synchronous product of the original
//! graph with the two-state automaton tracking `p`'s token count —
//! binary codes, the event table and speed-independence-relevant
//! structure all carry over. [`restrict_with_place`] builds that product
//! directly from the already-explored graph, skipping the Petri-net
//! token game and initial-value inference that dominate a full
//! [`build_state_graph`](crate::build_state_graph) run.

use std::collections::HashMap;

use crate::error::{Result, SgError};
use crate::sg::{EventId, State, StateGraph, StateId};

/// Re-derives the state graph after adding one fresh, initially
/// unmarked, 1-safe place whose producing events are `producers` and
/// whose consuming events are `consumers`.
///
/// States of the result are `(original state, token count)` pairs
/// reachable from `(initial, 0)`; codes are inherited from the original
/// states. Arcs labelled with a consumer event are dropped while the
/// place is empty — that is the serialization. Originating markings are
/// not carried over (they would describe the pre-rewrite net).
///
/// # Errors
///
/// * [`SgError::Invalid`] if a producer fires while the place already
///   holds a token (the rewrite would make the net unsafe), or if an
///   event is listed as both producer and consumer.
pub fn restrict_with_place(
    sg: &StateGraph,
    producers: &[EventId],
    consumers: &[EventId],
) -> Result<StateGraph> {
    if producers.iter().any(|e| consumers.contains(e)) {
        return Err(SgError::Invalid(
            "an event cannot both produce and consume the serializing place".into(),
        ));
    }
    // (original state, token) -> new dense id.
    let mut index: HashMap<(StateId, bool), StateId> = HashMap::new();
    let mut nodes: Vec<(StateId, bool)> = vec![(sg.initial(), false)];
    index.insert((sg.initial(), false), 0);
    let mut succ: Vec<Vec<(EventId, StateId)>> = vec![Vec::new()];
    let mut work = vec![0 as StateId];
    while let Some(s) = work.pop() {
        let (orig, tok) = nodes[s as usize];
        for (e, t) in sg.succ(orig) {
            let consumes = consumers.contains(&e);
            if consumes && !tok {
                continue; // the serialization: `e` must wait for a token
            }
            let produces = producers.contains(&e);
            if produces && tok {
                return Err(SgError::Invalid(format!(
                    "serializing place becomes unsafe: {} fires with a token pending",
                    sg.event(e).label
                )));
            }
            let ntok = (tok && !consumes) || produces;
            let key = (t, ntok);
            let id = match index.get(&key) {
                Some(&id) => id,
                None => {
                    let id = nodes.len() as StateId;
                    nodes.push(key);
                    index.insert(key, id);
                    succ.push(Vec::new());
                    work.push(id);
                    id
                }
            };
            succ[s as usize].push((e, id));
        }
    }
    let states: Vec<State> = nodes
        .iter()
        .zip(succ)
        .map(|(&(orig, _), succ)| State {
            code: sg.code(orig),
            succ,
            marking: None,
        })
        .collect();
    StateGraph::from_parts(
        sg.name().to_string(),
        sg.signals().to_vec(),
        sg.events().to_vec(),
        states,
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_state_graph;
    use crate::csc::analyze_csc;
    use crate::props::speed_independence;
    use reshuffle_petri::parse_g;

    /// Mirror of the paper's Fig. 1: `Req` is the circuit's output, and
    /// the spec allows `Req+` concurrent with `Ack-`.
    const MFIG1: &str = "\
.model mfig1
.inputs Ack
.outputs Req
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn product_matches_full_rebuild() {
        let stg = parse_g(MFIG1).unwrap();
        let sg = build_state_graph(&stg).unwrap();
        assert_eq!(sg.num_states(), 5);
        let am = stg.transition_by_label("Ack-").unwrap();
        let rp = stg.transition_by_label("Req+").unwrap();
        let reduced = restrict_with_place(&sg, &[EventId(am.0)], &[EventId(rp.0)]).unwrap();

        // Reference: rewrite the STG and rebuild from scratch.
        let mut stg2 = stg.clone();
        reshuffle_petri::structural::insert_causal_place(&mut stg2, am, rp).unwrap();
        let rebuilt = build_state_graph(&stg2).unwrap();
        assert_eq!(reduced.num_states(), rebuilt.num_states());
        assert_eq!(reduced.num_arcs(), rebuilt.num_arcs());
        assert_eq!(reduced.fingerprint(), rebuilt.fingerprint());

        // The serialization dissolved the CSC conflict and kept SI.
        assert_eq!(analyze_csc(&reduced).num_csc_conflicts(), 0);
        assert!(speed_independence(&reduced).is_speed_independent());
    }

    #[test]
    fn reverse_serialization_traps_the_graph() {
        // Ordering Ack- after Req+ (delaying the input) removes the
        // other diamond path; the product is still well-formed.
        let stg = parse_g(MFIG1).unwrap();
        let sg = build_state_graph(&stg).unwrap();
        let am = stg.transition_by_label("Ack-").unwrap();
        let rp = stg.transition_by_label("Req+").unwrap();
        let reduced = restrict_with_place(&sg, &[EventId(rp.0)], &[EventId(am.0)]).unwrap();
        assert_eq!(reduced.num_states(), 4);
        assert!(reduced.deadlock_states().is_empty());
    }

    #[test]
    fn unsafe_rewrite_is_rejected() {
        // Producing from an event that can fire twice before the
        // consumer (b+ then b- produce, a- consumes) overfills the place.
        let src = "\
.model conc
.inputs a
.outputs b
.graph
p0 a+
p1 b+
a+ a-
b+ b-
a- p0
b- p1
.marking { p0 p1 }
.end
";
        let stg = parse_g(src).unwrap();
        let sg = build_state_graph(&stg).unwrap();
        let bp = stg.transition_by_label("b+").unwrap();
        let bm = stg.transition_by_label("b-").unwrap();
        let am = stg.transition_by_label("a-").unwrap();
        let e = restrict_with_place(&sg, &[EventId(bp.0), EventId(bm.0)], &[EventId(am.0)]);
        assert!(matches!(e, Err(SgError::Invalid(_))), "{e:?}");
    }

    #[test]
    fn producer_consumer_overlap_rejected() {
        let stg = parse_g(MFIG1).unwrap();
        let sg = build_state_graph(&stg).unwrap();
        let rp = stg.transition_by_label("Req+").unwrap();
        let e = restrict_with_place(&sg, &[EventId(rp.0)], &[EventId(rp.0)]);
        assert!(matches!(e, Err(SgError::Invalid(_))));
    }
}
