//! Next-state functions of non-input signals.
//!
//! For each non-input signal `a`, every reachable state is classified:
//! the *implied value* of `a` is 1 if `a` is high and stable or low and
//! excited (rising), and 0 symmetrically. Binary codes reached by no
//! state form the external don't-care set. Codes that appear with both
//! implied values are *CSC-conflicting* for `a`; logic cannot be derived
//! for them, and the reduction cost function penalizes them.

use reshuffle_petri::{Polarity, SignalEdge, SignalId, SignalKind};

use crate::sg::StateGraph;

/// The on/off/conflict partition of binary codes for one signal.
#[derive(Debug, Clone)]
pub struct NextStateTable {
    /// The signal being implemented.
    pub signal: SignalId,
    /// Codes whose implied next value is 1 (minus conflicts).
    pub on: Vec<u64>,
    /// Codes whose implied next value is 0 (minus conflicts).
    pub off: Vec<u64>,
    /// Codes implied both 1 and 0 by different states (CSC conflicts
    /// affecting this signal).
    pub conflicting: Vec<u64>,
    /// Number of variables (signals) in each code.
    pub num_vars: usize,
}

impl NextStateTable {
    /// True if the function is well-defined on all reachable codes.
    pub fn is_conflict_free(&self) -> bool {
        self.conflicting.is_empty()
    }
}

/// The implied next value of `sig` in state `s`.
pub fn implied_value(sg: &StateGraph, s: crate::sg::StateId, sig: SignalId) -> bool {
    let cur = sg.value(s, sig);
    let rise = SignalEdge {
        signal: sig,
        polarity: Polarity::Rise,
    };
    let fall = SignalEdge {
        signal: sig,
        polarity: Polarity::Fall,
    };
    if cur {
        // High: stays 1 unless a falling edge is excited.
        !sg.enables_edge(s, fall)
    } else {
        sg.enables_edge(s, rise)
    }
}

/// Builds the next-state table for one signal.
pub fn next_state_table(sg: &StateGraph, sig: SignalId) -> NextStateTable {
    let mut on = Vec::new();
    let mut off = Vec::new();
    for s in sg.state_ids() {
        let code = sg.code(s);
        if implied_value(sg, s, sig) {
            on.push(code);
        } else {
            off.push(code);
        }
    }
    on.sort_unstable();
    on.dedup();
    off.sort_unstable();
    off.dedup();
    // Conflicts: codes in both.
    let mut conflicting = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < on.len() && j < off.len() {
        match on[i].cmp(&off[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                conflicting.push(on[i]);
                i += 1;
                j += 1;
            }
        }
    }
    on.retain(|c| !conflicting.contains(c));
    off.retain(|c| !conflicting.contains(c));
    NextStateTable {
        signal: sig,
        on,
        off,
        conflicting,
        num_vars: sg.num_signals(),
    }
}

/// Builds next-state tables for every non-input signal.
pub fn all_next_state_tables(sg: &StateGraph) -> Vec<NextStateTable> {
    (0..sg.num_signals())
        .map(SignalId::from_index)
        .filter(|&s| sg.signal(s).kind != SignalKind::Input)
        .map(|s| next_state_table(sg, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_state_graph;
    use reshuffle_petri::parse_g;

    #[test]
    fn c_element_next_state() {
        // b = C(a1, a2): b+ after both inputs rise, b- after both fall.
        let src = "\
.model celem
.inputs a1 a2
.outputs b
.graph
a1+ b+
a2+ b+
b+ a1- a2-
a1- b-
a2- b-
b- a1+ a2+
.marking { <b-,a1+> <b-,a2+> }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let b = sg.signal_by_name("b").unwrap();
        let t = next_state_table(&sg, b);
        assert!(t.is_conflict_free());
        // ON: code a1=1,a2=1 (any b) plus b=1 with not both low.
        // Verify the defining corners: (1,1,0) is ON, (0,0,1) is OFF.
        let a1 = sg.signal_by_name("a1").unwrap().index();
        let a2 = sg.signal_by_name("a2").unwrap().index();
        let bi = b.index();
        let on_code = (1 << a1) | (1 << a2);
        let off_code = 1 << bi;
        assert!(t.on.contains(&on_code), "{t:?}");
        assert!(t.off.contains(&off_code), "{t:?}");
        // Codes partition: on + off = reachable codes.
        assert_eq!(t.on.len() + t.off.len(), {
            let mut codes: Vec<u64> = sg.state_ids().map(|s| sg.code(s)).collect();
            codes.sort_unstable();
            codes.dedup();
            codes.len()
        });
    }

    #[test]
    fn conflicting_codes_detected() {
        const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        let ack = sg.signal_by_name("Ack").unwrap();
        let t = next_state_table(&sg, ack);
        // States 11* and 1*1 share a code but imply Ack=1 and Ack=0.
        assert_eq!(t.conflicting.len(), 1);
        assert!(!t.is_conflict_free());
    }

    #[test]
    fn tables_only_for_noninput() {
        const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        let tables = all_next_state_tables(&sg);
        assert_eq!(tables.len(), 1);
        assert_eq!(sg.signal(tables[0].signal).name, "Ack");
    }
}
