//! The concurrency relation between events (Definition 2.1).
//!
//! Two edges `a`, `b` are concurrent iff the SG contains a diamond
//! `s1 -a-> s2`, `s1 -b-> s3`, `s2 -b-> s4`, `s3 -a-> s4`. The reduction
//! search enumerates concurrent pairs as candidates for `FwdRed`.

use reshuffle_petri::SignalEdge;

use crate::sg::{StateGraph, StateId};

/// True if edges `a` and `b` are concurrent (a complete diamond exists).
pub fn concurrent(sg: &StateGraph, a: SignalEdge, b: SignalEdge) -> bool {
    if a == b {
        return false;
    }
    sg.state_ids().any(|s| diamond_at(sg, s, a, b).is_some())
}

/// If a diamond on `a`,`b` starts at `s1`, returns its four corners
/// `(s1, s2, s3, s4)`.
pub fn diamond_at(
    sg: &StateGraph,
    s1: StateId,
    a: SignalEdge,
    b: SignalEdge,
) -> Option<(StateId, StateId, StateId, StateId)> {
    let s2 = sg.step_edge(s1, a)?;
    let s3 = sg.step_edge(s1, b)?;
    let s4a = sg.step_edge(s2, b)?;
    let s4b = sg.step_edge(s3, a)?;
    (s4a == s4b).then_some((s1, s2, s3, s4a))
}

/// All unordered concurrent pairs of distinct edges appearing in the
/// graph, sorted deterministically.
pub fn concurrent_pairs(sg: &StateGraph) -> Vec<(SignalEdge, SignalEdge)> {
    let mut edges: Vec<SignalEdge> = sg.events().iter().filter_map(|e| e.edge).collect();
    edges.sort_by_key(|e| (e.signal, e.polarity));
    edges.dedup();
    let mut out = Vec::new();
    for (i, &a) in edges.iter().enumerate() {
        for &b in &edges[i + 1..] {
            if concurrent(sg, a, b) {
                out.push((a, b));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_state_graph;
    use reshuffle_petri::{parse_g, Polarity};

    fn edge(sg: &StateGraph, name: &str, pol: Polarity) -> SignalEdge {
        SignalEdge {
            signal: sg.signal_by_name(name).unwrap(),
            polarity: pol,
        }
    }

    const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn fig1_req_rise_concurrent_with_ack_fall() {
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        let a = edge(&sg, "Req", Polarity::Rise);
        let b = edge(&sg, "Ack", Polarity::Fall);
        assert!(concurrent(&sg, a, b));
        // Sequenced events are not concurrent.
        let c = edge(&sg, "Ack", Polarity::Rise);
        assert!(!concurrent(&sg, a, c));
        let pairs = concurrent_pairs(&sg);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn edge_not_concurrent_with_itself() {
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        let a = edge(&sg, "Req", Polarity::Rise);
        assert!(!concurrent(&sg, a, a));
    }

    #[test]
    fn choice_is_not_concurrency() {
        // Two inputs in free choice share enabled states but no diamond.
        let src = "\
.model choice
.inputs a b
.graph
p0 a+ b+
a+ a-
b+ b-
a- p0
b- p0
.marking { p0 }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let a = edge(&sg, "a", Polarity::Rise);
        let b = edge(&sg, "b", Polarity::Rise);
        assert!(!concurrent(&sg, a, b));
        assert!(concurrent_pairs(&sg).is_empty());
    }

    #[test]
    fn true_concurrency_detected() {
        let src = "\
.model conc
.inputs a
.outputs b
.graph
p0 a+
p1 b+
a+ a-
b+ b-
a- p0
b- p1
.marking { p0 p1 }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let pairs = concurrent_pairs(&sg);
        // a+,a- each concurrent with b+,b-: 4 pairs.
        assert_eq!(pairs.len(), 4);
    }
}
