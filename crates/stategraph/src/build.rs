//! Building a [`StateGraph`] from an [`Stg`]: reachability exploration
//! plus binary encoding.
//!
//! The construction explores *(marking, code)* pairs: firing `a+` sets
//! bit `a` (and is a consistency violation if already set), `a-` clears
//! it, `a~` toggles it, dummies leave the code unchanged. For rise/fall
//! signals the initial value is inferred first by constraint propagation
//! over the plain marking graph (explicit `.g` files rarely declare
//! initial values); toggle signals default to the STG's declared initial
//! value or 0.
//!
//! For STGs without toggle edges a marking must encode to a unique code;
//! reaching one marking with two codes is reported as an inconsistency
//! (petrify's semantics). With toggle edges (2-phase specifications) the
//! `(marking, parity)` unfolding is the intended behaviour.

use std::collections::{HashMap, VecDeque};

use reshuffle_obs::{FieldVal, SpanCtx};
use reshuffle_petri::sharded::{self, ExploreOptions};
use reshuffle_petri::{Marking, Polarity, ReachabilityGraph, SignalId, Stg};

use crate::error::{Result, SgError};
use crate::sg::{EventId, EventInfo, StateGraph};

/// Options for state-graph construction.
///
/// # Thread-count independence
///
/// The build explores with a sharded parallel frontier and then
/// renumbers states canonically, so the resulting graph — ids, arcs,
/// fingerprint, `Debug` output — is **byte-identical for every value
/// of `threads`**:
///
/// ```
/// use reshuffle_petri::parse_g;
/// use reshuffle_sg::{build_state_graph_with, BuildOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stg = parse_g(
///     ".model xyz\n.inputs x\n.outputs y z\n.graph\n\
///      x+ y+\ny+ z+\nz+ x-\nx- y-\ny- z-\nz- x+\n\
///      .marking { <z-,x+> }\n.end\n",
/// )?;
/// let serial = build_state_graph_with(
///     &stg,
///     &BuildOptions { threads: 1, ..Default::default() },
/// )?;
/// let parallel = build_state_graph_with(
///     &stg,
///     &BuildOptions { threads: 8, ..Default::default() },
/// )?;
/// assert_eq!(serial.fingerprint(), parallel.fingerprint());
/// assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Cap on the number of explored states.
    pub state_budget: usize,
    /// Worker threads for the sharded reachability frontier: `0` (the
    /// default) resolves to the machine's available parallelism, `1`
    /// forces a serial build. The default can be pinned globally with
    /// the `RESHUFFLE_THREADS` environment variable — CI uses that to
    /// assert thread-count independence of whole reports.
    pub threads: usize,
    /// Trace context: the build opens `bfs.markings` and `bfs.encode`
    /// child spans (level 1) and per-shard `bfs.shard` spans (level 2)
    /// under it. Disabled by default; never affects the built graph.
    pub span: SpanCtx,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            state_budget: reshuffle_petri::DEFAULT_STATE_BUDGET,
            threads: std::env::var("RESHUFFLE_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            span: SpanCtx::default(),
        }
    }
}

impl BuildOptions {
    /// Attach a trace context for the exploration spans.
    #[must_use]
    pub fn with_span(mut self, span: SpanCtx) -> BuildOptions {
        self.span = span;
        self
    }
}

/// What one state-graph build did, for diagnostics: sizes of the
/// result plus the exploration's peak frontier (a proxy for exploitable
/// parallelism) and the worker count actually used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildStats {
    /// States in the built graph.
    pub states: usize,
    /// Arcs in the built graph.
    pub arcs: usize,
    /// Distinct interned markings.
    pub interned_markings: usize,
    /// Largest breadth-first frontier across the marking and encoding
    /// explorations.
    pub peak_frontier: usize,
    /// Worker threads the build resolved to.
    pub threads: usize,
}

/// Builds the state graph of `stg` with default options.
///
/// # Errors
///
/// See [`build_state_graph_with`].
pub fn build_state_graph(stg: &Stg) -> Result<StateGraph> {
    build_state_graph_with(stg, &BuildOptions::default())
}

/// Infers the initial value of every signal.
///
/// Rise/fall signals: constraint propagation over the marking graph
/// (`a+` fixes 0 at its source marking and 1 at its target). Toggle or
/// constant signals: the explicit initial value, or 0.
fn infer_initial_values(stg: &Stg, rg: &ReachabilityGraph) -> Result<Vec<bool>> {
    let n = rg.len();
    let num_signals = stg.num_signals();
    // Which signals need inference: rise/fall edges, no explicit value.
    let mut needs = vec![false; num_signals];
    for t in stg.transitions() {
        if let Some(e) = stg.edge_of(t) {
            if matches!(e.polarity, Polarity::Rise | Polarity::Fall)
                && stg.initial_value(e.signal).is_none()
            {
                needs[e.signal.index()] = true;
            }
        }
    }
    let mut initial = vec![false; num_signals];
    for s in stg.signals() {
        if let Some(v) = stg.initial_value(s) {
            initial[s.index()] = v;
        }
    }
    if !needs.iter().any(|&b| b) {
        return Ok(initial);
    }

    // values[marking][signal]
    let mut values: Vec<Vec<Option<bool>>> = vec![vec![None; num_signals]; n];
    let assign = |values: &mut Vec<Vec<Option<bool>>>,
                  m: usize,
                  sig: SignalId,
                  v: bool|
     -> std::result::Result<bool, SgError> {
        match values[m][sig.index()] {
            None => {
                values[m][sig.index()] = Some(v);
                Ok(true)
            }
            Some(old) if old == v => Ok(false),
            Some(old) => Err(SgError::Inconsistent {
                signal: stg.signal(sig).name.clone(),
                witness: format!(
                    "marking #{m} requires {} = {} and {}",
                    stg.signal(sig).name,
                    old as u8,
                    v as u8
                ),
            }),
        }
    };

    // Seed with rise/fall endpoint constraints.
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut in_queue = vec![false; n];
    let push = |queue: &mut VecDeque<usize>, in_queue: &mut Vec<bool>, m: usize| {
        if !in_queue[m] {
            in_queue[m] = true;
            queue.push_back(m);
        }
    };
    for m in 0..n {
        for &(t, tgt) in rg.successors(m as u32) {
            if let Some(edge) = stg.edge_of(t) {
                if !needs[edge.signal.index()] {
                    continue;
                }
                let (pre, post) = match edge.polarity {
                    Polarity::Rise => (false, true),
                    Polarity::Fall => (true, false),
                    Polarity::Toggle => continue,
                };
                if assign(&mut values, m, edge.signal, pre)? {
                    push(&mut queue, &mut in_queue, m);
                }
                if assign(&mut values, tgt as usize, edge.signal, post)? {
                    push(&mut queue, &mut in_queue, tgt as usize);
                }
            }
        }
    }

    // Propagate equalities: along any arc not switching the signal, the
    // value is preserved (in both directions).
    let pred = {
        let mut p: Vec<Vec<(usize, reshuffle_petri::TransitionId)>> = vec![Vec::new(); n];
        for m in 0..n {
            for &(t, tgt) in rg.successors(m as u32) {
                p[tgt as usize].push((m, t));
            }
        }
        p
    };
    while let Some(m) = queue.pop_front() {
        in_queue[m] = false;
        let snapshot = values[m].clone();
        for &(t, tgt) in rg.successors(m as u32) {
            let switched = stg.edge_of(t).map(|e| e.signal);
            for (i, v) in snapshot.iter().enumerate() {
                let (Some(v), sig) = (*v, SignalId::from_index(i)) else {
                    continue;
                };
                if !needs[i] || switched == Some(sig) {
                    continue;
                }
                if assign(&mut values, tgt as usize, sig, v)? {
                    push(&mut queue, &mut in_queue, tgt as usize);
                }
            }
        }
        for &(src, t) in &pred[m] {
            let switched = stg.edge_of(t).map(|e| e.signal);
            for (i, v) in snapshot.iter().enumerate() {
                let (Some(v), sig) = (*v, SignalId::from_index(i)) else {
                    continue;
                };
                if !needs[i] || switched == Some(sig) {
                    continue;
                }
                if assign(&mut values, src, sig, v)? {
                    push(&mut queue, &mut in_queue, src);
                }
            }
        }
    }

    for (i, need) in needs.iter().enumerate() {
        if *need {
            // Default an unconstrained signal (can happen when the
            // marking graph never switches it) to 0.
            initial[i] = values[0][i].unwrap_or(false);
        }
    }
    Ok(initial)
}

/// Builds the state graph of `stg`.
///
/// The construction runs two sharded parallel breadth-first
/// explorations ([`reshuffle_petri::sharded`]) — the raw marking graph,
/// then the *(marking, code)* encoding product — each followed by a
/// canonical renumbering, so the result is identical for every
/// [`BuildOptions::threads`] value. The graph is assembled directly
/// into the compressed CSR layout with markings interned into one
/// shared arena.
///
/// # Errors
///
/// * [`SgError::Petri`] if the net is unsafe, has source transitions or
///   exceeds the state budget;
/// * [`SgError::TooManySignals`] for more than 64 signals;
/// * [`SgError::Inconsistent`] if no consistent binary encoding exists.
pub fn build_state_graph_with(stg: &Stg, opts: &BuildOptions) -> Result<StateGraph> {
    build_state_graph_stats(stg, opts).map(|(sg, _)| sg)
}

/// [`build_state_graph_with`], also reporting [`BuildStats`] (state,
/// arc, interned-marking and peak-frontier counters) for diagnostics.
///
/// # Errors
///
/// See [`build_state_graph_with`].
pub fn build_state_graph_stats(stg: &Stg, opts: &BuildOptions) -> Result<(StateGraph, BuildStats)> {
    stg.validate()?;
    if stg.num_signals() > 64 {
        return Err(SgError::TooManySignals(stg.num_signals()));
    }
    let sp_markings = opts.span.span("bfs.markings");
    let rg = ReachabilityGraph::explore_opts(
        stg.net(),
        &stg.initial_marking(),
        &ExploreOptions::new(opts.threads, opts.state_budget).with_span(sp_markings.ctx()),
    )?;
    sp_markings.end(&[
        ("states", FieldVal::U64(rg.len() as u64)),
        ("peak_frontier", FieldVal::U64(rg.peak_frontier() as u64)),
    ]);
    let initial_values = infer_initial_values(stg, &rg)?;
    let mut code0 = 0u64;
    for (i, &v) in initial_values.iter().enumerate() {
        if v {
            code0 |= 1 << i;
        }
    }
    let has_toggle = stg
        .transitions()
        .any(|t| matches!(stg.edge_of(t).map(|e| e.polarity), Some(Polarity::Toggle)));

    // Explore (marking-node, code) pairs. Markings are referenced by
    // their node id in the already-explored reachability graph, so the
    // frontier keys are plain `(u32, u64)` pairs — no marking clones.
    let sp_encode = opts.span.span("bfs.encode");
    let explored = sharded::explore(
        (0u32, code0),
        &ExploreOptions::new(opts.threads, opts.state_budget).with_span(sp_encode.ctx()),
        |&(mnode, code), out: &mut Vec<(EventId, (u32, u64))>| {
            for &(t, mtgt) in rg.successors(mnode) {
                let next_code = match stg.edge_of(t) {
                    None => code,
                    Some(edge) => {
                        let bit = 1u64 << edge.signal.index();
                        let cur = code & bit != 0;
                        let ok = match edge.polarity {
                            Polarity::Rise => !cur,
                            Polarity::Fall => cur,
                            Polarity::Toggle => true,
                        };
                        if !ok {
                            return Err(SgError::Inconsistent {
                                signal: stg.signal(edge.signal).name.clone(),
                                witness: format!(
                                    "firing {} while {} is already {}",
                                    stg.transition_name(t),
                                    stg.signal(edge.signal).name,
                                    cur as u8
                                ),
                            });
                        }
                        match edge.polarity {
                            Polarity::Rise => code | bit,
                            Polarity::Fall => code & !bit,
                            Polarity::Toggle => code ^ bit,
                        }
                    }
                };
                out.push((EventId(t.0), (mtgt, next_code)));
            }
            Ok(())
        },
        |b| SgError::Petri(reshuffle_petri::PetriError::StateBudgetExceeded(b)),
    )?;
    sp_encode.end(&[
        ("states", FieldVal::U64(explored.keys.len() as u64)),
        ("arcs", FieldVal::U64(explored.num_arcs() as u64)),
        (
            "peak_frontier",
            FieldVal::U64(explored.peak_frontier as u64),
        ),
    ]);

    // Without toggles, a marking reached under two codes is inconsistent.
    if !has_toggle {
        let mut seen: HashMap<u32, u64> = HashMap::new();
        for &(mnode, code) in &explored.keys {
            if let Some(&other) = seen.get(&mnode) {
                if other != code {
                    let diff = other ^ code;
                    let sig = SignalId::from_index(diff.trailing_zeros() as usize);
                    return Err(SgError::Inconsistent {
                        signal: stg.signal(sig).name.clone(),
                        witness: format!(
                            "marking {} is reachable with codes {code:b} and {other:b}",
                            rg.marking(mnode).display(stg.net())
                        ),
                    });
                }
            } else {
                seen.insert(mnode, code);
            }
        }
    }

    // Assemble the CSR arrays directly: codes, flat arcs (already in
    // ascending event order — reachability arcs fire transitions in id
    // order), and markings interned by reachability node.
    let events: Vec<EventInfo> = stg
        .transitions()
        .map(|t| EventInfo {
            label: stg.transition_name(t).to_string(),
            edge: stg.edge_of(t),
        })
        .collect();
    let n = explored.keys.len();
    let num_arcs = explored.num_arcs();
    let mut codes = Vec::with_capacity(n);
    let mut succ_offsets = Vec::with_capacity(n + 1);
    let mut arc_events = Vec::with_capacity(num_arcs);
    let mut arc_targets = Vec::with_capacity(num_arcs);
    let mut marking_ids = Vec::with_capacity(n);
    let mut markings: Vec<Marking> = Vec::new();
    let mut intern: HashMap<u32, u32> = HashMap::new();
    succ_offsets.push(0);
    for (i, &(mnode, code)) in explored.keys.iter().enumerate() {
        codes.push(code);
        for &(e, t) in &explored.succs[i] {
            arc_events.push(e);
            arc_targets.push(t);
        }
        succ_offsets.push(arc_events.len() as u32);
        let mid = *intern.entry(mnode).or_insert_with(|| {
            markings.push(rg.marking(mnode).clone());
            (markings.len() - 1) as u32
        });
        marking_ids.push(mid);
    }
    let signals = (0..stg.num_signals())
        .map(|i| stg.signal(SignalId::from_index(i)).clone())
        .collect();
    let stats = BuildStats {
        states: n,
        arcs: num_arcs,
        interned_markings: markings.len(),
        peak_frontier: rg.peak_frontier().max(explored.peak_frontier),
        threads: sharded::effective_threads(opts.threads),
    };
    let sg = StateGraph::from_csr(
        stg.name.clone(),
        signals,
        events,
        codes,
        succ_offsets,
        arc_events,
        arc_targets,
        marking_ids,
        markings,
        0,
    )?;
    Ok((sg, stats))
}

/// Re-derives event labels of an [`Stg`] for a state graph built from it
/// (convenience used by tests and reports).
pub fn event_label_map(stg: &Stg) -> Vec<String> {
    stg.transitions()
        .map(|t| stg.transition_name(t).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::{parse_g, SignalKind};

    const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn fig1_has_five_states() {
        let stg = parse_g(FIG1).unwrap();
        let sg = build_state_graph(&stg).unwrap();
        assert_eq!(sg.num_states(), 5);
        // Initial state of Fig. 1(d) is 0*1 (Ack excited low, Req high).
        let init = sg.initial();
        let ack = sg.signal_by_name("Ack").unwrap();
        let req = sg.signal_by_name("Req").unwrap();
        assert!(!sg.value(init, ack));
        assert!(sg.value(init, req));
        let rendered = sg.render_state(init);
        assert!(rendered.contains('*'), "{rendered}");
    }

    #[test]
    fn inconsistent_stg_rejected() {
        // a+ followed by a+ without a- in between.
        let src = "\
.model bad
.inputs a
.graph
a+ a+/2
a+/2 a+
.marking { <a+/2,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        let e = build_state_graph(&stg).unwrap_err();
        assert!(matches!(e, SgError::Inconsistent { .. }), "{e}");
    }

    #[test]
    fn toggle_signals_unfold_parity() {
        // A 2-phase cycle: the marking graph has 2 markings but the
        // state graph unfolds to 4 states tracking signal parity.
        let src = "\
.model t2
.inputs a
.outputs b
.graph
a~ b~
b~ a~
.marking { <b~,a~> }
.end
";
        let stg = parse_g(src).unwrap();
        let sg = build_state_graph(&stg).unwrap();
        assert_eq!(sg.num_states(), 4);
        let a = sg.signal_by_name("a").unwrap();
        assert!(!sg.value(0, a));
        let e = sg.event_by_label("a~").unwrap();
        let s1 = sg.step(0, e).unwrap();
        assert!(sg.value(s1, a));
        // Two toggles of a bring it back.
        let eb = sg.event_by_label("b~").unwrap();
        let s2 = sg.step(s1, eb).unwrap();
        let s3 = sg.step(s2, e).unwrap();
        assert!(!sg.value(s3, a));
    }

    #[test]
    fn explicit_initial_value_respected() {
        let src = "\
.model t2
.inputs a
.outputs b
.graph
a~ b~
b~ a~
.marking { <b~,a~> }
.end
";
        let mut stg = parse_g(src).unwrap();
        let a = stg.signal_by_name("a").unwrap();
        stg.set_initial_value(a, true);
        let sg = build_state_graph(&stg).unwrap();
        assert!(sg.value(0, a));
    }

    #[test]
    fn constant_signal_defaults() {
        let mut stg = reshuffle_petri::Stg::new("c");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let _unused = stg.add_signal("quiet", SignalKind::Output).unwrap();
        let t1 = stg.add_edge_transition(a, reshuffle_petri::Polarity::Rise);
        let t2 = stg.add_edge_transition(a, reshuffle_petri::Polarity::Fall);
        stg.connect(t1, t2).unwrap();
        let p = stg.connect(t2, t1).unwrap();
        stg.set_initial_places(&[p]);
        let sg = build_state_graph(&stg).unwrap();
        let q = sg.signal_by_name("quiet").unwrap();
        for s in sg.state_ids() {
            assert!(!sg.value(s, q));
        }
    }

    #[test]
    fn codes_differ_by_one_bit_along_arcs() {
        let stg = parse_g(FIG1).unwrap();
        let sg = build_state_graph(&stg).unwrap();
        for s in sg.state_ids() {
            for (e, t) in sg.succ(s) {
                let diff = sg.code(s) ^ sg.code(t);
                if sg.event(e).edge.is_some() {
                    assert_eq!(diff.count_ones(), 1);
                } else {
                    assert_eq!(diff, 0);
                }
            }
        }
    }

    #[test]
    fn budget_respected() {
        let stg = parse_g(FIG1).unwrap();
        let e = build_state_graph_with(
            &stg,
            &BuildOptions {
                state_budget: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(e, SgError::Petri(_)));
    }

    #[test]
    fn initial_value_inference_fig1() {
        // Req must be inferred high: Req- fires before any Req+.
        let stg = parse_g(FIG1).unwrap();
        let rg = ReachabilityGraph::explore_default(stg.net(), &stg.initial_marking()).unwrap();
        let vals = infer_initial_values(&stg, &rg).unwrap();
        let req = stg.signal_by_name("Req").unwrap();
        let ack = stg.signal_by_name("Ack").unwrap();
        assert!(vals[req.index()]);
        assert!(!vals[ack.index()]);
    }
}
