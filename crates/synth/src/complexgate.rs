//! Complex-gate synthesis: one (decomposed) atomic gate per signal.
//!
//! Each non-input signal is driven by its minimized next-state function
//! mapped as a factored 2-input-gate network with feedback from the
//! signal itself where the function is self-dependent.

use reshuffle_logic::factor;
use reshuffle_sg::StateGraph;

use crate::error::Result;
use crate::func::{derive_all_functions, ConflictPolicy, SignalFunction};
use crate::mapping::Mapper;
use crate::netlist::Netlist;

/// A synthesized complex-gate implementation.
#[derive(Debug, Clone)]
pub struct ComplexGateImpl {
    /// The mapped netlist.
    pub netlist: Netlist,
    /// The per-signal minimized functions (for reports).
    pub functions: Vec<SignalFunction>,
}

/// Synthesizes a complex-gate circuit for every non-input signal of the
/// state graph.
///
/// # Errors
///
/// [`crate::SynthError::CscViolation`] if any signal's coding conflicts
/// make its function ill-defined.
pub fn synthesize_complex_gates(sg: &StateGraph) -> Result<ComplexGateImpl> {
    let functions = derive_all_functions(sg, ConflictPolicy::Reject)?;
    let mut netlist = Netlist::new(sg.signals().to_vec());
    let mut mapper = Mapper::new();
    for f in &functions {
        let expr = factor(&f.cover);
        let root = mapper.map_expr(&mut netlist, &expr);
        netlist.set_driver(f.signal, root)?;
    }
    Ok(ComplexGateImpl { netlist, functions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use reshuffle_petri::parse_g;
    use reshuffle_sg::build_state_graph;

    #[test]
    fn buffer_synthesizes_to_wire() {
        let src = "\
.model ok
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let imp = synthesize_complex_gates(&sg).unwrap();
        let b = sg.signal_by_name("b").unwrap();
        assert!(imp.netlist.is_wire(b));
        assert_eq!(imp.netlist.area(&Library::default()), 0.0);
    }

    #[test]
    fn c_element_synthesizes_with_feedback() {
        let src = "\
.model celem
.inputs a1 a2
.outputs b
.graph
a1+ b+
a2+ b+
b+ a1- a2-
a1- b-
a2- b-
b- a1+ a2+
.marking { <b-,a1+> <b-,a2+> }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let imp = synthesize_complex_gates(&sg).unwrap();
        let b = sg.signal_by_name("b").unwrap();
        assert!(!imp.netlist.is_wire(b));
        // Next-code must match implied values on every state.
        for s in sg.state_ids() {
            let next = imp.netlist.next_code(sg.code(s));
            let want = reshuffle_sg::nextstate::implied_value(&sg, s, b);
            assert_eq!((next >> b.index()) & 1 == 1, want, "state {s}");
        }
        assert!(imp.netlist.area(&Library::default()) > 0.0);
    }

    #[test]
    fn csc_conflict_propagates_error() {
        const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        assert!(synthesize_complex_gates(&sg).is_err());
    }
}
