//! Gate-level netlists for speed-independent controllers.
//!
//! A [`Netlist`] drives each non-input signal with a DAG of library
//! gates over *signal values* (inputs and fed-back outputs). Sequential
//! behaviour comes from C-elements and from generalized-C latches
//! ([`Node::GcLatch`]), or implicitly from combinational feedback
//! (a complex gate whose function depends on its own output).

use std::collections::HashMap;
use std::fmt;

use reshuffle_petri::{Signal, SignalId, SignalKind};

use crate::error::{Result, SynthError};
use crate::library::{GateType, Library};

/// Index of a node within a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// One netlist node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// The current value of a signal (circuit input or feedback).
    SignalRef(SignalId),
    /// Constant 0 or 1.
    Const(bool),
    /// A library gate over other nodes.
    Gate(GateType, Vec<NodeId>),
    /// A generalized-C latch: output rises when `set`, falls when
    /// `reset`, otherwise holds the value of the signal it drives.
    GcLatch {
        /// Set network root.
        set: NodeId,
        /// Reset network root.
        reset: NodeId,
        /// The signal this latch drives (for the hold value).
        holds: SignalId,
    },
}

/// A mapped circuit: one driver per non-input signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    signals: Vec<Signal>,
    nodes: Vec<Node>,
    /// Driving node per signal (None for inputs).
    drivers: Vec<Option<NodeId>>,
}

impl Netlist {
    /// Creates an empty netlist over the given signal table.
    pub fn new(signals: Vec<Signal>) -> Netlist {
        let n = signals.len();
        Netlist {
            signals,
            nodes: Vec::new(),
            drivers: vec![None; n],
        }
    }

    /// The signal table.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Looks up a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(SignalId::from_index)
    }

    /// Adds a node and returns its id.
    pub fn add(&mut self, node: Node) -> NodeId {
        if let Node::Gate(g, ins) = &node {
            assert_eq!(g.arity(), ins.len(), "gate arity mismatch");
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// The node table.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Sets the driver of a non-input signal.
    ///
    /// # Errors
    ///
    /// Rejects driving input signals or double-driving.
    pub fn set_driver(&mut self, s: SignalId, n: NodeId) -> Result<()> {
        if self.signals[s.index()].kind == SignalKind::Input {
            return Err(SynthError::Invalid(format!(
                "cannot drive input signal `{}`",
                self.signals[s.index()].name
            )));
        }
        if self.drivers[s.index()].is_some() {
            return Err(SynthError::Invalid(format!(
                "signal `{}` already driven",
                self.signals[s.index()].name
            )));
        }
        self.drivers[s.index()] = Some(n);
        Ok(())
    }

    /// The driver of a signal, if any.
    pub fn driver(&self, s: SignalId) -> Option<NodeId> {
        self.drivers[s.index()]
    }

    /// True if the signal is driven by a bare wire from another signal.
    pub fn is_wire(&self, s: SignalId) -> bool {
        match self.drivers[s.index()] {
            Some(n) => matches!(self.nodes[n.0 as usize], Node::SignalRef(_)),
            None => false,
        }
    }

    /// Total area under `lib`. Wires (bare `SignalRef` drivers) cost 0.
    pub fn area(&self, lib: &Library) -> f64 {
        let mut total = 0.0;
        for node in &self.nodes {
            total += match node {
                Node::SignalRef(_) | Node::Const(_) => 0.0,
                Node::Gate(g, _) => lib.area(*g),
                Node::GcLatch { .. } => lib.gc_core_area,
            };
        }
        total
    }

    /// Number of gates (excluding wires and constants).
    pub fn num_gates(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Gate(..) | Node::GcLatch { .. }))
            .count()
    }

    /// Evaluates the next value of every signal given the current code
    /// (bit i = value of signal i). Inputs keep their current value.
    pub fn next_code(&self, code: u64) -> u64 {
        let mut memo: HashMap<NodeId, bool> = HashMap::new();
        let mut next = code;
        for (i, d) in self.drivers.iter().enumerate() {
            if let Some(n) = d {
                let v = self.eval_node(*n, code, &mut memo);
                if v {
                    next |= 1 << i;
                } else {
                    next &= !(1 << i);
                }
            }
        }
        next
    }

    /// Evaluates a single node under the current code.
    pub fn eval_node(&self, n: NodeId, code: u64, memo: &mut HashMap<NodeId, bool>) -> bool {
        if let Some(&v) = memo.get(&n) {
            return v;
        }
        let v = match &self.nodes[n.0 as usize] {
            Node::SignalRef(s) => (code >> s.index()) & 1 == 1,
            Node::Const(b) => *b,
            Node::Gate(g, ins) => {
                let vals: Vec<bool> = ins.iter().map(|&i| self.eval_node(i, code, memo)).collect();
                match g {
                    GateType::Inv => !vals[0],
                    GateType::And2 => vals[0] && vals[1],
                    GateType::Or2 => vals[0] || vals[1],
                    GateType::C2 => {
                        // C-element: all-1 sets, all-0 resets, else hold.
                        // As a plain node it has no hold state; C2 is
                        // only created by the mapper as a *driver* whose
                        // hold value is the driven signal, encoded via
                        // GcLatch. Standalone C2 treats equal inputs as
                        // the output, else... conservatively AND (the
                        // mapper never emits standalone C2).
                        vals[0] && vals[1]
                    }
                }
            }
            Node::GcLatch { set, reset, holds } => {
                let s = self.eval_node(*set, code, memo);
                let r = self.eval_node(*reset, code, memo);
                if s {
                    true
                } else if r {
                    false
                } else {
                    (code >> holds.index()) & 1 == 1
                }
            }
        };
        memo.insert(n, v);
        v
    }

    /// Depth (in gates) of the network driving signal `s`; wires are 0.
    /// Sequential latches count as one gate of their own.
    pub fn depth(&self, s: SignalId) -> usize {
        match self.drivers[s.index()] {
            None => 0,
            Some(n) => self.node_depth(n),
        }
    }

    fn node_depth(&self, n: NodeId) -> usize {
        match &self.nodes[n.0 as usize] {
            Node::SignalRef(_) | Node::Const(_) => 0,
            Node::Gate(_, ins) => 1 + ins.iter().map(|&i| self.node_depth(i)).max().unwrap_or(0),
            Node::GcLatch { set, reset, .. } => {
                1 + self.node_depth(*set).max(self.node_depth(*reset))
            }
        }
    }

    /// Worst-case propagation delay of the network driving `s`, with
    /// combinational gates costing `lib.comb_delay` and sequential ones
    /// `lib.seq_delay`. Wires cost 0.
    pub fn network_delay(&self, s: SignalId, lib: &Library) -> f64 {
        match self.drivers[s.index()] {
            None => 0.0,
            Some(n) => self.node_delay(n, lib),
        }
    }

    fn node_delay(&self, n: NodeId, lib: &Library) -> f64 {
        match &self.nodes[n.0 as usize] {
            Node::SignalRef(_) | Node::Const(_) => 0.0,
            Node::Gate(g, ins) => {
                lib.delay(*g)
                    + ins
                        .iter()
                        .map(|&i| self.node_delay(i, lib))
                        .fold(0.0, f64::max)
            }
            Node::GcLatch { set, reset, .. } => {
                lib.seq_delay + self.node_delay(*set, lib).max(self.node_delay(*reset, lib))
            }
        }
    }

    /// Human-readable structural summary, one line per driven signal.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, d) in self.drivers.iter().enumerate() {
            if let Some(n) = d {
                out.push_str(&format!(
                    "{} = {}\n",
                    self.signals[i].name,
                    self.render_node(*n)
                ));
            }
        }
        out
    }

    fn render_node(&self, n: NodeId) -> String {
        match &self.nodes[n.0 as usize] {
            Node::SignalRef(s) => self.signals[s.index()].name.clone(),
            Node::Const(b) => if *b { "1" } else { "0" }.into(),
            Node::Gate(g, ins) => {
                let parts: Vec<String> = ins.iter().map(|&i| self.render_node(i)).collect();
                match g {
                    GateType::Inv => format!("{}'", parts[0]),
                    GateType::And2 => format!("({} & {})", parts[0], parts[1]),
                    GateType::Or2 => format!("({} | {})", parts[0], parts[1]),
                    GateType::C2 => format!("C({}, {})", parts[0], parts[1]),
                }
            }
            Node::GcLatch { set, reset, .. } => format!(
                "gC[set={}, reset={}]",
                self.render_node(*set),
                self.render_node(*reset)
            ),
        }
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_signal_table() -> Vec<Signal> {
        vec![
            Signal {
                name: "a".into(),
                kind: SignalKind::Input,
            },
            Signal {
                name: "b".into(),
                kind: SignalKind::Output,
            },
        ]
    }

    #[test]
    fn wire_costs_nothing() {
        let mut nl = Netlist::new(two_signal_table());
        let a_ref = nl.add(Node::SignalRef(SignalId(0)));
        nl.set_driver(SignalId(1), a_ref).unwrap();
        assert!(nl.is_wire(SignalId(1)));
        assert_eq!(nl.area(&Library::default()), 0.0);
        assert_eq!(nl.depth(SignalId(1)), 0);
        // b follows a.
        assert_eq!(nl.next_code(0b01) & 0b10, 0b10);
        assert_eq!(nl.next_code(0b00) & 0b10, 0b00);
    }

    #[test]
    fn gate_evaluation_and_area() {
        // b = a AND b (self-feedback keeps b high once a high... only
        // while a stays high).
        let mut nl = Netlist::new(two_signal_table());
        let a_ref = nl.add(Node::SignalRef(SignalId(0)));
        let b_ref = nl.add(Node::SignalRef(SignalId(1)));
        let or = nl.add(Node::Gate(GateType::Or2, vec![a_ref, b_ref]));
        nl.set_driver(SignalId(1), or).unwrap();
        let lib = Library::default();
        assert_eq!(nl.area(&lib), 32.0);
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(nl.depth(SignalId(1)), 1);
        // Once b=1, it stays 1 (OR feedback).
        assert_eq!(nl.next_code(0b10) & 0b10, 0b10);
        assert_eq!(nl.next_code(0b01) & 0b10, 0b10);
        assert_eq!(nl.next_code(0b00) & 0b10, 0b00);
    }

    #[test]
    fn gc_latch_holds() {
        let mut nl = Netlist::new(two_signal_table());
        let a_ref = nl.add(Node::SignalRef(SignalId(0)));
        let na = nl.add(Node::Gate(GateType::Inv, vec![a_ref]));
        let latch = nl.add(Node::GcLatch {
            set: a_ref,
            reset: na,
            holds: SignalId(1),
        });
        nl.set_driver(SignalId(1), latch).unwrap();
        // set when a=1, reset when a=0: b follows a.
        assert_eq!(nl.next_code(0b01) & 0b10, 0b10);
        assert_eq!(nl.next_code(0b10) & 0b10, 0b00);
        let lib = Library::default();
        assert_eq!(nl.area(&lib), lib.inv_area + lib.gc_core_area);
        // Latch depth includes its networks.
        assert_eq!(nl.depth(SignalId(1)), 2);
        assert!(nl.network_delay(SignalId(1), &lib) > lib.seq_delay);
    }

    #[test]
    fn cannot_drive_inputs_or_double_drive() {
        let mut nl = Netlist::new(two_signal_table());
        let c = nl.add(Node::Const(true));
        assert!(nl.set_driver(SignalId(0), c).is_err());
        nl.set_driver(SignalId(1), c).unwrap();
        assert!(nl.set_driver(SignalId(1), c).is_err());
    }

    #[test]
    fn describe_mentions_signals() {
        let mut nl = Netlist::new(two_signal_table());
        let a_ref = nl.add(Node::SignalRef(SignalId(0)));
        let inv = nl.add(Node::Gate(GateType::Inv, vec![a_ref]));
        nl.set_driver(SignalId(1), inv).unwrap();
        let d = nl.describe();
        assert!(d.contains("b = a'"));
    }
}
