//! Technology mapping: factored expressions into 2-input gates.
//!
//! The paper decomposes every next-state function into 2-input gates
//! while preserving speed independence; we implement the same
//! granularity with monotone AND/OR trees over (possibly inverted)
//! signal values. Input inverters are shared per signal.

use std::collections::HashMap;

use reshuffle_logic::Expr;
use reshuffle_petri::SignalId;

use crate::library::GateType;
use crate::netlist::{Netlist, Node, NodeId};

/// Shared per-netlist mapping state: signal references and inverters.
#[derive(Debug, Default)]
pub struct Mapper {
    refs: HashMap<usize, NodeId>,
    invs: HashMap<usize, NodeId>,
}

impl Mapper {
    /// Creates a fresh mapper (one per netlist).
    pub fn new() -> Mapper {
        Mapper::default()
    }

    /// The node for a signal's current value.
    pub fn signal_ref(&mut self, nl: &mut Netlist, var: usize) -> NodeId {
        *self
            .refs
            .entry(var)
            .or_insert_with(|| nl.add(Node::SignalRef(SignalId::from_index(var))))
    }

    /// The (shared) inverter of a signal.
    pub fn inverter(&mut self, nl: &mut Netlist, var: usize) -> NodeId {
        if let Some(&n) = self.invs.get(&var) {
            return n;
        }
        let r = self.signal_ref(nl, var);
        let n = nl.add(Node::Gate(GateType::Inv, vec![r]));
        self.invs.insert(var, n);
        n
    }

    /// Maps an expression into the netlist, returning its root node.
    pub fn map_expr(&mut self, nl: &mut Netlist, e: &Expr) -> NodeId {
        match e {
            Expr::Const(b) => nl.add(Node::Const(*b)),
            Expr::Lit(v, true) => self.signal_ref(nl, *v),
            Expr::Lit(v, false) => self.inverter(nl, *v),
            Expr::And(xs) => {
                let kids: Vec<NodeId> = xs.iter().map(|x| self.map_expr(nl, x)).collect();
                self.balanced_tree(nl, GateType::And2, kids)
            }
            Expr::Or(xs) => {
                let kids: Vec<NodeId> = xs.iter().map(|x| self.map_expr(nl, x)).collect();
                self.balanced_tree(nl, GateType::Or2, kids)
            }
        }
    }

    /// Builds a balanced tree of 2-input gates over the children
    /// (balanced trees minimize depth, hence delay).
    fn balanced_tree(&mut self, nl: &mut Netlist, g: GateType, mut kids: Vec<NodeId>) -> NodeId {
        assert!(!kids.is_empty());
        while kids.len() > 1 {
            let mut next = Vec::with_capacity(kids.len().div_ceil(2));
            let mut it = kids.chunks(2);
            for pair in &mut it {
                match pair {
                    [a, b] => next.push(nl.add(Node::Gate(g, vec![*a, *b]))),
                    [a] => next.push(*a),
                    _ => unreachable!(),
                }
            }
            kids = next;
        }
        kids[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use reshuffle_petri::{Signal, SignalKind};

    fn signals(n: usize) -> Vec<Signal> {
        (0..n)
            .map(|i| Signal {
                name: format!("x{i}"),
                kind: if i == n - 1 {
                    SignalKind::Output
                } else {
                    SignalKind::Input
                },
            })
            .collect()
    }

    #[test]
    fn maps_wide_and_balanced() {
        let mut nl = Netlist::new(signals(5));
        let mut m = Mapper::new();
        let e = Expr::and((0..4).map(|v| Expr::Lit(v, true)).collect());
        let root = m.map_expr(&mut nl, &e);
        nl.set_driver(SignalId(4), root).unwrap();
        // 4-input AND = 3 AND2 gates, depth 2 (balanced).
        assert_eq!(nl.num_gates(), 3);
        assert_eq!(nl.depth(SignalId(4)), 2);
        // Evaluates correctly.
        assert_eq!(nl.next_code(0b01111) & 0b10000, 0b10000);
        assert_eq!(nl.next_code(0b00111) & 0b10000, 0);
    }

    #[test]
    fn inverters_are_shared() {
        let mut nl = Netlist::new(signals(3));
        let mut m = Mapper::new();
        // x0' x1 + x0' x1' uses x0' twice but should build one inverter.
        let e = Expr::or(vec![
            Expr::and(vec![Expr::Lit(0, false), Expr::Lit(1, true)]),
            Expr::and(vec![Expr::Lit(0, false), Expr::Lit(1, false)]),
        ]);
        let root = m.map_expr(&mut nl, &e);
        nl.set_driver(SignalId(2), root).unwrap();
        let inv_count = nl
            .nodes()
            .iter()
            .filter(|n| matches!(n, Node::Gate(GateType::Inv, _)))
            .count();
        assert_eq!(inv_count, 2); // x0' and x1', not three.
        let lib = Library::default();
        // 2 INV + 2 AND + 1 OR.
        assert_eq!(nl.area(&lib), 2.0 * 16.0 + 3.0 * 32.0);
    }

    #[test]
    fn single_literal_is_wire() {
        let mut nl = Netlist::new(signals(2));
        let mut m = Mapper::new();
        let root = m.map_expr(&mut nl, &Expr::Lit(0, true));
        nl.set_driver(SignalId(1), root).unwrap();
        assert!(nl.is_wire(SignalId(1)));
        assert_eq!(nl.area(&Library::default()), 0.0);
    }

    #[test]
    fn constants_map() {
        let mut nl = Netlist::new(signals(2));
        let mut m = Mapper::new();
        let root = m.map_expr(&mut nl, &Expr::Const(false));
        nl.set_driver(SignalId(1), root).unwrap();
        assert_eq!(nl.next_code(0b11) & 0b10, 0);
    }
}
