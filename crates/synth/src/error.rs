//! Errors for the synthesis back-end.

use std::fmt;

use reshuffle_sg::SgError;

/// Errors produced during logic synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The state graph violates CSC for the named signal; logic cannot
    /// be derived (run CSC resolution first).
    CscViolation {
        /// Signal whose next-state function is ill-defined.
        signal: String,
        /// Number of conflicting codes.
        conflicts: usize,
    },
    /// CSC resolution gave up: no insertion candidate improved coding.
    CscResolutionFailed {
        /// Conflicts remaining when the search stalled.
        remaining: usize,
        /// Signals inserted before stalling.
        inserted: usize,
    },
    /// An error from state-graph analysis.
    Sg(SgError),
    /// The implementation failed verification against the state graph.
    VerificationFailed(String),
    /// A malformed request (described in the message).
    Invalid(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::CscViolation { signal, conflicts } => write!(
                f,
                "signal `{signal}` has {conflicts} CSC-conflicting codes; resolve CSC first"
            ),
            SynthError::CscResolutionFailed {
                remaining,
                inserted,
            } => write!(
                f,
                "CSC resolution stalled with {remaining} conflicts after inserting {inserted} signals"
            ),
            SynthError::Sg(e) => write!(f, "{e}"),
            SynthError::VerificationFailed(m) => write!(f, "implementation verification failed: {m}"),
            SynthError::Invalid(m) => write!(f, "invalid synthesis request: {m}"),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Sg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SgError> for SynthError {
    fn from(e: SgError) -> Self {
        SynthError::Sg(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, SynthError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SynthError::CscViolation {
            signal: "ack".into(),
            conflicts: 2,
        };
        assert!(e.to_string().contains("ack"));
        let e = SynthError::VerificationFailed("state 3".into());
        assert!(e.to_string().contains("state 3"));
    }
}
