//! CSC resolution by state-signal insertion.
//!
//! petrify resolves CSC with region-based bisection of the state graph;
//! we implement the documented substitution (DESIGN.md, substitution 3):
//! a search over STG-level *serial transition insertions*. A candidate
//! inserts `csc_k+` in series after event `x` and `csc_k-` after event
//! `y` (never delaying input transitions); it is kept if the resulting
//! STG is consistent, speed-independent, interface-preserving by
//! construction, and strictly reduces the number of CSC conflicts.
//! Candidates are ranked by (remaining conflicts, literal estimate).

use reshuffle_petri::structural::insert_series_transition;
use reshuffle_petri::{Polarity, SignalKind, Stg, TransitionId};
use reshuffle_sg::csc::{analyze_csc, CscReport};
use reshuffle_sg::props::speed_independence;
use reshuffle_sg::{build_state_graph, StateGraph};

use crate::error::{Result, SynthError};
use crate::func::literal_estimate;

/// Result of CSC resolution.
#[derive(Debug, Clone)]
pub struct CscResolution {
    /// The transformed STG with inserted state signals.
    pub stg: Stg,
    /// Its (conflict-free) state graph.
    pub sg: StateGraph,
    /// Names of the inserted internal signals.
    pub inserted: Vec<String>,
    /// Feasible insertion candidates evaluated across all rounds — the
    /// search-effort counter the facade surfaces as resolve-stage
    /// diagnostics (0 when the input already had CSC).
    pub tried: usize,
}

/// Options controlling the insertion search.
#[derive(Debug, Clone)]
pub struct CscOptions {
    /// Maximum number of state signals to insert.
    pub max_signals: usize,
    /// How many least-conflict candidates get an exact literal estimate.
    pub rank_pool: usize,
}

impl Default for CscOptions {
    fn default() -> Self {
        CscOptions {
            max_signals: 4,
            rank_pool: 12,
        }
    }
}

/// Resolves CSC conflicts of `stg` by inserting internal state signals.
///
/// Returns the transformed STG (unchanged if it already has CSC).
///
/// # Errors
///
/// * [`SynthError::Sg`] if the input STG cannot be built into a state
///   graph at all;
/// * [`SynthError::CscResolutionFailed`] if no insertion reduces the
///   conflict count or the signal budget is exhausted.
pub fn resolve_csc(stg: &Stg, opts: &CscOptions) -> Result<CscResolution> {
    let sg = build_state_graph(stg)?;
    resolve_csc_from(stg, sg, opts)
}

/// [`resolve_csc`] for callers that already built the specification's
/// state graph (`sg` must be the state graph of `stg`); avoids
/// rebuilding it, which dominates on concurrent specs.
///
/// # Errors
///
/// See [`resolve_csc`].
pub fn resolve_csc_from(stg: &Stg, sg: StateGraph, opts: &CscOptions) -> Result<CscResolution> {
    let analysis = analyze_csc(&sg);
    resolve_csc_analyzed(stg, sg, &analysis, opts)
}

/// [`resolve_csc_from`] for callers that already analyzed the state
/// graph's coding (`analysis` must be `analyze_csc(&sg)`); the resolver
/// never re-analyzes a graph it was handed an analysis for — each STG
/// in the search is analyzed exactly once.
///
/// # Errors
///
/// See [`resolve_csc`].
pub fn resolve_csc_analyzed(
    stg: &Stg,
    sg: StateGraph,
    analysis: &CscReport,
    opts: &CscOptions,
) -> Result<CscResolution> {
    let mut current = stg.clone();
    let mut sg = sg;
    let mut conflicts = analysis.num_csc_conflicts();
    let mut inserted: Vec<String> = Vec::new();
    let mut tried = 0usize;
    loop {
        if conflicts == 0 {
            return Ok(CscResolution {
                stg: current,
                sg,
                inserted,
                tried,
            });
        }
        if inserted.len() >= opts.max_signals {
            return Err(SynthError::CscResolutionFailed {
                remaining: conflicts,
                inserted: inserted.len(),
            });
        }
        let name = format!("csc{}", inserted.len());
        let (best, round_tried) = best_insertion(&current, &name, conflicts, opts);
        tried += round_tried;
        match best {
            Some((stg2, sg2, remaining)) => {
                current = stg2;
                sg = sg2;
                conflicts = remaining;
                inserted.push(name);
            }
            None => {
                return Err(SynthError::CscResolutionFailed {
                    remaining: conflicts,
                    inserted: inserted.len(),
                })
            }
        }
    }
}

/// Tries every (x, y) insertion pair; returns the best strictly-improving
/// candidate together with its remaining conflict count (so the caller
/// never re-analyzes the graph it picked), plus the number of feasible
/// candidates evaluated this round.
fn best_insertion(
    stg: &Stg,
    signal_name: &str,
    current_conflicts: usize,
    opts: &CscOptions,
) -> (Option<(Stg, StateGraph, usize)>, usize) {
    let transitions: Vec<TransitionId> = stg.transitions().collect();
    // Phase 1: collect feasible candidates with their conflict counts.
    let mut tried = 0usize;
    let mut feasible: Vec<(usize, Stg, StateGraph)> = Vec::new();
    for &tx in &transitions {
        for &ty in &transitions {
            if tx == ty {
                continue;
            }
            let Some(cand) = try_insertion(stg, signal_name, tx, ty) else {
                continue;
            };
            let Ok(sg2) = build_state_graph(&cand) else {
                continue;
            };
            if !speed_independence(&sg2).is_speed_independent() {
                continue;
            }
            tried += 1;
            let c = analyze_csc(&sg2).num_csc_conflicts();
            if c < current_conflicts {
                feasible.push((c, cand, sg2));
            }
        }
    }
    if feasible.is_empty() {
        return (None, tried);
    }
    // Phase 2: among the least-conflict pool, rank by literal estimate.
    feasible.sort_by_key(|(c, _, _)| *c);
    let best_c = feasible[0].0;
    let pool: Vec<(usize, Stg, StateGraph)> = feasible
        .into_iter()
        .filter(|(c, _, _)| *c == best_c)
        .take(opts.rank_pool)
        .collect();
    let best = pool
        .into_iter()
        .min_by_key(|(_, _, sg2)| literal_estimate(sg2))
        .map(|(c, stg2, sg2)| (stg2, sg2, c));
    (best, tried)
}

/// Builds the candidate STG with `name+` inserted after `tx` and `name-`
/// after `ty`; `None` if the structural insertion is infeasible.
fn try_insertion(stg: &Stg, name: &str, tx: TransitionId, ty: TransitionId) -> Option<Stg> {
    let mut cand = stg.clone();
    let sig = cand.add_signal(name, SignalKind::Internal).ok()?;
    let not_input = |g: &Stg, t: TransitionId| !g.is_input_transition(t);
    insert_series_transition(&mut cand, tx, sig, Polarity::Rise, not_input).ok()?;
    insert_series_transition(&mut cand, ty, sig, Polarity::Fall, not_input).ok()?;
    Some(cand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complexgate::synthesize_complex_gates;
    use crate::verify::verify_against_sg;
    use reshuffle_petri::parse_g;

    const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    /// Fully sequential LR handshake (the Q-module reshuffling of
    /// Table 1): one CSC conflict, resolvable by one state signal.
    const QMODULE: &str = "\
.model qmodule
.inputs li ri
.outputs lo ro
.graph
li+ ro+
ro+ ri+
ri+ ro-
ro- ri-
ri- lo+
lo+ li-
li- lo-
lo- li+
.marking { <lo-,li+> }
.end
";

    #[test]
    fn qmodule_resolved_with_one_signal() {
        let stg = parse_g(QMODULE).unwrap();
        let sg0 = reshuffle_sg::build_state_graph(&stg).unwrap();
        assert!(analyze_csc(&sg0).num_csc_conflicts() > 0);
        let res = resolve_csc(&stg, &CscOptions::default()).unwrap();
        assert_eq!(res.inserted.len(), 1);
        assert_eq!(analyze_csc(&res.sg).num_csc_conflicts(), 0);
        assert!(res.tried > 0, "search effort not reported");
        // The resolved graph must synthesize and verify.
        let imp = synthesize_complex_gates(&res.sg).unwrap();
        verify_against_sg(&res.sg, &imp.netlist).unwrap();
    }

    #[test]
    fn fig1_conflict_is_unresolvable_by_insertion() {
        // The conflicting states of Fig. 1 are separated by input-only
        // paths (Req-, Req+), so no interface-preserving insertion can
        // distinguish them; the search must fail cleanly.
        let stg = parse_g(FIG1).unwrap();
        let e = resolve_csc(&stg, &CscOptions::default()).unwrap_err();
        assert!(matches!(
            e,
            SynthError::CscResolutionFailed { inserted: 0, .. }
        ));
    }

    #[test]
    fn conflict_free_is_identity() {
        let src = "\
.model ok
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        let res = resolve_csc(&stg, &CscOptions::default()).unwrap();
        assert!(res.inserted.is_empty());
        assert_eq!(res.sg.num_states(), 4);
        assert_eq!(res.tried, 0, "conflict-free input must not search");
    }

    #[test]
    fn threaded_analysis_matches_fresh_resolution() {
        // resolve_csc_from must be exactly resolve_csc_analyzed on the
        // shared analysis — same insertions, isomorphic result.
        let stg = parse_g(QMODULE).unwrap();
        let sg1 = reshuffle_sg::build_state_graph(&stg).unwrap();
        let sg2 = sg1.clone();
        let analysis = analyze_csc(&sg1);
        let a = resolve_csc_from(&stg, sg1, &CscOptions::default()).unwrap();
        let b = resolve_csc_analyzed(&stg, sg2, &analysis, &CscOptions::default()).unwrap();
        assert_eq!(a.inserted, b.inserted);
        assert_eq!(a.sg.fingerprint(), b.sg.fingerprint());
    }

    #[test]
    fn resolver_consumes_the_threaded_analysis() {
        // Handing the resolver an (incorrect) conflict-free report for a
        // conflicted graph must short-circuit the search: this pins that
        // the entry analysis is taken from the caller, not recomputed —
        // i.e. `analyze_csc` runs once per graph across the pipeline.
        let stg = parse_g(QMODULE).unwrap();
        let sg = reshuffle_sg::build_state_graph(&stg).unwrap();
        assert!(analyze_csc(&sg).num_csc_conflicts() > 0);
        let fake = CscReport::default();
        let r = resolve_csc_analyzed(&stg, sg, &fake, &CscOptions::default()).unwrap();
        assert!(r.inserted.is_empty(), "resolver re-ran the analysis");
    }

    #[test]
    fn budget_zero_fails_on_conflicts() {
        let stg = parse_g(FIG1).unwrap();
        let e = resolve_csc(
            &stg,
            &CscOptions {
                max_signals: 0,
                rank_pool: 4,
            },
        )
        .unwrap_err();
        assert!(matches!(e, SynthError::CscResolutionFailed { .. }));
    }
}
