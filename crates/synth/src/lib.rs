//! Speed-independent logic synthesis back-end.
//!
//! Given a (CSC-satisfying) state graph, this crate derives and
//! minimizes next-state functions, resolves CSC conflicts by state
//! signal insertion when needed, maps the logic onto a 2-input gate
//! library, and verifies the mapped netlist against the specification:
//!
//! * [`derive_all_functions`] / [`literal_estimate`] — next-state logic
//!   (the estimate also drives the concurrency-reduction cost function);
//! * [`resolve_csc`] — state-signal insertion (DESIGN.md substitution 3);
//! * [`synthesize_complex_gates`] — complex-gate style (Fig. 3(d));
//! * [`synthesize_gc`] — generalized-C style (Fig. 3(c));
//! * [`Library`]/[`Netlist`] — gate library, mapped circuits, area and
//!   network delays;
//! * [`verify_against_sg`] — implementation-vs-specification check.
//!
//! # Example
//!
//! ```
//! use reshuffle_petri::parse_g;
//! use reshuffle_sg::build_state_graph;
//! use reshuffle_synth::{synthesize_complex_gates, verify_against_sg, Library};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stg = parse_g(
//!     ".model buf\n.inputs a\n.outputs b\n.graph\n\
//!      a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
//! )?;
//! let sg = build_state_graph(&stg)?;
//! let imp = synthesize_complex_gates(&sg)?;
//! verify_against_sg(&sg, &imp.netlist)?;
//! assert_eq!(imp.netlist.area(&Library::default()), 0.0); // a wire
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod complexgate;
mod csc_insert;
mod error;
mod func;
mod gc;
pub mod library;
pub mod mapping;
pub mod netlist;
pub mod verify;

pub use complexgate::{synthesize_complex_gates, ComplexGateImpl};
pub use csc_insert::{
    resolve_csc, resolve_csc_analyzed, resolve_csc_from, CscOptions, CscResolution,
};
pub use error::{Result, SynthError};
pub use func::{
    derive_all_functions, derive_function, literal_estimate, ConflictPolicy, SignalFunction,
};
pub use gc::{derive_gc_function, synthesize_gc, GcFunction, GcImpl};
pub use library::{GateType, Library};
pub use netlist::{Netlist, Node, NodeId};
pub use verify::{check_against_sg, verify_against_sg, verify_complete, Mismatch};
