//! Implementation verification: does a netlist realize the state graph?
//!
//! For speed-independent complex-gate (and gC) implementations the
//! defining correctness condition is that, in every reachable state,
//! the next value computed by each signal's network equals the implied
//! value of that signal (rise-excited ⇒ 1, fall-excited ⇒ 0, stable ⇒
//! current value). This catches minimizer, factoring and mapping bugs.

use reshuffle_petri::{SignalId, SignalKind};
use reshuffle_sg::nextstate::implied_value;
use reshuffle_sg::StateGraph;

use crate::error::{Result, SynthError};
use crate::netlist::Netlist;

/// A single verification mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// State where the netlist disagrees with the specification.
    pub state: reshuffle_sg::StateId,
    /// The signal computed wrongly.
    pub signal: String,
    /// Value the specification implies.
    pub expected: bool,
    /// Value the netlist computes.
    pub got: bool,
}

/// Checks the netlist against every reachable state of the graph.
///
/// Returns all mismatches (empty = correct).
pub fn check_against_sg(sg: &StateGraph, netlist: &Netlist) -> Vec<Mismatch> {
    let mut out = Vec::new();
    for s in sg.state_ids() {
        let code = sg.code(s);
        let next = netlist.next_code(code);
        for i in 0..sg.num_signals() {
            let sig = SignalId::from_index(i);
            if sg.signal(sig).kind == SignalKind::Input {
                continue;
            }
            if netlist.driver(sig).is_none() {
                continue;
            }
            let expected = implied_value(sg, s, sig);
            let got = (next >> i) & 1 == 1;
            if expected != got {
                out.push(Mismatch {
                    state: s,
                    signal: sg.signal(sig).name.clone(),
                    expected,
                    got,
                });
            }
        }
    }
    out
}

/// Like [`check_against_sg`] but returns an error on the first mismatch.
///
/// # Errors
///
/// [`SynthError::VerificationFailed`] describing the first mismatch.
pub fn verify_against_sg(sg: &StateGraph, netlist: &Netlist) -> Result<()> {
    let mismatches = check_against_sg(sg, netlist);
    match mismatches.first() {
        None => Ok(()),
        Some(m) => Err(SynthError::VerificationFailed(format!(
            "state {} ({}): signal `{}` computes {} but specification implies {}",
            m.state,
            sg.render_state(m.state),
            m.signal,
            m.got as u8,
            m.expected as u8
        ))),
    }
}

/// Verifies that every driven signal is *complete*: all non-input
/// signals of the graph have drivers in the netlist.
///
/// # Errors
///
/// [`SynthError::VerificationFailed`] naming the first undriven signal.
pub fn verify_complete(sg: &StateGraph, netlist: &Netlist) -> Result<()> {
    for i in 0..sg.num_signals() {
        let sig = SignalId::from_index(i);
        if sg.signal(sig).kind.is_noninput() && netlist.driver(sig).is_none() {
            return Err(SynthError::VerificationFailed(format!(
                "non-input signal `{}` has no driver",
                sg.signal(sig).name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complexgate::synthesize_complex_gates;
    use crate::gc::synthesize_gc;
    use crate::library::GateType;
    use crate::netlist::Node;
    use reshuffle_petri::parse_g;
    use reshuffle_sg::build_state_graph;

    const CELEM: &str = "\
.model celem
.inputs a1 a2
.outputs b
.graph
a1+ b+
a2+ b+
b+ a1- a2-
a1- b-
a2- b-
b- a1+ a2+
.marking { <b-,a1+> <b-,a2+> }
.end
";

    #[test]
    fn complex_gate_and_gc_both_verify() {
        let sg = build_state_graph(&parse_g(CELEM).unwrap()).unwrap();
        let cg = synthesize_complex_gates(&sg).unwrap();
        verify_against_sg(&sg, &cg.netlist).unwrap();
        verify_complete(&sg, &cg.netlist).unwrap();
        let gc = synthesize_gc(&sg).unwrap();
        verify_against_sg(&sg, &gc.netlist).unwrap();
        verify_complete(&sg, &gc.netlist).unwrap();
    }

    #[test]
    fn wrong_netlist_caught() {
        let sg = build_state_graph(&parse_g(CELEM).unwrap()).unwrap();
        // Drive b with a1 AND NOT a2 — wrong.
        let mut nl = Netlist::new(sg.signals().to_vec());
        let a1 = nl.add(Node::SignalRef(SignalId(0)));
        let a2 = nl.add(Node::SignalRef(SignalId(1)));
        let na2 = nl.add(Node::Gate(GateType::Inv, vec![a2]));
        let and = nl.add(Node::Gate(GateType::And2, vec![a1, na2]));
        let b = sg.signal_by_name("b").unwrap();
        nl.set_driver(b, and).unwrap();
        let ms = check_against_sg(&sg, &nl);
        assert!(!ms.is_empty());
        assert!(verify_against_sg(&sg, &nl).is_err());
    }

    #[test]
    fn undriven_signal_caught() {
        let sg = build_state_graph(&parse_g(CELEM).unwrap()).unwrap();
        let nl = Netlist::new(sg.signals().to_vec());
        assert!(verify_complete(&sg, &nl).is_err());
        // But an empty netlist trivially passes value checks.
        assert!(check_against_sg(&sg, &nl).is_empty());
    }
}
