//! Deriving minimized next-state functions from a state graph.

use reshuffle_logic::{complement, minimize, minimize_codes, Cover};
use reshuffle_petri::SignalId;
use reshuffle_sg::nextstate::{next_state_table, NextStateTable};
use reshuffle_sg::StateGraph;

use crate::error::{Result, SynthError};

/// Above this many reachable codes per table the cube-list espresso
/// path (quadratic-or-worse in the minterm count) is replaced by the
/// BDD-backed interval minimizer [`minimize_codes`], whose cost tracks
/// the decision-diagram sizes instead. The corpus-sized functions stay
/// on the cube-list path so their covers — and the literal counts
/// pinned in `BENCH_tables.json` — are bit-for-bit unchanged.
const SCALABLE_MINTERM_THRESHOLD: usize = 4096;

/// The minimized next-state function of one signal.
#[derive(Debug, Clone)]
pub struct SignalFunction {
    /// The signal implemented.
    pub signal: SignalId,
    /// Minimized cover of the next-state function.
    pub cover: Cover,
    /// The raw on/off/conflict partition it was derived from.
    pub table: NextStateTable,
}

impl SignalFunction {
    /// Literal count of the minimized cover.
    pub fn literals(&self) -> u32 {
        self.cover.num_literals()
    }

    /// True if the function is a single positive literal of another
    /// signal (implementable as a plain wire).
    pub fn is_wire(&self) -> bool {
        self.cover.len() == 1 && {
            let c = self.cover.cubes()[0];
            c.num_literals() == 1 && c.pos.count_ones() == 1
        }
    }
}

/// How CSC conflicts are treated when deriving functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Fail with [`SynthError::CscViolation`] (synthesis).
    Reject,
    /// Treat conflicting codes as don't-cares (cost estimation — the
    /// paper notes estimates are inaccurate under CSC conflicts).
    DontCare,
}

/// Derives and minimizes the next-state function of `signal`.
///
/// The don't-care set is the binary codes reached by no state (plus
/// conflicting codes under [`ConflictPolicy::DontCare`]).
///
/// # Errors
///
/// [`SynthError::CscViolation`] if the signal has conflicting codes and
/// `policy` is [`ConflictPolicy::Reject`].
pub fn derive_function(
    sg: &StateGraph,
    signal: SignalId,
    policy: ConflictPolicy,
) -> Result<SignalFunction> {
    let table = next_state_table(sg, signal);
    if !table.conflicting.is_empty() && policy == ConflictPolicy::Reject {
        return Err(SynthError::CscViolation {
            signal: sg.signal(signal).name.clone(),
            conflicts: table.conflicting.len(),
        });
    }
    let nv = table.num_vars;
    let reachable = table.on.len() + table.off.len() + table.conflicting.len();
    let cover = if reachable <= SCALABLE_MINTERM_THRESHOLD {
        let on = Cover::from_minterms(nv, &table.on);
        let off = Cover::from_minterms(nv, &table.off);
        // dc = everything not in on or off (unreachable codes + conflicts).
        let dc = complement(&on.or(&off));
        minimize(&on, &dc)
    } else {
        // Million-state tables: same contract (on ⊆ f ⊆ on ∪ dc),
        // derived through BDDs so the cost does not explode with the
        // state count. Conflicting codes are in neither list, i.e.
        // don't-care — identical to the cube-list path above.
        minimize_codes(nv, &table.on, &table.off)
    };
    Ok(SignalFunction {
        signal,
        cover,
        table,
    })
}

/// Derives functions for all non-input signals.
///
/// # Errors
///
/// Propagates the first [`SynthError::CscViolation`] under
/// [`ConflictPolicy::Reject`].
pub fn derive_all_functions(
    sg: &StateGraph,
    policy: ConflictPolicy,
) -> Result<Vec<SignalFunction>> {
    let mut out = Vec::new();
    for i in 0..sg.num_signals() {
        let s = SignalId::from_index(i);
        if sg.signal(s).kind.is_noninput() {
            out.push(derive_function(sg, s, policy)?);
        }
    }
    Ok(out)
}

/// Total literal count over all non-input signals — the logic-complexity
/// estimate used by the reduction search (conflicting codes as DC).
pub fn literal_estimate(sg: &StateGraph) -> u32 {
    derive_all_functions(sg, ConflictPolicy::DontCare)
        .map(|fs| fs.iter().map(SignalFunction::literals).sum())
        .unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::parse_g;
    use reshuffle_sg::build_state_graph;

    const PIPELINE: &str = "\
.model ok
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn buffer_becomes_wire() {
        let sg = build_state_graph(&parse_g(PIPELINE).unwrap()).unwrap();
        let b = sg.signal_by_name("b").unwrap();
        let f = derive_function(&sg, b, ConflictPolicy::Reject).unwrap();
        // b's next value equals a: a single positive literal.
        assert!(f.is_wire(), "{}", f.cover);
        assert_eq!(f.literals(), 1);
    }

    #[test]
    fn csc_violation_rejected() {
        const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        let ack = sg.signal_by_name("Ack").unwrap();
        let e = derive_function(&sg, ack, ConflictPolicy::Reject).unwrap_err();
        assert!(matches!(e, SynthError::CscViolation { .. }));
        // Estimation mode still succeeds.
        let f = derive_function(&sg, ack, ConflictPolicy::DontCare).unwrap();
        assert!(f.literals() <= 2);
    }

    #[test]
    fn c_element_function() {
        let src = "\
.model celem
.inputs a1 a2
.outputs b
.graph
a1+ b+
a2+ b+
b+ a1- a2-
a1- b-
a2- b-
b- a1+ a2+
.marking { <b-,a1+> <b-,a2+> }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let b = sg.signal_by_name("b").unwrap();
        let f = derive_function(&sg, b, ConflictPolicy::Reject).unwrap();
        // Classic majority: b' = a1 a2 + b (a1 + a2): 2-3 cubes.
        assert!(f.cover.len() <= 3, "{}", f.cover);
        // Must evaluate correctly on every reachable state.
        for s in sg.state_ids() {
            let implied = reshuffle_sg::nextstate::implied_value(&sg, s, b);
            assert_eq!(f.cover.covers_point(sg.code(s)), implied, "state {s}");
        }
        let est = literal_estimate(&sg);
        assert!((4..=8).contains(&est), "{est}");
    }
}
