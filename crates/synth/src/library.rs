//! The gate library: areas and delays used for technology mapping.
//!
//! The paper reports areas "in units" of its standard-cell library and
//! never publishes the cells; we define our own library with areas
//! roughly proportional to transistor counts (documented in DESIGN.md,
//! substitution 1). Experiments compare *ratios* between
//! implementations, which are library-stable.

/// Combinational and sequential primitives available to the mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateType {
    /// Inverter.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input Muller C-element (sequential).
    C2,
}

impl GateType {
    /// Number of logic inputs.
    pub fn arity(self) -> usize {
        match self {
            GateType::Inv => 1,
            _ => 2,
        }
    }

    /// True for state-holding gates.
    pub fn is_sequential(self) -> bool {
        matches!(self, GateType::C2)
    }
}

/// Area and delay numbers for every primitive.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    /// Area of an inverter.
    pub inv_area: f64,
    /// Area of a 2-input AND/OR.
    pub and2_area: f64,
    /// Area of a 2-input C-element.
    pub c2_area: f64,
    /// Area of the set/reset latch core of a generalized C-element.
    pub gc_core_area: f64,
    /// Delay of a combinational gate (in time units).
    pub comb_delay: f64,
    /// Delay of a sequential gate.
    pub seq_delay: f64,
}

impl Library {
    /// Area of one gate.
    pub fn area(&self, g: GateType) -> f64 {
        match g {
            GateType::Inv => self.inv_area,
            GateType::And2 | GateType::Or2 => self.and2_area,
            GateType::C2 => self.c2_area,
        }
    }

    /// Delay of one gate.
    pub fn delay(&self, g: GateType) -> f64 {
        if g.is_sequential() {
            self.seq_delay
        } else {
            self.comb_delay
        }
    }
}

impl Default for Library {
    /// The default library: inverter 16, 2-input gates 32, C-element 48,
    /// gC latch core 32 — areas in the same spirit as the paper's units
    /// (wire = 0). Delays default to the Table 1/2 model (every gate
    /// network counts 1; see `reshuffle-timing` for event-level models).
    fn default() -> Self {
        Library {
            inv_area: 16.0,
            and2_area: 32.0,
            c2_area: 48.0,
            gc_core_area: 32.0,
            comb_delay: 1.0,
            seq_delay: 1.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let lib = Library::default();
        assert_eq!(lib.area(GateType::Inv), 16.0);
        assert_eq!(lib.area(GateType::And2), lib.area(GateType::Or2));
        assert!(lib.area(GateType::C2) > lib.area(GateType::And2));
        assert!(GateType::C2.is_sequential());
        assert!(!GateType::And2.is_sequential());
        assert_eq!(GateType::Inv.arity(), 1);
        assert_eq!(GateType::C2.arity(), 2);
        assert_eq!(lib.delay(GateType::C2), 1.5);
        assert_eq!(lib.delay(GateType::Inv), 1.0);
    }
}
