//! Generalized C-element (gC) synthesis: per signal, a set network and
//! a reset network around a state-holding latch.
//!
//! The set function must be 1 exactly on the excitation region of the
//! rising transition (don't care wherever the signal is high); dually
//! for reset. This is the implementation style of the paper's Fig. 3(c).

use reshuffle_logic::{complement, factor, minimize, Cover};
use reshuffle_petri::{Polarity, SignalEdge, SignalId, SignalKind};
use reshuffle_sg::StateGraph;

use crate::error::{Result, SynthError};
use crate::mapping::Mapper;
use crate::netlist::{Netlist, Node};

/// The minimized set/reset pair for one signal.
#[derive(Debug, Clone)]
pub struct GcFunction {
    /// The implemented signal.
    pub signal: SignalId,
    /// Minimized set cover (turn-on condition).
    pub set: Cover,
    /// Minimized reset cover (turn-off condition).
    pub reset: Cover,
}

impl GcFunction {
    /// Combined literal count of both networks.
    pub fn literals(&self) -> u32 {
        self.set.num_literals() + self.reset.num_literals()
    }
}

/// A synthesized generalized-C implementation.
#[derive(Debug, Clone)]
pub struct GcImpl {
    /// The mapped netlist.
    pub netlist: Netlist,
    /// Per-signal set/reset functions.
    pub functions: Vec<GcFunction>,
}

/// Derives the minimized set and reset covers of `signal`.
///
/// # Errors
///
/// [`SynthError::CscViolation`] if some code both excites and stabilizes
/// the signal at the same level (a CSC conflict visible to this signal).
pub fn derive_gc_function(sg: &StateGraph, signal: SignalId) -> Result<GcFunction> {
    let nv = sg.num_signals();
    let rise = SignalEdge {
        signal,
        polarity: Polarity::Rise,
    };
    let fall = SignalEdge {
        signal,
        polarity: Polarity::Fall,
    };
    let mut set_on = Vec::new();
    let mut set_off = Vec::new();
    let mut reset_on = Vec::new();
    let mut reset_off = Vec::new();
    for s in sg.state_ids() {
        let code = sg.code(s);
        if sg.value(s, signal) {
            if sg.enables_edge(s, fall) {
                reset_on.push(code);
            } else {
                reset_off.push(code);
            }
        } else if sg.enables_edge(s, rise) {
            set_on.push(code);
        } else {
            set_off.push(code);
        }
    }
    for (name, on, off) in [("set", &set_on, &set_off), ("reset", &reset_on, &reset_off)] {
        let mut overlap = 0;
        for c in on.iter() {
            if off.contains(c) {
                overlap += 1;
            }
        }
        if overlap > 0 {
            let _ = name;
            return Err(SynthError::CscViolation {
                signal: sg.signal(signal).name.clone(),
                conflicts: overlap,
            });
        }
    }
    let set_on = Cover::from_minterms(nv, &set_on);
    let set_dc = complement(&set_on.or(&Cover::from_minterms(nv, &set_off)));
    let reset_on = Cover::from_minterms(nv, &reset_on);
    let reset_dc = complement(&reset_on.or(&Cover::from_minterms(nv, &reset_off)));
    Ok(GcFunction {
        signal,
        set: minimize(&set_on, &set_dc),
        reset: minimize(&reset_on, &reset_dc),
    })
}

/// Synthesizes a generalized-C circuit for every non-input signal.
///
/// Signals whose set/reset pair degenerates to a wire (`set = x`,
/// `reset = x'`) are mapped as plain wires.
///
/// # Errors
///
/// Propagates CSC violations from [`derive_gc_function`].
pub fn synthesize_gc(sg: &StateGraph) -> Result<GcImpl> {
    let mut netlist = Netlist::new(sg.signals().to_vec());
    let mut mapper = Mapper::new();
    let mut functions = Vec::new();
    for i in 0..sg.num_signals() {
        let s = SignalId::from_index(i);
        if sg.signal(s).kind == SignalKind::Input {
            continue;
        }
        let f = derive_gc_function(sg, s)?;
        // Wire detection: set = x (single positive literal), reset = x'.
        let wire_var = wire_pair(&f.set, &f.reset);
        if let Some(v) = wire_var {
            let r = mapper.signal_ref(&mut netlist, v);
            netlist.set_driver(s, r)?;
        } else {
            let set_root = mapper.map_expr(&mut netlist, &factor(&f.set));
            let reset_root = mapper.map_expr(&mut netlist, &factor(&f.reset));
            let latch = netlist.add(Node::GcLatch {
                set: set_root,
                reset: reset_root,
                holds: s,
            });
            netlist.set_driver(s, latch)?;
        }
        functions.push(f);
    }
    Ok(GcImpl { netlist, functions })
}

/// If `set` is the single literal `x` and `reset` is `x'`, returns `x`.
fn wire_pair(set: &Cover, reset: &Cover) -> Option<usize> {
    if set.len() != 1 || reset.len() != 1 {
        return None;
    }
    let s = set.cubes()[0];
    let r = reset.cubes()[0];
    if s.num_literals() == 1 && r.num_literals() == 1 && s.pos != 0 && s.pos == r.neg {
        Some(s.pos.trailing_zeros() as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use reshuffle_petri::parse_g;
    use reshuffle_sg::build_state_graph;

    #[test]
    fn buffer_is_wire() {
        let src = "\
.model ok
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let imp = synthesize_gc(&sg).unwrap();
        let b = sg.signal_by_name("b").unwrap();
        assert!(imp.netlist.is_wire(b));
        assert_eq!(imp.netlist.area(&Library::default()), 0.0);
    }

    #[test]
    fn c_element_gets_latch() {
        let src = "\
.model celem
.inputs a1 a2
.outputs b
.graph
a1+ b+
a2+ b+
b+ a1- a2-
a1- b-
a2- b-
b- a1+ a2+
.marking { <b-,a1+> <b-,a2+> }
.end
";
        let sg = build_state_graph(&parse_g(src).unwrap()).unwrap();
        let imp = synthesize_gc(&sg).unwrap();
        let b = sg.signal_by_name("b").unwrap();
        let f = &imp.functions[0];
        // set = a1 a2, reset = a1' a2'.
        assert_eq!(f.set.num_literals(), 2, "set={}", f.set);
        assert_eq!(f.reset.num_literals(), 2, "reset={}", f.reset);
        // The netlist holds state: evaluate across the cycle.
        for s in sg.state_ids() {
            let next = imp.netlist.next_code(sg.code(s));
            let want = reshuffle_sg::nextstate::implied_value(&sg, s, b);
            assert_eq!((next >> b.index()) & 1 == 1, want, "state {s}");
        }
    }

    #[test]
    fn csc_conflict_detected() {
        const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";
        let sg = build_state_graph(&parse_g(FIG1).unwrap()).unwrap();
        assert!(synthesize_gc(&sg).is_err());
    }
}
