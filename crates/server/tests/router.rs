//! End-to-end router-tier tests over real sockets: consistent routing
//! that preserves fleet-wide single-flight coalescing, the `/stats`
//! and `/metrics` rollups, trace propagation across the hop, bounded
//! failover when a backend dies, and the N→N+1 reshard procedure
//! (journals replay anywhere; moved keys re-execute cleanly).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use reshuffle::{source_cache_key, PipelineOptions};
use reshuffle_bench::examples::{scaled_pipeline, TOGGLE_G, XYZ_G};
use reshuffle_bench::json::{self, Json};
use reshuffle_server::client::{exchange_once, ClientResponse};
use reshuffle_server::{Router, RouterConfig, Server, ServerConfig};

fn synth_body(g: &str) -> String {
    Json::obj(vec![("g", Json::Str(g.to_string()))]).render()
}

/// One `Connection: close` POST of `body` to `/synthesize`, with
/// optional extra header lines (`"Name: value\r\n"`).
fn post(addr: &str, body: &str, extra: &str) -> ClientResponse {
    let raw = format!(
        "POST /synthesize HTTP/1.1\r\nConnection: close\r\n{extra}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    exchange_once(addr, raw.as_bytes()).unwrap()
}

fn get(addr: &str, path: &str) -> ClientResponse {
    exchange_once(
        addr,
        format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .unwrap()
}

fn stats(addr: &str) -> Json {
    let response = get(addr, "/stats");
    assert_eq!(response.status, 200, "{}", response.body_str());
    json::parse(&response.body_str()).expect("stats must be valid JSON")
}

fn stat(doc: &Json, key: &str) -> f64 {
    doc.get(key)
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("missing numeric stat {key}: {}", doc.render()))
}

/// A per-test temp file path (no tempdir crate in the container).
fn temp_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "reshuffle-router-test-{}-{}-{tag}.cache",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

fn start_fleet(n: usize) -> (Vec<Server>, Router) {
    let backends: Vec<Server> = (0..n)
        .map(|i| Server::start(ServerConfig::new().with_shard_id(i as u64)).unwrap())
        .collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let router = Router::start(RouterConfig::new(addrs)).unwrap();
    (backends, router)
}

fn stop_fleet(backends: Vec<Server>, router: Router) {
    router.stop().unwrap();
    for backend in backends {
        backend.stop().unwrap();
    }
}

#[test]
fn identical_requests_route_to_one_backend_and_coalesce_fleet_wide() {
    let n = 8;
    let (backends, router) = start_fleet(2);
    let addr = router.addr().to_string();
    // A spec big enough that the pipeline takes real wall time, so
    // concurrent arrivals overlap the leader's run.
    let body = Arc::new(synth_body(&scaled_pipeline(7)));
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let (addr, body, barrier) = (addr.clone(), body.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                post(&addr, &body, "")
            })
        })
        .collect();
    let responses: Vec<ClientResponse> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every request succeeded with the identical payload, and — the
    // routing invariant — every one was proxied to the same shard.
    let mut results = Vec::new();
    let mut shards = Vec::new();
    for response in &responses {
        assert_eq!(response.status, 200, "{}", response.body_str());
        let doc = json::parse(&response.body_str()).unwrap();
        results.push(doc.get("result").expect("missing result").render());
        shards.push(
            response
                .header("x-backend")
                .expect("proxied response lost X-Backend")
                .to_string(),
        );
    }
    results.dedup();
    shards.dedup();
    assert_eq!(results.len(), 1, "responses diverged across the fleet");
    assert_eq!(shards.len(), 1, "identical requests split across shards");

    // Fleet-wide single flight: the rollup's totals prove exactly one
    // pipeline execution happened anywhere.
    let doc = stats(&addr);
    let totals = doc.get("totals").expect("no totals in rollup");
    assert_eq!(stat(totals, "executed"), 1.0, "{}", doc.render());
    assert_eq!(
        stat(totals, "coalesced") + stat(totals.get("cache").unwrap(), "hits"),
        (n - 1) as f64,
        "{}",
        doc.render()
    );
    assert_eq!(stat(totals, "synth_requests"), n as f64);
    stop_fleet(backends, router);
}

#[test]
fn stats_rollup_sums_backend_counters_and_names_shards() {
    let (backends, router) = start_fleet(2);
    let addr = router.addr().to_string();
    let specs = [XYZ_G, TOGGLE_G, &scaled_pipeline(2)];
    for spec in &specs {
        // Twice each: one execution, one cache hit, spread by key.
        assert_eq!(post(&addr, &synth_body(spec), "").status, 200);
        assert_eq!(post(&addr, &synth_body(spec), "").status, 200);
    }

    let doc = stats(&addr);
    assert_eq!(doc.get("role").and_then(Json::as_str), Some("router"));
    assert_eq!(stat(&doc, "synth_requests"), 2.0 * specs.len() as f64);

    // The routed array attributes every forward to its shard, summing
    // to the router's own request count.
    let routed = doc.get("routed").and_then(Json::items).unwrap();
    assert_eq!(routed.len(), 2);
    let forwarded: f64 = routed.iter().map(|b| stat(b, "routed")).sum();
    assert_eq!(forwarded, 2.0 * specs.len() as f64);

    // Each backend document carries its role and shard_id, and the
    // totals equal the per-backend sums, member by member.
    let docs = doc.get("backends").and_then(Json::items).unwrap();
    assert_eq!(docs.len(), 2);
    for (i, backend) in docs.iter().enumerate() {
        assert_eq!(backend.get("role").and_then(Json::as_str), Some("backend"));
        assert_eq!(stat(backend, "shard_id"), i as f64);
    }
    let totals = doc.get("totals").unwrap();
    for key in ["synth_requests", "executed", "coalesced"] {
        let sum: f64 = docs.iter().map(|b| stat(b, key)).sum();
        assert_eq!(stat(totals, key), sum, "{key}: {}", doc.render());
    }
    let hit_sum: f64 = docs
        .iter()
        .map(|b| stat(b.get("cache").unwrap(), "hits"))
        .sum();
    assert_eq!(stat(totals.get("cache").unwrap(), "hits"), hit_sum);
    assert_eq!(stat(totals, "executed"), specs.len() as f64);
    assert_eq!(hit_sum, specs.len() as f64);
    stop_fleet(backends, router);
}

#[test]
fn metrics_rollup_merges_fleet_families_and_validates() {
    let (backends, router) = start_fleet(2);
    let addr = router.addr().to_string();
    let specs = [XYZ_G, TOGGLE_G, &scaled_pipeline(2)];
    for spec in &specs {
        assert_eq!(post(&addr, &synth_body(spec), "").status, 200);
    }

    let response = get(&addr, "/metrics");
    assert_eq!(response.status, 200);
    let text = response.body_str();
    let summary = reshuffle_obs::validate(&text)
        .unwrap_or_else(|e| panic!("invalid rollup exposition: {e}\n{text}"));
    // Router-local families, including the labelled per-backend ones.
    for family in [
        "reshuffle_router_requests_total",
        "reshuffle_router_retries_total",
        "reshuffle_routed_total",
        "reshuffle_backend_errors_total",
        "reshuffle_backend_up",
        "reshuffle_router_request_duration_seconds",
    ] {
        assert!(summary.has_family(family), "missing {family}:\n{text}");
    }
    // Merged backend families keep their original names, so one scrape
    // of the router reads like one big backend...
    for family in [
        "reshuffle_synth_requests_total",
        "reshuffle_synth_executed_total",
        "reshuffle_cache_hits_total",
        "reshuffle_request_duration_seconds",
        "reshuffle_stage_duration_seconds",
    ] {
        assert!(
            summary.has_family(family),
            "missing merged {family}:\n{text}"
        );
    }
    // ...with fleet-total values: three executions happened somewhere.
    assert!(
        text.contains(&format!("reshuffle_synth_requests_total {}", specs.len())),
        "{text}"
    );
    assert!(
        text.contains(&format!("reshuffle_synth_executed_total {}", specs.len())),
        "{text}"
    );
    // Per-process identity gauges must not be summed into nonsense.
    assert!(!text.contains("reshuffle_uptime_seconds"), "{text}");
    assert!(!text.contains("reshuffle_shard_id"), "{text}");
    stop_fleet(backends, router);
}

#[test]
fn a_client_trace_id_spans_router_and_backend() {
    use reshuffle_server::{RingSink, SinkHandle};
    let backend_ring = Arc::new(RingSink::new(4096));
    let backend = Server::start(
        ServerConfig::new()
            .with_trace_level(1)
            .with_trace_sink(SinkHandle::new(backend_ring.clone())),
    )
    .unwrap();
    let router_ring = Arc::new(RingSink::new(4096));
    let router = Router::start(
        RouterConfig::new(vec![backend.addr().to_string()])
            .with_trace_level(1)
            .with_trace_sink(SinkHandle::new(router_ring.clone())),
    )
    .unwrap();
    let addr = router.addr().to_string();

    let supplied = "00000000000000ab00000000000000cd";
    let response = post(
        &addr,
        &synth_body(XYZ_G),
        &format!("X-Trace-Id: {supplied}\r\n"),
    );
    assert_eq!(response.status, 200, "{}", response.body_str());
    // The response echoes the supplied id back through the hop...
    assert_eq!(response.header("x-trace-id"), Some(supplied));
    assert_eq!(response.header("x-backend"), Some("0"));
    // ...and both tiers logged spans under it: the router's route span
    // and the backend's request span share one trace.
    let router_lines = router_ring.lines();
    assert!(
        router_lines
            .iter()
            .any(|l| l.contains("\"name\":\"route\"") && l.contains(supplied)),
        "no route span under the trace: {router_lines:#?}"
    );
    let backend_lines = backend_ring.lines();
    assert!(
        backend_lines
            .iter()
            .any(|l| l.contains("\"name\":\"request\"") && l.contains(supplied)),
        "no backend request span under the trace: {backend_lines:#?}"
    );
    router.stop().unwrap();
    backend.stop().unwrap();
}

#[test]
fn a_dead_backend_fails_over_to_a_bounded_503() {
    // Reserve an address that is guaranteed dead: bind, read the port,
    // drop the listener.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let live = Server::start(ServerConfig::new()).unwrap();
    let router = Router::start(
        RouterConfig::new(vec![live.addr().to_string(), dead])
            .with_connect_timeout(Duration::from_millis(200))
            .with_health_interval(Duration::from_millis(100)),
    )
    .unwrap();
    let addr = router.addr().to_string();

    // Sort candidate specs by shard so each side of the table gets one.
    let opts = PipelineOptions::default();
    let candidates = [
        XYZ_G.to_string(),
        TOGGLE_G.to_string(),
        scaled_pipeline(2),
        scaled_pipeline(3),
        scaled_pipeline(4),
    ];
    let to_shard = |shard: u64| {
        candidates
            .iter()
            .find(|g| source_cache_key(g, &opts).unwrap() % 2 == shard)
            .unwrap_or_else(|| panic!("no candidate routes to shard {shard}"))
    };

    // The live shard serves normally.
    let response = post(&addr, &synth_body(to_shard(0)), "");
    assert_eq!(response.status, 200, "{}", response.body_str());
    assert_eq!(response.header("x-backend"), Some("0"));

    // The dead shard fails over to a router-stamped 503 within the
    // retry budget — bounded, not a hang on the 30 s request budget.
    let t0 = Instant::now();
    let response = post(&addr, &synth_body(to_shard(1)), "");
    let elapsed = t0.elapsed();
    assert_eq!(response.status, 503, "{}", response.body_str());
    assert_eq!(
        response.header("x-role"),
        Some("router"),
        "failover 503 must be distinguishable from a backend shed"
    );
    assert!(response.header("x-backend").is_none());
    assert!(
        elapsed < Duration::from_secs(5),
        "failover took {elapsed:?}; the retry budget is not bounding it"
    );

    // The probe loop has marked the backend down by now; the routing
    // table reports it and the gauge exposes it.
    std::thread::sleep(Duration::from_millis(300));
    assert!(router.shards().backend(0).is_up());
    assert!(!router.shards().backend(1).is_up());
    let text = get(&addr, "/metrics").body_str();
    assert!(
        text.contains(&format!(
            "reshuffle_backend_up{{backend=\"{}\"}} 0",
            router.shards().backend(1).addr()
        )),
        "{text}"
    );
    assert_eq!(router.shards().backend(1).errors(), 1);
    router.stop().unwrap();
    live.stop().unwrap();
}

#[test]
fn resharding_from_two_to_three_backends_replays_journals() {
    let paths: Vec<std::path::PathBuf> = (0..3).map(|i| temp_path(&format!("shard{i}"))).collect();
    let opts = PipelineOptions::default();
    let specs = vec![
        XYZ_G.to_string(),
        TOGGLE_G.to_string(),
        scaled_pipeline(2),
        scaled_pipeline(3),
    ];

    // Generation 1: two backends, filled through the router, then a
    // simulated crash of the whole fleet — caches live on as journals.
    let backends: Vec<Server> = (0..2)
        .map(|i| {
            Server::start(
                ServerConfig::new()
                    .with_shard_id(i as u64)
                    .with_cache_path(&paths[i]),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let router = Router::start(RouterConfig::new(addrs)).unwrap();
    let addr = router.addr().to_string();
    let mut firsts = Vec::new();
    for spec in &specs {
        let response = post(&addr, &synth_body(spec), "");
        assert_eq!(response.status, 200, "{}", response.body_str());
        firsts.push(json::parse(&response.body_str()).unwrap());
    }
    router.stop().unwrap();
    for backend in backends {
        backend.abort();
    }

    // Generation 2: three backends. The two old cache paths recover
    // their journals wherever they land in the new table; the third
    // starts cold.
    let backends: Vec<Server> = (0..3)
        .map(|i| {
            Server::start(
                ServerConfig::new()
                    .with_shard_id(i as u64)
                    .with_cache_path(&paths[i]),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let router = Router::start(RouterConfig::new(addrs)).unwrap();
    let addr = router.addr().to_string();

    // Re-request the whole corpus: zero errors, identical payloads.
    // Keys whose shard assignment survived the reshard (key % 2 ==
    // key % 3, cache path unchanged) replay as journal hits; moved
    // keys re-execute cleanly on their new shard and refill it.
    for (spec, first) in specs.iter().zip(&firsts) {
        let key = source_cache_key(spec, &opts).unwrap();
        let expect_hit = key % 2 == key % 3;
        let response = post(&addr, &synth_body(spec), "");
        assert_eq!(response.status, 200, "{}", response.body_str());
        assert_eq!(
            response.header("x-backend"),
            Some(format!("{}", key % 3).as_str())
        );
        let doc = json::parse(&response.body_str()).unwrap();
        assert_eq!(
            doc.get("cache_hit"),
            Some(&Json::Bool(expect_hit)),
            "key {key} (shard {} -> {}): {}",
            key % 2,
            key % 3,
            response.body_str()
        );
        assert_eq!(
            doc.get("result").unwrap().render(),
            first.get("result").unwrap().render(),
            "synthesis drifted across the reshard"
        );
    }
    // The corpus moved at least one key in each direction, or this
    // test proves nothing; with these four specs both cases occur.
    let keys: Vec<u64> = specs
        .iter()
        .map(|g| source_cache_key(g, &opts).unwrap())
        .collect();
    assert!(
        keys.iter().any(|k| k % 2 == k % 3) && keys.iter().any(|k| k % 2 != k % 3),
        "corpus exercises only one side of the reshard: {keys:?}"
    );
    stop_fleet(backends, router);
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }
}
