//! End-to-end service tests over real sockets: single-flight
//! coalescing, cache persistence across a restart, journal replay
//! after a crash, keep-alive connection reuse, the eviction bound, the
//! 4xx surface, and the `/stats` document (validated with the
//! hand-rolled JSON parser).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use reshuffle_bench::examples::{scaled_pipeline, TOGGLE_G, XYZ_G};
use reshuffle_bench::json::{self, Json};
use reshuffle_server::{ClientConn, Server, ServerConfig};

/// One blocking exchange over a fresh connection that asks the server
/// to close; returns (status, head, body).
fn exchange_full(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let status = response.split(' ').nth(1).unwrap().parse().unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (status, head.to_string(), body.to_string())
}

/// [`exchange_full`] without the head.
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String) {
    let (status, _, body) = exchange_full(addr, raw);
    (status, body)
}

/// A response header's value, case-insensitively.
fn header(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
    })
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n"),
    )
}

/// A persistent keep-alive client over the crate's shared HTTP
/// framing ([`ClientConn`]), so one socket carries many requests.
struct Client {
    conn: ClientConn,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        Client {
            conn: ClientConn::connect(&addr.to_string()).unwrap(),
        }
    }

    fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String, bool)> {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let response = self.conn.exchange(raw.as_bytes())?;
        Ok((response.status, response.body_str(), response.close))
    }
}

fn synth_body(g: &str) -> String {
    Json::obj(vec![("g", Json::Str(g.to_string()))]).render()
}

fn stats(addr: SocketAddr) -> Json {
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200, "{body}");
    json::parse(&body).expect("stats must be valid JSON")
}

fn stat(doc: &Json, key: &str) -> f64 {
    doc.get(key)
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("missing numeric stat {key}: {}", doc.render()))
}

fn cache_stat(doc: &Json, key: &str) -> f64 {
    stat(doc.get("cache").expect("missing cache object"), key)
}

/// A per-test temp file path (no tempdir crate in the container).
fn temp_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "reshuffle-server-test-{}-{}-{tag}.cache",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

#[test]
fn concurrent_identical_requests_coalesce_into_one_execution() {
    let n = 8;
    let server = Server::start(
        ServerConfig::new()
            .with_threads(n)
            .with_queue_depth(4 * n)
            .with_request_timeout(Duration::from_secs(120)),
    )
    .unwrap();
    let addr = server.addr();
    // A spec big enough that the pipeline takes real wall time, so
    // concurrent arrivals overlap the leader's run.
    let body = Arc::new(synth_body(&scaled_pipeline(7)));
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let (body, barrier) = (body.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                post(addr, "/synthesize", &body)
            })
        })
        .collect();
    let responses: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every request succeeded, and all carried the identical payload.
    let mut results = Vec::new();
    for (status, body) in &responses {
        assert_eq!(*status, 200, "{body}");
        let doc = json::parse(body).unwrap();
        results.push(doc.get("result").expect("missing result").render());
    }
    results.dedup();
    assert_eq!(results.len(), 1, "coalesced responses diverged");

    // Exactly one underlying pipeline execution. A racer arriving
    // after the leader published re-runs — and hits the cache — so
    // every non-executing request shows up as either a coalesced wait
    // or a cache hit.
    let doc = stats(addr);
    assert_eq!(stat(&doc, "executed"), 1.0, "{}", doc.render());
    assert_eq!(
        stat(&doc, "coalesced") + cache_stat(&doc, "hits"),
        (n - 1) as f64,
        "{}",
        doc.render()
    );
    assert_eq!(stat(&doc, "synth_requests"), n as f64);
    assert_eq!(stat(&doc, "timeouts"), 0.0);
    assert_eq!(stat(&doc, "in_flight"), 0.0);
    server.stop().unwrap();
}

#[test]
fn cache_survives_a_restart_and_replays_as_a_hit() {
    let path = temp_path("persist");
    let body = synth_body(XYZ_G);

    // First server: a real execution, snapshot saved on stop.
    let server = Server::start(ServerConfig::new().with_cache_path(&path)).unwrap();
    let (status, first) = post(server.addr(), "/synthesize", &body);
    assert_eq!(status, 200, "{first}");
    let first = json::parse(&first).unwrap();
    assert_eq!(first.get("cache_hit"), Some(&Json::Bool(false)));
    server.stop().unwrap();

    // Second server: same key, O(1) hit, zero executions.
    let server = Server::start(ServerConfig::new().with_cache_path(&path)).unwrap();
    let doc = stats(server.addr());
    assert_eq!(cache_stat(&doc, "entries"), 1.0, "snapshot not loaded");
    let (status, second) = post(server.addr(), "/synthesize", &body);
    assert_eq!(status, 200, "{second}");
    let second = json::parse(&second).unwrap();
    assert_eq!(
        second.get("cache_hit"),
        Some(&Json::Bool(true)),
        "replay missed the persisted cache"
    );
    // Identical fingerprint × option key and identical payload across
    // the restart.
    assert_eq!(
        first.get("result").unwrap().render(),
        second.get("result").unwrap().render()
    );
    let doc = stats(server.addr());
    assert_eq!(stat(&doc, "executed"), 0.0, "restart re-ran the pipeline");
    server.stop().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bounded_cache_reports_evictions() {
    let server = Server::start(ServerConfig::new().with_cache_capacity(Some(1))).unwrap();
    let addr = server.addr();
    assert_eq!(post(addr, "/synthesize", &synth_body(XYZ_G)).0, 200);
    assert_eq!(post(addr, "/synthesize", &synth_body(TOGGLE_G)).0, 200);
    let doc = stats(addr);
    assert_eq!(cache_stat(&doc, "entries"), 1.0, "{}", doc.render());
    assert_eq!(cache_stat(&doc, "capacity"), 1.0);
    assert!(cache_stat(&doc, "evictions") >= 1.0);
    server.stop().unwrap();
}

#[test]
fn bad_requests_get_4xx() {
    let server = Server::start(ServerConfig::new().with_max_body_bytes(256)).unwrap();
    let addr = server.addr();

    // Not JSON at all.
    let (status, body) = post(addr, "/synthesize", "this is not json");
    assert_eq!(status, 400, "{body}");
    // JSON without the "g" member.
    let (status, _) = post(addr, "/synthesize", "{\"spec\": 1}");
    assert_eq!(status, 400);
    // Unknown option.
    let (status, body) = post(
        addr,
        "/synthesize",
        "{\"g\": \"x\", \"options\": {\"turbo\": true}}",
    );
    assert_eq!(status, 400, "{body}");
    // Well-formed request, broken `.g` source: a pipeline-level 422.
    let (status, body) = post(addr, "/synthesize", &synth_body(".model broken\n.end\n"));
    assert_eq!(status, 422, "{body}");
    // Oversized body (limit is 256 bytes here).
    let (status, body) = post(addr, "/synthesize", &synth_body(&scaled_pipeline(4)));
    assert_eq!(status, 413, "{body}");
    // Unknown path, wrong method.
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(get(addr, "/synthesize").0, 405);
    // Raw protocol garbage.
    let (status, _) = exchange(addr, "EHLO not-http\r\n\r\n");
    assert_eq!(status, 400);

    let doc = stats(addr);
    assert!(stat(&doc, "bad_requests") >= 6.0, "{}", doc.render());
    assert_eq!(stat(&doc, "executed"), 0.0);
    server.stop().unwrap();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let n = 5;
    let server = Server::start(ServerConfig::new()).unwrap();
    let addr = server.addr();
    let body = synth_body(XYZ_G);
    let mut client = Client::connect(addr);
    for i in 0..n {
        let (status, response, close) = client.post("/synthesize", &body).unwrap();
        assert_eq!(status, 200, "request {i}: {response}");
        assert!(!close, "request {i}: server closed a keep-alive connection");
        let doc = json::parse(&response).unwrap();
        assert_eq!(doc.get("cache_hit"), Some(&Json::Bool(i > 0)));
    }
    drop(client);

    // n synthesize requests plus this /stats request, but only two
    // accepted connections: the reused one and the /stats one.
    let doc = stats(addr);
    assert_eq!(stat(&doc, "synth_requests"), n as f64);
    assert_eq!(stat(&doc, "connections"), 2.0, "{}", doc.render());
    assert!(stat(&doc, "connections") < stat(&doc, "requests"));
    assert_eq!(stat(&doc, "executed"), 1.0);
    server.stop().unwrap();
}

#[test]
fn per_connection_request_cap_closes_the_socket() {
    let server = Server::start(ServerConfig::new().with_max_requests_per_conn(2)).unwrap();
    let addr = server.addr();
    let body = synth_body(XYZ_G);
    let mut client = Client::connect(addr);
    let (status, _, close) = client.post("/synthesize", &body).unwrap();
    assert_eq!((status, close), (200, false));
    let (status, _, close) = client.post("/synthesize", &body).unwrap();
    assert_eq!(status, 200);
    assert!(close, "cap-reaching response must announce the close");
    // The server hung up after the cap: the next exchange sees EOF.
    assert!(client.post("/synthesize", &body).is_err());
    server.stop().unwrap();
}

#[test]
fn stalled_request_times_out_with_408() {
    let server =
        Server::start(ServerConfig::new().with_request_timeout(Duration::from_millis(200)))
            .unwrap();
    let addr = server.addr();
    // Head promises a body that never arrives: the absolute deadline
    // fires even though the socket stays open.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"POST /synthesize HTTP/1.1\r\nContent-Length: 5\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "expected 408, got: {response}"
    );
    assert!(response.contains("Connection: close"), "{response}");
    let doc = stats(addr);
    assert_eq!(stat(&doc, "request_timeouts"), 1.0, "{}", doc.render());
    server.stop().unwrap();
}

#[test]
fn journal_replay_survives_a_crash_with_zero_reexecutions() {
    let path = temp_path("journal");
    let journal = path.with_extension("journal");
    let bodies = [synth_body(XYZ_G), synth_body(TOGGLE_G)];

    // First server: two real executions, then a simulated kill -9 —
    // no shutdown, no snapshot write.
    let server = Server::start(ServerConfig::new().with_cache_path(&path)).unwrap();
    let mut firsts = Vec::new();
    for body in &bodies {
        let (status, response) = post(server.addr(), "/synthesize", body);
        assert_eq!(status, 200, "{response}");
        firsts.push(json::parse(&response).unwrap());
    }
    let doc = stats(server.addr());
    assert_eq!(cache_stat(&doc, "journal_appends"), 2.0, "{}", doc.render());
    assert_eq!(cache_stat(&doc, "journal_errors"), 0.0);
    assert!(journal.exists(), "journal not on disk while serving");
    server.abort();
    assert!(!path.exists(), "abort must not write a snapshot");

    // Second server: recovery = journal replay alone. The whole corpus
    // is 100% cache hits — zero pipeline re-executions.
    let server = Server::start(ServerConfig::new().with_cache_path(&path)).unwrap();
    let doc = stats(server.addr());
    assert_eq!(cache_stat(&doc, "entries"), 2.0, "journal not replayed");
    for (body, first) in bodies.iter().zip(&firsts) {
        let (status, response) = post(server.addr(), "/synthesize", body);
        assert_eq!(status, 200, "{response}");
        let replay = json::parse(&response).unwrap();
        assert_eq!(
            replay.get("cache_hit"),
            Some(&Json::Bool(true)),
            "replay missed the journaled cache"
        );
        assert_eq!(
            first.get("result").unwrap().render(),
            replay.get("result").unwrap().render(),
            "journaled synthesis drifted across the crash"
        );
    }
    let doc = stats(server.addr());
    assert_eq!(stat(&doc, "executed"), 0.0, "restart re-ran the pipeline");

    // Clean shutdown compacts: snapshot present, journal gone.
    server.stop().unwrap();
    assert!(path.exists(), "compaction wrote no snapshot");
    assert!(!journal.exists(), "compaction left the journal behind");

    // Third server: runs from the compacted snapshot alone.
    let server = Server::start(ServerConfig::new().with_cache_path(&path)).unwrap();
    let doc = stats(server.addr());
    assert_eq!(cache_stat(&doc, "entries"), 2.0, "snapshot not loaded");
    server.stop().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn metrics_serves_valid_prometheus_with_latency_histograms() {
    let server = Server::start(ServerConfig::new()).unwrap();
    let addr = server.addr();
    let body = synth_body(XYZ_G);
    // One miss (executed) and one hit, so both the real stages and the
    // cache_hit pseudo-stage have samples.
    assert_eq!(post(addr, "/synthesize", &body).0, 200);
    assert_eq!(post(addr, "/synthesize", &body).0, 200);

    let (status, head, text) =
        exchange_full(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert!(
        header(&head, "content-type").is_some_and(|ct| ct.starts_with("text/plain")),
        "{head}"
    );
    let summary = reshuffle_obs::validate(&text)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    for family in [
        "reshuffle_requests_total",
        "reshuffle_synth_requests_total",
        "reshuffle_cache_hits_total",
        "reshuffle_prereduce_places_removed_total",
        "reshuffle_prereduce_transitions_removed_total",
        "reshuffle_lattice_prefix_hits_total",
        "reshuffle_request_duration_seconds",
        "reshuffle_queue_wait_seconds",
        "reshuffle_flight_wait_seconds",
        "reshuffle_stage_duration_seconds",
    ] {
        assert!(summary.has_family(family), "missing {family}:\n{text}");
    }
    assert!(text.contains("reshuffle_synth_requests_total 2"), "{text}");
    assert!(text.contains("reshuffle_cache_hits_total 1"), "{text}");
    // The hit run's lookup latency landed in the stage histograms.
    assert!(
        text.contains("reshuffle_stage_duration_seconds_count{stage=\"cache_hit\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("reshuffle_stage_duration_seconds_count{stage=\"synthesize\"} 1"),
        "{text}"
    );
    // Every served connection waited on the accept queue: the two
    // synthesize posts plus this scrape's own connection.
    assert!(
        text.contains("reshuffle_queue_wait_seconds_count 3"),
        "{text}"
    );

    // The cache_hit pseudo-stage is visible in /stats too.
    let doc = stats(addr);
    let stages = doc.get("stages").and_then(Json::items).unwrap();
    let hit = stages
        .iter()
        .find(|e| e.get("stage").and_then(Json::as_str) == Some("cache_hit"))
        .unwrap_or_else(|| panic!("no cache_hit stage in /stats: {}", doc.render()));
    assert_eq!(stat(hit, "runs"), 1.0);
    server.stop().unwrap();
}

#[test]
fn every_response_echoes_a_trace_id_and_spans_share_it() {
    use reshuffle_server::{RingSink, SinkHandle};
    let ring = Arc::new(RingSink::new(4096));
    let server = Server::start(
        ServerConfig::new()
            .with_trace_level(2)
            .with_trace_sink(SinkHandle::new(ring.clone())),
    )
    .unwrap();
    let addr = server.addr();

    // A synthesize without a client id: the response invents one...
    let body = synth_body(XYZ_G);
    let (status, head, _) = exchange_full(
        addr,
        &format!(
            "POST /synthesize HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status, 200);
    let trace = header(&head, "x-trace-id").expect("no X-Trace-Id on /synthesize");
    assert_eq!(trace.len(), 32, "{trace}");
    assert!(trace.bytes().all(|b| b.is_ascii_hexdigit()), "{trace}");
    // ...and every span the request emitted — the request root, the
    // pipeline stages, and the level-2 BFS shards — carries that id.
    let lines = ring.lines();
    for name in ["request", "stage.expand", "stage.synthesize", "bfs.shard"] {
        assert!(
            lines
                .iter()
                .any(|l| l.contains(&format!("\"name\":\"{name}\""))),
            "no {name} span in {lines:#?}"
        );
    }
    for line in &lines {
        assert!(line.contains(&trace), "span outside the trace: {line}");
    }

    // A client-supplied parseable id is propagated verbatim.
    let supplied = "00000000000000ab00000000000000cd";
    let before = ring.lines().len();
    let (status, head, _) = exchange_full(
        addr,
        &format!(
            "POST /synthesize HTTP/1.1\r\nConnection: close\r\nX-Trace-Id: {supplied}\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status, 200);
    assert_eq!(header(&head, "x-trace-id").as_deref(), Some(supplied));
    let lines = ring.lines();
    assert!(lines.len() > before, "hit run emitted no spans");
    for line in &lines[before..] {
        assert!(line.contains(supplied), "span outside the trace: {line}");
    }
    // The hit run's spans include the honest cache.lookup probe.
    assert!(
        lines[before..]
            .iter()
            .any(|l| l.contains("\"name\":\"cache.lookup\"") && l.contains("\"hit\":1")),
        "{lines:#?}"
    );

    // Non-synthesize endpoints echo an id too.
    let (_, head, _) = exchange_full(addr, "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(header(&head, "x-trace-id").is_some(), "{head}");
    server.stop().unwrap();
}

#[test]
fn options_select_pipeline_behavior() {
    let server = Server::start(ServerConfig::new()).unwrap();
    let addr = server.addr();
    // Same spec, different options: distinct keys, both executed.
    let default_body = synth_body(XYZ_G);
    let gc_body = Json::obj(vec![
        ("g", Json::Str(XYZ_G.to_string())),
        (
            "options",
            Json::obj(vec![("style", Json::Str("gc".to_string()))]),
        ),
    ])
    .render();
    let (status, a) = post(addr, "/synthesize", &default_body);
    assert_eq!(status, 200, "{a}");
    let (status, b) = post(addr, "/synthesize", &gc_body);
    assert_eq!(status, 200, "{b}");
    let (a, b) = (json::parse(&a).unwrap(), json::parse(&b).unwrap());
    assert_eq!(b.get("cache_hit"), Some(&Json::Bool(false)));
    assert_ne!(
        a.get("result").unwrap().get("key"),
        b.get("result").unwrap().get("key"),
        "distinct options must use distinct cache keys"
    );
    let doc = stats(addr);
    assert_eq!(stat(&doc, "executed"), 2.0);
    // Stage timings accumulated for the executed runs.
    let stages = doc.get("stages").and_then(Json::items).unwrap();
    assert!(!stages.is_empty(), "no stage timings: {}", doc.render());
    for entry in stages {
        assert!(entry.get("stage").and_then(Json::as_str).is_some());
        assert!(stat(entry, "runs") >= 1.0);
        assert!(stat(entry, "wall_ms") >= 0.0);
    }
    server.stop().unwrap();
}
