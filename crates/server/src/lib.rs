//! `reshuffle-server`: the long-running synthesis service the ROADMAP's
//! production story asks for — [`Pipeline`] behind a hand-rolled
//! HTTP/1.1 layer on [`std::net::TcpListener`].
//!
//! Four pillars:
//!
//! 1. **Crash-safe persistent cache** — every run goes through one
//!    shared [`SynthCache`]; with a configured
//!    [`cache path`](ServerConfig::with_cache_path) the cache is
//!    recovered at startup as `snapshot + journal replay`, every newly
//!    executed synthesis is appended to an fsync'd journal the moment
//!    it lands, and a clean shutdown compacts the journal into a fresh
//!    snapshot — so a `kill -9` at any point loses zero completed
//!    syntheses. An optional
//!    [`capacity`](ServerConfig::with_cache_capacity) bounds the cache
//!    with LRU eviction.
//! 2. **Keep-alive connections** — one accepted socket serves many
//!    requests (HTTP/1.1 semantics: reuse unless `Connection: close`
//!    or HTTP/1.0), bounded by an
//!    [`idle deadline`](ServerConfig::with_idle_timeout) between
//!    requests and a
//!    [`max-requests-per-connection`](ServerConfig::with_max_requests_per_conn)
//!    cap. Each request is read under an *absolute* deadline across
//!    head and body, so a byte-trickling client gets a `408` instead
//!    of holding a worker.
//! 3. **Batching + single-flight dedup** — connections land on a
//!    bounded accept queue drained by a worker pool sized by
//!    [`BuildOptions::threads`]; when the queue is full the service
//!    sheds load with `503` instead of stalling. Concurrent requests
//!    for the same spec × options (the [`reshuffle::run_cache_key`])
//!    coalesce into one pipeline execution whose result every waiter
//!    shares, with a per-request timeout.
//! 4. **Ops surface** — `GET /stats` reports
//!    connection/request/coalescing/shed/write-failure counters, cache
//!    hit/entry/eviction/journal counters, and accumulated per-stage
//!    wall times as JSON; `GET /metrics` serves the same counters plus
//!    log-bucketed latency histograms (request service time,
//!    accept-queue wait, coalesced-follower wait, per-stage wall time)
//!    in Prometheus text exposition format. Every response echoes an
//!    `X-Trace-Id` header — derived per request from the run cache key
//!    plus a nonce, or propagated verbatim from a parseable client
//!    `X-Trace-Id` — and with a
//!    [`trace level`](ServerConfig::with_trace_level) above zero the
//!    request, its pipeline stages and (at level 2) the per-shard BFS
//!    work are emitted as JSON span lines sharing that id.
//!
//! For horizontal deployment the same binary also runs as a
//! **fingerprint-sharded router** in front of N of these backends —
//! see [`router`] — reusing the connection-serving engine, and
//! exposing the same endpoint surface.
//!
//! # Endpoints
//!
//! | Method | Path | Body | Response |
//! |---|---|---|---|
//! | `POST` | `/synthesize` | `{"g": "<.g text>", "options": {…}}` | `{"cache_hit": b, "coalesced": b, "result": {…}}` |
//! | `GET`  | `/stats` | — | counters + stage timings |
//! | `GET`  | `/metrics` | — | Prometheus text exposition (0.0.4) |
//! | `GET`  | `/healthz` | — | `ok` |
//! | `POST` | `/shutdown` | — | `ok`, then the server drains and exits |
//!
//! `options` mirrors [`PipelineOptions`]: `"style"`
//! (`"complex-gate"`/`"gc"`), `"expand"`/`"reduce"` (`true`, an options
//! object, or `null`), `"csc"` (`{"max_signals", "rank_pool"}`) and
//! `"skip_verify"`. Malformed requests get `400`, a lapsed read
//! deadline `408`, oversized bodies `413`, pipeline failures `422`,
//! shed load `503`, and a coalesced wait past the timeout `504`.

#![warn(missing_docs)]

pub mod client;
mod engine;
mod flight;
mod http;
pub mod router;
pub mod shard;

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use reshuffle::{
    run_cache_key, CscOptions, ExpansionOptions, FileStore, ImplStyle, Pipeline, PipelineOptions,
    ReduceOptions, Stage, SynthCache,
};
use reshuffle_bench::json::{self, Json};
use reshuffle_obs::{FieldVal, HistSnapshot, Histogram, PromWriter, Tracer};
use reshuffle_petri::parse_g;
use reshuffle_sg::BuildOptions;

use engine::{Engine, EngineConfig, EngineState, Response, Service};

pub use client::{ClientConn, ClientResponse};
pub use flight::{FlightResult, Follower, Join, LeaderGuard, SingleFlight};
pub use http::{write_response, write_response_with, Conn, HttpError, Request};
pub use reshuffle_obs::{RingSink, SinkHandle, TraceId};
pub use router::{Router, RouterConfig};

/// How the service binds, pools, bounds and persists.
///
/// `#[non_exhaustive]`: build it with [`ServerConfig::new`] and the
/// `with_*` setters.
///
/// # Worked example
///
/// Bind to an ephemeral port, answer a health check, shut down:
///
/// ```
/// use reshuffle_server::{Server, ServerConfig};
/// use std::io::{Read, Write};
///
/// # fn main() -> std::io::Result<()> {
/// let cfg = ServerConfig::new()
///     .with_addr("127.0.0.1:0")
///     .with_threads(2)
///     .with_cache_capacity(Some(64));
/// let server = Server::start(cfg)?;
///
/// let mut conn = std::net::TcpStream::connect(server.addr())?;
/// conn.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")?;
/// let mut response = String::new();
/// conn.read_to_string(&mut response)?;
/// assert!(response.starts_with("HTTP/1.1 200"), "{response}");
///
/// server.stop()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` by default — an ephemeral port).
    pub addr: String,
    /// Worker threads; `0` (the default, via [`BuildOptions`]) resolves
    /// to the machine's available parallelism.
    pub threads: usize,
    /// Accepted connections queued ahead of the workers; one more and
    /// the service sheds with `503`.
    pub queue_depth: usize,
    /// Per-request budget: the absolute deadline for reading one
    /// request (head + body — a trickling client gets `408`) and the
    /// wait bound for coalesced followers.
    pub request_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served over one connection before the server closes it
    /// (`Connection: close` on the last response).
    pub max_requests_per_conn: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// LRU bound on the synthesis cache (`None` = unbounded).
    pub cache_capacity: Option<usize>,
    /// Snapshot file the cache is loaded from at startup and saved to
    /// at shutdown (`None` = in-memory only).
    pub cache_path: Option<PathBuf>,
    /// This backend's shard index in a sharded deployment, reported in
    /// `GET /stats` so a rollup can attribute numbers to backends
    /// (`None` = standalone).
    pub shard_id: Option<u64>,
    /// Trace verbosity: `0` disables tracing (one relaxed atomic load
    /// per would-be span), `1` traces requests and pipeline stages,
    /// `2` additionally traces per-shard BFS work. Defaults to the
    /// `RESHUFFLE_TRACE` environment variable, or `0`.
    pub trace_level: u8,
    /// Where span JSON lines go when tracing is on (`None` = stderr).
    pub trace_sink: Option<SinkHandle>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: BuildOptions::default().threads,
            queue_depth: 64,
            request_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_conn: 128,
            max_body_bytes: 1024 * 1024,
            cache_capacity: None,
            cache_path: None,
            shard_id: None,
            trace_level: std::env::var("RESHUFFLE_TRACE")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0),
            trace_sink: None,
        }
    }
}

impl ServerConfig {
    /// The default configuration (ephemeral localhost port, pool sized
    /// by available parallelism, 64-deep queue, 30 s request timeout,
    /// 5 s keep-alive idle deadline, 128 requests per connection,
    /// 1 MiB bodies, unbounded in-memory cache).
    pub fn new() -> ServerConfig {
        ServerConfig::default()
    }

    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> ServerConfig {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-pool size (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> ServerConfig {
        self.threads = threads;
        self
    }

    /// Sets the accept-queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> ServerConfig {
        self.queue_depth = depth;
        self
    }

    /// Sets the per-request timeout.
    pub fn with_request_timeout(mut self, timeout: Duration) -> ServerConfig {
        self.request_timeout = timeout;
        self
    }

    /// Sets the keep-alive idle deadline between requests.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> ServerConfig {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the per-connection request cap (min 1).
    pub fn with_max_requests_per_conn(mut self, max: usize) -> ServerConfig {
        self.max_requests_per_conn = max.max(1);
        self
    }

    /// Sets the request-body limit.
    pub fn with_max_body_bytes(mut self, bytes: usize) -> ServerConfig {
        self.max_body_bytes = bytes;
        self
    }

    /// Bounds the synthesis cache (`None` = unbounded).
    pub fn with_cache_capacity(mut self, capacity: Option<usize>) -> ServerConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Persists the cache to `path` across restarts.
    pub fn with_cache_path(mut self, path: impl Into<PathBuf>) -> ServerConfig {
        self.cache_path = Some(path.into());
        self
    }

    /// Reports this backend as shard `id` in `GET /stats`.
    pub fn with_shard_id(mut self, id: u64) -> ServerConfig {
        self.shard_id = Some(id);
        self
    }

    /// Sets the trace verbosity (`0` off, `1` requests + stages, `2`
    /// also per-shard BFS).
    pub fn with_trace_level(mut self, level: u8) -> ServerConfig {
        self.trace_level = level;
        self
    }

    /// Routes span JSON lines to `sink` instead of stderr.
    pub fn with_trace_sink(mut self, sink: SinkHandle) -> ServerConfig {
        self.trace_sink = Some(sink);
        self
    }
}

/// Counters owned by the synthesis service (the transport counters —
/// connections, requests, shed, timeouts on the read path — live in
/// the engine).
#[derive(Debug, Default)]
struct SynthStats {
    synth_requests: AtomicU64,
    executed: AtomicU64,
    coalesced: AtomicU64,
    timeouts: AtomicU64,
    /// Places removed by structural pre-reduction, summed over runs.
    prereduce_places: AtomicU64,
    /// Transitions removed by structural pre-reduction, summed over runs.
    prereduce_transitions: AtomicU64,
    /// Lattice restriction products served from the shared-prefix
    /// cache, summed over runs.
    lattice_prefix_hits: AtomicU64,
}

/// Number of reportable pipeline stages (the five real stages plus the
/// `cache_hit` pseudo-stage).
const NUM_STAGES: usize = 6;

/// Accumulated wall time and run count per pipeline stage.
#[derive(Debug, Default)]
struct StageTotals {
    totals: Mutex<[(u64, Duration); NUM_STAGES]>,
}

fn stage_index(stage: Stage) -> usize {
    match stage {
        Stage::Parse => 0,
        Stage::Expand => 1,
        Stage::Reduce => 2,
        Stage::Resolve => 3,
        Stage::Synthesize => 4,
        Stage::CacheHit => 5,
    }
}

const STAGE_NAMES: [&str; NUM_STAGES] = [
    "parse",
    "expand",
    "reduce",
    "resolve",
    "synthesize",
    "cache_hit",
];

/// `Ok(stable result JSON)` or `Err((status, error message))` — what a
/// flight leader publishes to its followers.
type SynthOutcome = Result<String, (u16, String)>;

/// The synthesis backend: everything above the transport — the cache,
/// the single-flight registry, the pipeline, and the ops surface.
struct SynthService {
    cfg: ServerConfig,
    engine: Arc<EngineState>,
    cache: SynthCache,
    flights: SingleFlight<SynthOutcome>,
    stats: SynthStats,
    stage_totals: StageTotals,
    /// Coalesced-follower wait on the in-flight leader's publication.
    flight_wait: Histogram,
    /// Per-stage pipeline wall time, indexed by [`stage_index`].
    stage_hists: [Histogram; NUM_STAGES],
    tracer: Tracer,
}

impl SynthService {
    fn accumulate_stages(&self, diag: &reshuffle::Diagnostics) {
        let mut totals = self.stage_totals.totals.lock().unwrap();
        for report in &diag.stages {
            let i = stage_index(report.stage);
            let slot = &mut totals[i];
            slot.0 += 1;
            slot.1 += report.wall;
            self.stage_hists[i].record(report.wall);
        }
        drop(totals);
        self.stats
            .prereduce_places
            .fetch_add(diag.prereduce_places_removed, Ordering::Relaxed);
        self.stats
            .prereduce_transitions
            .fetch_add(diag.prereduce_transitions_removed, Ordering::Relaxed);
        self.stats
            .lattice_prefix_hits
            .fetch_add(diag.lattice_prefix_hits, Ordering::Relaxed);
    }
}

/// Maps a request's `options` member onto [`PipelineOptions`] — the
/// same vocabulary as the builder setters. The router parses options
/// with this too, so its routing key agrees with the backend's cache
/// key.
pub(crate) fn options_from_json(spec: Option<&Json>) -> Result<PipelineOptions, String> {
    let mut opts = PipelineOptions::new();
    let Some(spec) = spec else {
        return Ok(opts);
    };
    let Json::Obj(members) = spec else {
        return Err("options must be an object".into());
    };
    for (key, value) in members {
        match key.as_str() {
            "style" => {
                opts = opts.with_style(match value.as_str() {
                    Some("complex-gate") => ImplStyle::ComplexGate,
                    Some("gc") => ImplStyle::GeneralizedC,
                    _ => return Err("style must be \"complex-gate\" or \"gc\"".into()),
                });
            }
            "expand" => match value {
                Json::Null | Json::Bool(false) => {}
                Json::Bool(true) => opts = opts.with_expand(ExpansionOptions::default()),
                Json::Obj(_) => {
                    let mut eopts = ExpansionOptions::default();
                    if let Some(n) = value.get("max_reshufflings") {
                        eopts.max_reshufflings = num_field(n, "expand.max_reshufflings")? as usize;
                    }
                    opts = opts.with_expand(eopts);
                }
                _ => return Err("expand must be a bool, an object, or null".into()),
            },
            "reduce" => match value {
                Json::Null | Json::Bool(false) => {}
                Json::Bool(true) => opts = opts.with_reduce(ReduceOptions::default()),
                Json::Obj(_) => {
                    let mut ropts = ReduceOptions::default();
                    if let Some(v) = value.get("max_cycle_time") {
                        ropts.max_cycle_time = match v {
                            Json::Null => None,
                            _ => Some(num_field(v, "reduce.max_cycle_time")?),
                        };
                    }
                    if let Some(v) = value.get("max_moves") {
                        ropts.max_moves = num_field(v, "reduce.max_moves")? as usize;
                    }
                    if let Some(v) = value.get("max_expansions") {
                        ropts.max_expansions = num_field(v, "reduce.max_expansions")? as usize;
                    }
                    if let Some(v) = value.get("input_delay") {
                        ropts.input_delay = num_field(v, "reduce.input_delay")?;
                    }
                    if let Some(v) = value.get("gate_delay") {
                        ropts.gate_delay = num_field(v, "reduce.gate_delay")?;
                    }
                    opts = opts.with_reduce(ropts);
                }
                _ => return Err("reduce must be a bool, an object, or null".into()),
            },
            "csc" => {
                let Json::Obj(_) = value else {
                    return Err("csc must be an object".into());
                };
                let mut copts = CscOptions::default();
                if let Some(v) = value.get("max_signals") {
                    copts.max_signals = num_field(v, "csc.max_signals")? as usize;
                }
                if let Some(v) = value.get("rank_pool") {
                    copts.rank_pool = num_field(v, "csc.rank_pool")? as usize;
                }
                opts = opts.with_csc(copts);
            }
            "skip_verify" => match value {
                Json::Bool(b) => opts = opts.with_skip_verify(*b),
                _ => return Err("skip_verify must be a bool".into()),
            },
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(opts)
}

fn num_field(value: &Json, what: &str) -> Result<f64, String> {
    value
        .as_num()
        .filter(|n| *n >= 0.0)
        .ok_or_else(|| format!("{what} must be a non-negative number"))
}

fn error_body(msg: &str) -> String {
    engine::error_body(msg)
}

impl Service for SynthService {
    fn route(&self, request: &Request) -> Response {
        // Propagate a parseable client-supplied trace id; otherwise
        // derive one from a fresh nonce (`/synthesize` upgrades its
        // derived id to carry the run cache key once it has computed
        // one).
        let nonce = self.engine.req_seq.fetch_add(1, Ordering::Relaxed);
        let client = request.trace_id.as_deref().and_then(TraceId::parse);
        let trace = client.unwrap_or_else(|| TraceId::derive(0, nonce));
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/synthesize") => self.handle_synthesize(&request.body, client, nonce),
            ("GET", "/stats") => Response::json(200, self.render_stats(), trace),
            ("GET", "/metrics") => Response {
                status: 200,
                content_type: "text/plain; version=0.0.4".to_string(),
                body: self.render_metrics().into_bytes(),
                trace,
                headers: Vec::new(),
            },
            ("GET", "/healthz") => Response::json(200, Json::Str("ok".into()).render(), trace),
            ("POST", "/shutdown") => Response::json(200, Json::Str("ok".into()).render(), trace),
            (_, "/synthesize" | "/stats" | "/metrics" | "/healthz" | "/shutdown") => {
                self.engine
                    .stats
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                Response::json(
                    405,
                    error_body(&format!("{} not allowed here", request.method)),
                    trace,
                )
            }
            (_, path) => {
                self.engine
                    .stats
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                Response::json(404, error_body(&format!("no such endpoint: {path}")), trace)
            }
        }
    }
}

impl SynthService {
    fn handle_synthesize(
        &self,
        body: &[u8],
        client_trace: Option<TraceId>,
        nonce: u64,
    ) -> Response {
        self.stats.synth_requests.fetch_add(1, Ordering::Relaxed);
        let bad_request = || {
            self.engine
                .stats
                .bad_requests
                .fetch_add(1, Ordering::Relaxed);
        };
        // Until the cache key exists, errors answer under a nonce-only
        // id.
        let early = client_trace.unwrap_or_else(|| TraceId::derive(0, nonce));
        let parsed = std::str::from_utf8(body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(json::parse);
        let request = match parsed {
            Ok(v) => v,
            Err(e) => {
                bad_request();
                return Response::json(400, error_body(&format!("bad JSON: {e}")), early);
            }
        };
        let Some(g) = request.get("g").and_then(Json::as_str) else {
            bad_request();
            return Response::json(400, error_body("missing string member \"g\""), early);
        };
        let opts = match options_from_json(request.get("options")) {
            Ok(opts) => opts,
            Err(e) => {
                bad_request();
                return Response::json(400, error_body(&e), early);
            }
        };
        let stg = match parse_g(g) {
            Ok(stg) => stg,
            Err(e) => return Response::json(422, error_body(&format!("parse: {e}")), early),
        };
        let key = run_cache_key(&stg, &opts);
        let trace = client_trace.unwrap_or_else(|| TraceId::derive(key, nonce));
        let root = self.tracer.root(trace);
        let sp = root.span("request");

        let (status, body, coalesced) = match self.flights.join(key) {
            Join::Leader(guard) => {
                let outcome = self.run_pipeline(key, &stg, &opts, sp.ctx());
                guard.publish(outcome.clone().map(|(stable, _)| stable));
                match outcome {
                    Ok((stable, cache_hit)) => {
                        (200, synth_response(cache_hit, false, &stable), false)
                    }
                    Err((status, msg)) => (status, error_body(&msg), false),
                }
            }
            Join::Follower(follower) => {
                let t_wait = Instant::now();
                let result = follower.wait(self.cfg.request_timeout);
                self.flight_wait.record(t_wait.elapsed());
                match result {
                    FlightResult::Done(Ok(stable)) => {
                        self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                        (200, synth_response(false, true, &stable), true)
                    }
                    FlightResult::Done(Err((status, msg))) => {
                        self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                        (status, error_body(&msg), true)
                    }
                    FlightResult::Abandoned => {
                        (500, error_body("in-flight synthesis failed"), true)
                    }
                    FlightResult::TimedOut => {
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        (
                            504,
                            error_body("timed out waiting for in-flight synthesis"),
                            true,
                        )
                    }
                }
            }
        };
        sp.end(&[
            ("status", FieldVal::U64(u64::from(status))),
            ("coalesced", FieldVal::U64(u64::from(coalesced))),
        ]);
        Response::json(status, body, trace)
    }

    /// Runs the pipeline under the shared cache, returning the stable
    /// result JSON (identical for every coalesced waiter) plus whether
    /// the run was a cache hit.
    fn run_pipeline(
        &self,
        key: u64,
        stg: &reshuffle::Stg,
        opts: &PipelineOptions,
        span: reshuffle_obs::SpanCtx,
    ) -> Result<(String, bool), (u16, String)> {
        let done = Pipeline::from_stg(stg)
            .with_cache(&self.cache)
            .with_trace(span)
            .run(opts)
            .map_err(|e| (422u16, e.to_string()))?;
        let cache_hit = done.diagnostics().cache_hits == 1;
        if !cache_hit {
            self.stats.executed.fetch_add(1, Ordering::Relaxed);
        }
        // Hit runs report too: the `cache_hit` pseudo-stage keeps the
        // hit path's lookup cost visible in `/stats` and `/metrics`.
        self.accumulate_stages(done.diagnostics());
        let s = done.synthesis();
        let strings =
            |items: &[String]| Json::Arr(items.iter().map(|i| Json::Str(i.clone())).collect());
        let result = Json::obj(vec![
            ("key", Json::Str(format!("{key:#018x}"))),
            ("model", Json::Str(s.stg.name.clone())),
            (
                "signals",
                Json::Arr(
                    s.netlist
                        .signals()
                        .iter()
                        .map(|sig| Json::Str(sig.name.clone()))
                        .collect(),
                ),
            ),
            ("inserted", strings(&s.inserted)),
            (
                "moves",
                Json::Arr(s.move_labels().map(|l| Json::Str(l.to_string())).collect()),
            ),
            ("expansion", strings(&s.expansion)),
            ("netlist", Json::Str(s.netlist.describe())),
        ]);
        Ok((result.render(), cache_hit))
    }

    fn render_stats(&self) -> String {
        let totals = self.stage_totals.totals.lock().unwrap();
        let stages = Json::Arr(
            STAGE_NAMES
                .iter()
                .zip(totals.iter())
                .filter(|(_, (runs, _))| *runs > 0)
                .map(|(name, (runs, wall))| {
                    Json::obj(vec![
                        ("stage", Json::Str(name.to_string())),
                        ("runs", Json::Num(*runs as f64)),
                        ("wall_ms", Json::Num(wall.as_secs_f64() * 1e3)),
                    ])
                })
                .collect(),
        );
        drop(totals);
        let stat = |counter: &AtomicU64| Json::Num(counter.load(Ordering::Relaxed) as f64);
        let cache = &self.cache;
        let e = &self.engine.stats;
        Json::obj(vec![
            ("role", Json::Str("backend".to_string())),
            (
                "shard_id",
                self.cfg
                    .shard_id
                    .map_or(Json::Null, |id| Json::Num(id as f64)),
            ),
            (
                "uptime_ms",
                Json::Num(self.engine.started.elapsed().as_secs_f64() * 1e3),
            ),
            ("connections", stat(&e.connections)),
            ("requests", stat(&e.requests)),
            ("synth_requests", stat(&self.stats.synth_requests)),
            ("executed", stat(&self.stats.executed)),
            ("coalesced", stat(&self.stats.coalesced)),
            ("shed", stat(&e.shed)),
            ("timeouts", stat(&self.stats.timeouts)),
            ("request_timeouts", stat(&e.request_timeouts)),
            ("bad_requests", stat(&e.bad_requests)),
            ("write_errors", stat(&e.write_errors)),
            ("in_flight", Json::Num(self.flights.in_flight() as f64)),
            (
                "prereduce_places_removed",
                stat(&self.stats.prereduce_places),
            ),
            (
                "prereduce_transitions_removed",
                stat(&self.stats.prereduce_transitions),
            ),
            ("lattice_prefix_hits", stat(&self.stats.lattice_prefix_hits)),
            (
                "cache",
                Json::obj(vec![
                    ("entries", Json::Num(cache.len() as f64)),
                    (
                        "capacity",
                        cache.capacity().map_or(Json::Null, |c| Json::Num(c as f64)),
                    ),
                    ("hits", Json::Num(cache.hits() as f64)),
                    ("misses", Json::Num(cache.misses() as f64)),
                    ("shared_hits", Json::Num(cache.shared_hits() as f64)),
                    ("evictions", Json::Num(cache.evictions() as f64)),
                    ("journal_appends", Json::Num(cache.journal_appends() as f64)),
                    ("journal_errors", Json::Num(cache.journal_errors() as f64)),
                ]),
            ),
            ("stages", stages),
        ])
        .render()
    }

    /// The `GET /metrics` document: every `/stats` counter as a
    /// Prometheus counter/gauge, plus the latency histograms
    /// (`_bucket`/`_sum`/`_count`, bounds in seconds).
    fn render_metrics(&self) -> String {
        let mut w = PromWriter::new();
        let stat = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let e = &self.engine.stats;
        w.counter(
            "reshuffle_connections_total",
            "Connections accepted.",
            stat(&e.connections),
        );
        w.counter(
            "reshuffle_requests_total",
            "HTTP requests parsed off connections.",
            stat(&e.requests),
        );
        w.counter(
            "reshuffle_synth_requests_total",
            "POST /synthesize requests.",
            stat(&self.stats.synth_requests),
        );
        w.counter(
            "reshuffle_synth_executed_total",
            "Synthesize runs that executed the pipeline (cache misses).",
            stat(&self.stats.executed),
        );
        w.counter(
            "reshuffle_synth_coalesced_total",
            "Synthesize requests served by another request's in-flight run.",
            stat(&self.stats.coalesced),
        );
        w.counter(
            "reshuffle_shed_total",
            "Connections shed with 503 at the accept queue.",
            stat(&e.shed),
        );
        w.counter(
            "reshuffle_follower_timeouts_total",
            "Coalesced waits that lapsed the request timeout (504).",
            stat(&self.stats.timeouts),
        );
        w.counter(
            "reshuffle_request_timeouts_total",
            "Requests that lapsed the read deadline (408).",
            stat(&e.request_timeouts),
        );
        w.counter(
            "reshuffle_bad_requests_total",
            "Malformed, oversized or unroutable requests.",
            stat(&e.bad_requests),
        );
        w.counter(
            "reshuffle_write_errors_total",
            "Responses that failed to write (client gone).",
            stat(&e.write_errors),
        );
        w.counter(
            "reshuffle_prereduce_places_removed_total",
            "Places removed by structural pre-reduction before state-graph builds.",
            stat(&self.stats.prereduce_places),
        );
        w.counter(
            "reshuffle_prereduce_transitions_removed_total",
            "Transitions removed by structural pre-reduction (series dummy merges).",
            stat(&self.stats.prereduce_transitions),
        );
        w.counter(
            "reshuffle_lattice_prefix_hits_total",
            "Lattice restriction products served from the shared-prefix cache.",
            stat(&self.stats.lattice_prefix_hits),
        );
        let cache = &self.cache;
        w.counter(
            "reshuffle_cache_hits_total",
            "Synthesis-cache hits.",
            cache.hits(),
        );
        w.counter(
            "reshuffle_cache_misses_total",
            "Synthesis-cache misses.",
            cache.misses(),
        );
        w.counter(
            "reshuffle_cache_shared_hits_total",
            "Expansion candidates served from the shared cache.",
            cache.shared_hits(),
        );
        w.counter(
            "reshuffle_cache_evictions_total",
            "LRU evictions from the bounded cache.",
            cache.evictions(),
        );
        w.counter(
            "reshuffle_cache_journal_appends_total",
            "Syntheses appended to the crash journal.",
            cache.journal_appends(),
        );
        w.counter(
            "reshuffle_cache_journal_errors_total",
            "Failed journal appends.",
            cache.journal_errors(),
        );
        w.gauge(
            "reshuffle_cache_entries",
            "Entries resident in the synthesis cache.",
            cache.len() as f64,
        );
        w.gauge(
            "reshuffle_in_flight",
            "Synthesize flights currently executing.",
            self.flights.in_flight() as f64,
        );
        if let Some(id) = self.cfg.shard_id {
            w.gauge(
                "reshuffle_shard_id",
                "This backend's shard index in the sharded deployment.",
                id as f64,
            );
        }
        w.gauge(
            "reshuffle_uptime_seconds",
            "Seconds since the server started.",
            self.engine.started.elapsed().as_secs_f64(),
        );
        w.histogram(
            "reshuffle_request_duration_seconds",
            "Request service time, request parsed to response written.",
            &self.engine.request_hist.snapshot(),
        );
        w.histogram(
            "reshuffle_queue_wait_seconds",
            "Accepted-connection wait from accept-queue enqueue to worker pickup.",
            &self.engine.queue_wait_hist.snapshot(),
        );
        w.histogram(
            "reshuffle_flight_wait_seconds",
            "Coalesced follower wait on the in-flight leader.",
            &self.flight_wait.snapshot(),
        );
        let snaps: Vec<HistSnapshot> = self.stage_hists.iter().map(Histogram::snapshot).collect();
        let labels: Vec<[(&str, &str); 1]> = STAGE_NAMES.iter().map(|n| [("stage", *n)]).collect();
        let series: Vec<(&[(&str, &str)], &HistSnapshot)> = labels
            .iter()
            .zip(snaps.iter())
            .map(|(l, snap)| (l.as_slice(), snap))
            .collect();
        w.histogram_family(
            "reshuffle_stage_duration_seconds",
            "Per-stage pipeline wall time (cache_hit is the hit path's lookup latency).",
            &series,
        );
        w.finish()
    }
}

fn synth_response(cache_hit: bool, coalesced: bool, stable: &str) -> String {
    // `stable` is the leader's already-rendered result object; splice
    // it in verbatim so every coalesced response carries an identical
    // payload.
    format!("{{\"cache_hit\":{cache_hit},\"coalesced\":{coalesced},\"result\":{stable}}}")
}

/// A running service: accept thread plus worker pool.
///
/// Start with [`Server::start`]; take the service down with
/// [`Server::stop`] (or let a client `POST /shutdown` and pair it with
/// [`Server::wait_for_shutdown`] + `stop`, the binary's lifecycle).
pub struct Server {
    svc: Arc<SynthService>,
    engine: Engine,
}

impl Server {
    /// Binds, recovers the cache (snapshot + journal replay, when a
    /// path is configured), arms the fsync'd journal so every executed
    /// synthesis is immediately crash-durable, and spawns the accept
    /// thread plus worker pool.
    ///
    /// # Errors
    ///
    /// Bind failures and unreadable/corrupt cache snapshots or
    /// journals (a torn final journal record — a crash mid-append —
    /// is recovered from, not an error).
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let cache = match &cfg.cache_path {
            Some(path) => {
                let store = FileStore::new(path);
                let recovery = SynthCache::recover(&store)?;
                recovery.cache.attach_journal(Arc::new(store));
                recovery.cache
            }
            None => SynthCache::new(),
        };
        cache.set_capacity(cfg.cache_capacity);
        let tracer = Tracer::new(
            cfg.trace_level,
            cfg.trace_sink.clone().unwrap_or_else(SinkHandle::stderr),
        );
        let state = Arc::new(EngineState::new(EngineConfig {
            addr: cfg.addr.clone(),
            threads: cfg.threads,
            queue_depth: cfg.queue_depth,
            request_timeout: cfg.request_timeout,
            idle_timeout: cfg.idle_timeout,
            max_requests_per_conn: cfg.max_requests_per_conn,
            max_body_bytes: cfg.max_body_bytes,
            role: None,
        }));
        let svc = Arc::new(SynthService {
            cfg,
            engine: state.clone(),
            cache,
            flights: SingleFlight::new(),
            stats: SynthStats::default(),
            stage_totals: StageTotals::default(),
            flight_wait: Histogram::new(),
            stage_hists: std::array::from_fn(|_| Histogram::new()),
            tracer,
        });
        let engine = Engine::start(state, svc.clone())?;
        Ok(Server { svc, engine })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.engine.addr()
    }

    /// The service's synthesis cache.
    pub fn cache(&self) -> &SynthCache {
        &self.svc.cache
    }

    /// Blocks until a client posts `/shutdown`.
    pub fn wait_for_shutdown(&self) {
        self.engine.wait_for_shutdown();
    }

    /// Stops accepting, drains the pool, and compacts the cache — a
    /// fresh snapshot replacing the journal — when a path is
    /// configured.
    ///
    /// # Errors
    ///
    /// Snapshot write failures; the threads are already down by then
    /// (and the journal is left in place, so even a failed compaction
    /// loses nothing).
    pub fn stop(mut self) -> io::Result<()> {
        self.engine.join();
        if let Some(path) = &self.svc.cfg.cache_path {
            self.svc.cache.compact_to(&FileStore::new(path))?;
        }
        Ok(())
    }

    /// Tears the service down *without* the shutdown snapshot — the
    /// crash-simulation path (the in-process analogue of `kill -9`
    /// minus leaked threads): only the append-only journal survives,
    /// which is exactly what [`Server::start`] recovers from.
    pub fn abort(mut self) {
        self.engine.join();
    }
}
