//! Shared HTTP/1.1 client framing: the one implementation of
//! `Content-Length`-framed request/response exchange over a keep-alive
//! [`TcpStream`], used by the `loadgen` driver, the integration tests,
//! and the router tier's pooled backend connections.
//!
//! A [`ClientConn`] owns one connection and reads responses without
//! waiting for EOF, so the socket can carry the next request.
//! [`exchange_with_retry`] wraps the reconnect-once idiom every caller
//! needs: a server is allowed to close a keep-alive connection at any
//! time (idle deadline, per-connection request cap), and the benign
//! race where it does so as the client writes is healed by one fresh
//! dial — while connect failures surface immediately.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response: status, headers, `Content-Length` body, and
/// whether the server announced `Connection: close`.
#[derive(Debug)]
pub struct ClientResponse {
    /// The status code from the response line.
    pub status: u16,
    /// Every response header, `(name, value)`, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body, `Content-Length` bytes of it.
    pub body: Vec<u8>,
    /// Whether the server will close the connection after this
    /// response.
    pub close: bool,
}

impl ClientResponse {
    /// The first header with this name (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as text (lossy UTF-8).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One client end of a keep-alive connection.
#[derive(Debug)]
pub struct ClientConn {
    reader: BufReader<TcpStream>,
}

impl ClientConn {
    /// Connects with the platform's default timeouts (reads block
    /// until the server answers).
    ///
    /// # Errors
    ///
    /// Connect failures.
    pub fn connect(addr: &str) -> io::Result<ClientConn> {
        Ok(ClientConn {
            reader: BufReader::new(TcpStream::connect(addr)?),
        })
    }

    /// Connects with a bounded dial and a per-read timeout — the
    /// router's flavor, where a dead backend must fail fast instead of
    /// holding a worker.
    ///
    /// # Errors
    ///
    /// Address resolution and connect failures (including a lapsed
    /// `connect` deadline).
    pub fn connect_timeout(
        addr: &str,
        connect: Duration,
        read: Duration,
    ) -> io::Result<ClientConn> {
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
        let stream = TcpStream::connect_timeout(&sockaddr, connect)?;
        stream.set_read_timeout(Some(read))?;
        Ok(ClientConn {
            reader: BufReader::new(stream),
        })
    }

    /// One request/response exchange: writes `request` verbatim, reads
    /// one `Content-Length`-framed response.
    ///
    /// # Errors
    ///
    /// Socket failures, EOF before or inside the response, and read
    /// timeouts (when armed via [`ClientConn::connect_timeout`]).
    pub fn exchange(&mut self, request: &[u8]) -> io::Result<ClientResponse> {
        let mut stream = self.reader.get_ref();
        stream.write_all(request)?;

        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the response",
            ));
        }
        let status = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside response headers",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    close = true;
                }
                headers.push((name.to_string(), value.to_string()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
            close,
        })
    }
}

/// One exchange over a fresh short-lived connection. The request
/// should carry `Connection: close` so keep-alive servers release the
/// socket.
///
/// # Errors
///
/// Connect and exchange failures.
pub fn exchange_once(addr: &str, request: &[u8]) -> io::Result<ClientResponse> {
    ClientConn::connect(addr)?.exchange(request)
}

/// Exchanges `request` over the pooled connection in `slot`, dialing
/// with `dial` when the slot is empty. An exchange failure clears the
/// slot and retries (with a fresh dial) up to `attempts` total tries —
/// healing the benign keep-alive close race — while a *dial* failure
/// surfaces immediately: the peer is down, not mid-close. A response
/// announcing `Connection: close` empties the slot.
///
/// Returns the response plus how many dials were performed (the
/// caller's reconnect accounting).
///
/// # Errors
///
/// The first dial failure, or the last exchange failure once
/// `attempts` is exhausted.
pub fn exchange_with_retry(
    slot: &mut Option<ClientConn>,
    mut dial: impl FnMut() -> io::Result<ClientConn>,
    request: &[u8],
    attempts: usize,
) -> io::Result<(ClientResponse, usize)> {
    let mut dialed = 0usize;
    let mut attempt = 0usize;
    loop {
        attempt += 1;
        let conn = match slot.as_mut() {
            Some(conn) => conn,
            None => {
                dialed += 1;
                slot.insert(dial()?)
            }
        };
        match conn.exchange(request) {
            Ok(response) => {
                if response.close {
                    *slot = None;
                }
                return Ok((response, dialed));
            }
            Err(e) => {
                *slot = None;
                if attempt >= attempts.max(1) {
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::write_response_with;
    use std::net::TcpListener;

    /// A one-shot server: accepts one connection, answers `n`
    /// responses, closes.
    fn serve_n(listener: TcpListener, n: usize, close_last: bool) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            for i in 0..n {
                let _ = stream.read(&mut buf).unwrap();
                let close = close_last && i + 1 == n;
                write_response_with(
                    &mut &stream,
                    200,
                    "text/plain",
                    &[("X-Req", &format!("{i}"))],
                    format!("body{i}").as_bytes(),
                    close,
                )
                .unwrap();
            }
        })
    }

    #[test]
    fn exchanges_keep_alive_responses_with_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = serve_n(listener, 2, true);
        let mut conn = ClientConn::connect(&addr).unwrap();
        let first = conn.exchange(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.body, b"body0");
        assert_eq!(first.header("x-req"), Some("0"), "case-insensitive");
        assert!(!first.close);
        let second = conn.exchange(b"GET /b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(second.body_str(), "body1");
        assert!(second.close);
        server.join().unwrap();
    }

    #[test]
    fn retry_heals_a_server_close_but_reports_dial_failures() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // First connection answers once and closes; a retry must dial
        // fresh and land on the second accept.
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf).unwrap();
                write_response_with(&mut &stream, 200, "text/plain", &[], b"ok", true).unwrap();
            }
        });
        let mut slot = None;
        let dial = || ClientConn::connect(&addr);
        let (resp, dialed) =
            exchange_with_retry(&mut slot, dial, b"GET / HTTP/1.1\r\n\r\n", 2).unwrap();
        assert_eq!((resp.status, dialed), (200, 1));
        assert!(slot.is_none(), "close empties the slot");
        // Slot is empty: the next exchange dials again.
        let (resp, dialed) =
            exchange_with_retry(&mut slot, dial, b"GET / HTTP/1.1\r\n\r\n", 2).unwrap();
        assert_eq!((resp.status, dialed), (200, 1));
        server.join().unwrap();

        // A dead listener: the dial failure surfaces on the first try.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let gone = dead.local_addr().unwrap().to_string();
        drop(dead);
        let mut slot = None;
        assert!(exchange_with_retry(
            &mut slot,
            || ClientConn::connect_timeout(
                &gone,
                Duration::from_millis(200),
                Duration::from_millis(200)
            ),
            b"GET / HTTP/1.1\r\n\r\n",
            3,
        )
        .is_err());
    }
}
