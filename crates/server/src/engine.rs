//! The connection-serving engine shared by the synthesis backend and
//! the router tier: bounded accept queue, worker pool, keep-alive
//! serving under absolute read deadlines, 503 load shedding, and the
//! shutdown choreography (half-close every parked connection so idle
//! workers wake immediately). The only thing that differs between
//! tiers is how a parsed [`Request`] becomes a [`Response`] — the
//! [`Service`] trait.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use reshuffle_bench::json::Json;
use reshuffle_obs::{Histogram, TraceId};

use crate::http::{write_response_with, Conn, HttpError, Request};

/// How one tier's engine binds, pools and bounds — the transport slice
/// of `ServerConfig`/`RouterConfig`.
#[derive(Debug, Clone)]
pub(crate) struct EngineConfig {
    pub addr: String,
    pub threads: usize,
    pub queue_depth: usize,
    pub request_timeout: Duration,
    pub idle_timeout: Duration,
    pub max_requests_per_conn: usize,
    pub max_body_bytes: usize,
    /// `X-Role` header stamped on engine-originated responses (shed
    /// 503s, 400/408/413). `None` omits the header — the single-tier
    /// server's wire format, byte-identical to before the router
    /// existed.
    pub role: Option<&'static str>,
}

/// Counters the engine owns (services layer their own on top).
#[derive(Debug, Default)]
pub(crate) struct EngineStats {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub shed: AtomicU64,
    pub request_timeouts: AtomicU64,
    pub bad_requests: AtomicU64,
    pub write_errors: AtomicU64,
}

/// Everything the accept loop, workers and the service share.
pub(crate) struct EngineState {
    pub cfg: EngineConfig,
    pub stats: EngineStats,
    /// Whole-request service time: request parsed off the socket to
    /// response written (or write failure).
    pub request_hist: Histogram,
    /// Accepted-connection wait from accept-queue enqueue to worker
    /// pickup — the queueing delay the shed bound protects.
    pub queue_wait_hist: Histogram,
    /// Accepted sockets waiting for a worker, each stamped with its
    /// enqueue instant so pickup records the queue-wait histogram.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    shutdown: (Mutex<bool>, Condvar),
    /// Live connections by id (a `try_clone` of each worker's socket):
    /// shutdown half-closes their read sides so workers parked on a
    /// keep-alive idle wait wake immediately instead of riding out the
    /// idle deadline.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_seq: AtomicU64,
    /// Per-request nonce feeding [`TraceId::derive`], so concurrent
    /// requests for the same spec stay distinguishable.
    pub req_seq: AtomicU64,
    pub started: Instant,
}

impl EngineState {
    pub fn new(cfg: EngineConfig) -> EngineState {
        EngineState {
            cfg,
            stats: EngineStats::default(),
            request_hist: Histogram::new(),
            queue_wait_hist: Histogram::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            shutdown: (Mutex::new(false), Condvar::new()),
            conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
            req_seq: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Blocks until a client posts `/shutdown` (or `begin_shutdown`
    /// runs), or until `timeout` lapses when one is given. Returns
    /// whether shutdown has begun.
    pub fn wait_for_shutdown(&self, timeout: Option<Duration>) -> bool {
        let (lock, cv) = &self.shutdown;
        let mut down = lock.lock().unwrap();
        match timeout {
            None => {
                while !*down {
                    down = cv.wait(down).unwrap();
                }
                true
            }
            Some(timeout) => {
                let deadline = Instant::now() + timeout;
                while !*down {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return false;
                    }
                    (down, _) = cv.wait_timeout(down, left).unwrap();
                }
                true
            }
        }
    }

    pub fn begin_shutdown(&self, addr: SocketAddr) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(addr);
        // Unblock workers parked reading a keep-alive connection: the
        // read half closes (their next read sees EOF) while any
        // in-flight response still drains down the write half.
        for conn in self.conns.lock().unwrap().values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let (lock, cv) = &self.shutdown;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
}

/// How a tier turns a parsed request into a response.
pub(crate) trait Service: Send + Sync + 'static {
    fn route(&self, request: &Request) -> Response;
}

/// One routed response: status, payload, its content type, the trace
/// id to echo back as `X-Trace-Id`, and any extra headers (the router
/// stamps `X-Backend`/`X-Role`).
pub(crate) struct Response {
    pub status: u16,
    pub content_type: String,
    pub body: Vec<u8>,
    pub trace: TraceId,
    pub headers: Vec<(String, String)>,
}

impl Response {
    pub fn json(status: u16, body: String, trace: TraceId) -> Response {
        Response {
            status,
            content_type: "application/json".to_string(),
            body: body.into_bytes(),
            trace,
            headers: Vec::new(),
        }
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }
}

pub(crate) fn error_body(msg: &str) -> String {
    Json::obj(vec![("error", Json::Str(msg.to_string()))]).render()
}

/// An engine-originated error response: derived trace id, role header
/// when the tier has one.
fn engine_error(state: &EngineState, status: u16, msg: &str) -> Response {
    let trace = TraceId::derive(0, state.req_seq.fetch_add(1, Ordering::Relaxed));
    let response = Response::json(status, error_body(msg), trace);
    match state.cfg.role {
        Some(role) => response.with_header("X-Role", role),
        None => response,
    }
}

/// A running engine: accept thread plus worker pool, serving `svc`.
pub(crate) struct Engine {
    state: Arc<EngineState>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Binds `state.cfg.addr` and spawns the accept thread plus worker
    /// pool (`threads == 0` resolves to available parallelism).
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start<S: Service>(state: Arc<EngineState>, svc: Arc<S>) -> io::Result<Engine> {
        let listener = TcpListener::bind(&state.cfg.addr)?;
        let addr = listener.local_addr()?;
        let threads = match state.cfg.threads {
            0 => std::thread::available_parallelism().map_or(2, usize::from),
            n => n,
        };
        let acceptor = {
            let state = state.clone();
            std::thread::spawn(move || accept_loop(&state, &listener))
        };
        let workers = (0..threads)
            .map(|_| {
                let state = state.clone();
                let svc = svc.clone();
                std::thread::spawn(move || worker_loop(&state, &*svc))
            })
            .collect();
        Ok(Engine {
            state,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client posts `/shutdown`.
    pub fn wait_for_shutdown(&self) {
        self.state.wait_for_shutdown(None);
    }

    /// Stops accepting and drains the pool.
    pub fn join(&mut self) {
        self.state.begin_shutdown(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(state: &EngineState, listener: &TcpListener) {
    loop {
        let Ok((conn, _)) = listener.accept() else {
            continue;
        };
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let mut queue = state.queue.lock().unwrap();
        if queue.len() >= state.cfg.queue_depth {
            drop(queue);
            state.stats.shed.fetch_add(1, Ordering::Relaxed);
            let response = engine_error(state, 503, "server overloaded; retry later");
            let trace_s = response.trace.to_string();
            let mut extra: Vec<(&str, &str)> = vec![("X-Trace-Id", &trace_s)];
            for (name, value) in &response.headers {
                extra.push((name, value));
            }
            let mut conn = conn;
            let _ = write_response_with(
                &mut conn,
                response.status,
                &response.content_type,
                &extra,
                &response.body,
                true,
            );
        } else {
            queue.push_back((conn, Instant::now()));
            drop(queue);
            state.queue_cv.notify_one();
        }
    }
}

fn worker_loop(state: &EngineState, svc: &dyn Service) {
    loop {
        let conn = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if state.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = state.queue_cv.wait(queue).unwrap();
            }
        };
        match conn {
            Some((conn, enqueued)) => {
                state.queue_wait_hist.record(enqueued.elapsed());
                handle_connection(state, svc, conn);
            }
            None => return,
        }
    }
}

/// Serves one accepted socket for its whole keep-alive lifetime,
/// keeping it registered so shutdown can unpark an idle read.
fn handle_connection(state: &EngineState, svc: &dyn Service, stream: TcpStream) {
    state.stats.connections.fetch_add(1, Ordering::Relaxed);
    let id = state.conn_seq.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        state.conns.lock().unwrap().insert(id, clone);
    }
    serve_connection(state, svc, stream);
    state.conns.lock().unwrap().remove(&id);
}

/// Writes one response, counting (and reporting) a vanished client as
/// a write failure instead of a served request. Returns whether the
/// connection is still usable.
fn respond(state: &EngineState, conn: &mut Conn, response: &Response, close: bool) -> bool {
    let trace_s = response.trace.to_string();
    let mut extra: Vec<(&str, &str)> = vec![("X-Trace-Id", &trace_s)];
    for (name, value) in &response.headers {
        extra.push((name, value));
    }
    let written = conn.write_response_with(
        response.status,
        &response.content_type,
        &extra,
        &response.body,
        close,
    );
    match written {
        Ok(()) => true,
        Err(_) => {
            state.stats.write_errors.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

fn serve_connection(state: &EngineState, svc: &dyn Service, stream: TcpStream) {
    let mut conn = Conn::new(stream);
    let max = state.cfg.max_requests_per_conn.max(1);
    for served in 1..=max {
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let request = match conn.read_request(
            state.cfg.max_body_bytes,
            state.cfg.idle_timeout,
            state.cfg.request_timeout,
        ) {
            Ok(request) => request,
            Err(HttpError::Closed) => return, // peer done, or idle deadline
            Err(HttpError::Timeout) => {
                state.stats.request_timeouts.fetch_add(1, Ordering::Relaxed);
                let msg = format!(
                    "request not received within {:?}",
                    state.cfg.request_timeout
                );
                respond(state, &mut conn, &engine_error(state, 408, &msg), true);
                return;
            }
            Err(HttpError::Malformed(msg)) => {
                state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                // Framing is lost after a protocol violation: close.
                let msg = format!("malformed request: {msg}");
                respond(state, &mut conn, &engine_error(state, 400, &msg), true);
                return;
            }
            Err(HttpError::BodyTooLarge) => {
                state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                // The oversized body was never read off the socket, so
                // the next request cannot be framed: close.
                let msg = format!("body exceeds the {} byte limit", state.cfg.max_body_bytes);
                respond(state, &mut conn, &engine_error(state, 413, &msg), true);
                return;
            }
            Err(HttpError::Io(_)) => return, // peer gone; nothing to answer
        };
        state.stats.requests.fetch_add(1, Ordering::Relaxed);
        let t_serve = Instant::now();
        let response = svc.route(&request);
        let shutdown_requested = request.method == "POST" && request.path == "/shutdown";
        let close = request.close
            || served == max
            || shutdown_requested
            || state.stop.load(Ordering::SeqCst);
        let usable = respond(state, &mut conn, &response, close);
        state.request_hist.record(t_serve.elapsed());
        if !usable {
            return;
        }
        if shutdown_requested {
            // Answer first, then take the service down.
            state.begin_shutdown(
                conn.local_addr()
                    .unwrap_or_else(|_| "127.0.0.1:0".parse().expect("literal socket address")),
            );
            return;
        }
        if close {
            return;
        }
    }
}
