//! Single-flight request coalescing: concurrent work for the same key
//! collapses into one execution whose result every waiter shares.
//!
//! [`SingleFlight::join`] is the only entry point: the first caller for
//! a key becomes the [`Leader`](Join::Leader) and runs the work; every
//! caller arriving before the leader [`publish`](LeaderGuard::publish)es
//! becomes a [`Follower`](Join::Follower) and blocks (with a timeout)
//! on the shared slot. Publishing removes the key, so a *later* caller
//! starts a fresh flight — by then the result is in the synthesis
//! cache, making the re-run an O(1) hit. A leader that unwinds without
//! publishing abandons the slot instead of wedging its followers.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The in-flight registry. `V` is the published result; it is cloned
/// once per follower.
#[derive(Debug, Default)]
pub struct SingleFlight<V> {
    slots: Mutex<HashMap<u64, Arc<Slot<V>>>>,
}

#[derive(Debug)]
struct Slot<V> {
    state: Mutex<SlotState<V>>,
    cv: Condvar,
}

#[derive(Debug)]
enum SlotState<V> {
    Pending,
    Done(V),
    Abandoned,
}

/// The role [`SingleFlight::join`] assigned to a caller.
#[derive(Debug)]
pub enum Join<'f, V> {
    /// First in: run the work, then [`LeaderGuard::publish`].
    Leader(LeaderGuard<'f, V>),
    /// Someone else is running the identical work: [`Follower::wait`].
    Follower(Follower<V>),
}

/// Proof of leadership for one key. Dropping the guard without
/// [`publish`](LeaderGuard::publish)ing marks the flight abandoned so
/// followers fail fast instead of hanging.
#[derive(Debug)]
pub struct LeaderGuard<'f, V> {
    flight: &'f SingleFlight<V>,
    key: u64,
    slot: Arc<Slot<V>>,
    published: bool,
}

/// A follower's handle on the leader's slot.
#[derive(Debug)]
pub struct Follower<V> {
    slot: Arc<Slot<V>>,
}

/// What a follower's wait produced.
#[derive(Debug, PartialEq)]
pub enum FlightResult<V> {
    /// The leader published this result.
    Done(V),
    /// The leader unwound without publishing.
    Abandoned,
    /// The leader did not publish within the timeout.
    TimedOut,
}

impl<V: Clone> SingleFlight<V> {
    /// An empty registry.
    pub fn new() -> SingleFlight<V> {
        SingleFlight {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the flight for `key`, atomically electing one leader among
    /// concurrent callers.
    pub fn join(&self, key: u64) -> Join<'_, V> {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.get(&key) {
            return Join::Follower(Follower { slot: slot.clone() });
        }
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        });
        slots.insert(key, slot.clone());
        Join::Leader(LeaderGuard {
            flight: self,
            key,
            slot,
            published: false,
        })
    }

    /// Number of flights currently in progress.
    pub fn in_flight(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    fn finish(&self, key: u64, slot: &Arc<Slot<V>>, state: SlotState<V>) {
        // Remove the key first: a caller arriving after the result is
        // out starts a new flight rather than reading a stale slot.
        self.slots.lock().unwrap().remove(&key);
        *slot.state.lock().unwrap() = state;
        slot.cv.notify_all();
    }
}

impl<V: Clone> LeaderGuard<'_, V> {
    /// Hands `value` to every follower and retires the flight.
    pub fn publish(mut self, value: V) {
        self.published = true;
        self.flight
            .finish(self.key, &self.slot, SlotState::Done(value));
    }
}

impl<V> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        if !self.published {
            self.flight.slots.lock().unwrap().remove(&self.key);
            *self.slot.state.lock().unwrap() = SlotState::Abandoned;
            self.slot.cv.notify_all();
        }
    }
}

impl<V: Clone> Follower<V> {
    /// Blocks until the leader publishes, abandons, or `timeout`
    /// elapses.
    pub fn wait(&self, timeout: Duration) -> FlightResult<V> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().unwrap();
        loop {
            match &*state {
                SlotState::Done(v) => return FlightResult::Done(v.clone()),
                SlotState::Abandoned => return FlightResult::Abandoned,
                SlotState::Pending => {}
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return FlightResult::TimedOut;
            };
            let (next, timed_out) = self.slot.cv.wait_timeout(state, left).unwrap();
            state = next;
            if timed_out.timed_out() && matches!(&*state, SlotState::Pending) {
                return FlightResult::TimedOut;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn one_leader_many_followers() {
        // Deterministic: all N threads join *before* anyone proceeds
        // (barrier after role assignment), so exactly one leader and
        // N-1 followers — no timing luck involved.
        let n = 8;
        let flight = Arc::new(SingleFlight::<u64>::new());
        let barrier = Arc::new(Barrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let (flight, barrier, leaders) = (flight.clone(), barrier.clone(), leaders.clone());
                std::thread::spawn(move || {
                    let role = flight.join(42);
                    barrier.wait();
                    match role {
                        Join::Leader(guard) => {
                            leaders.fetch_add(1, Ordering::SeqCst);
                            guard.publish(1999);
                            1999
                        }
                        Join::Follower(f) => match f.wait(Duration::from_secs(10)) {
                            FlightResult::Done(v) => v,
                            other => panic!("follower got {other:?}"),
                        },
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1999);
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn published_flights_retire_and_rerun() {
        let flight = SingleFlight::<u64>::new();
        let Join::Leader(guard) = flight.join(7) else {
            panic!("first joiner must lead");
        };
        assert_eq!(flight.in_flight(), 1);
        guard.publish(1);
        assert_eq!(flight.in_flight(), 0);
        // The key is free again: the next joiner leads a fresh flight.
        assert!(matches!(flight.join(7), Join::Leader(_)));
    }

    #[test]
    fn dropped_leader_abandons_followers() {
        let flight = SingleFlight::<u64>::new();
        let leader = flight.join(7);
        let Join::Follower(follower) = flight.join(7) else {
            panic!("second joiner must follow");
        };
        drop(leader);
        assert_eq!(
            follower.wait(Duration::from_secs(10)),
            FlightResult::Abandoned
        );
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn follower_times_out_on_a_stuck_leader() {
        let flight = SingleFlight::<u64>::new();
        let _leader = flight.join(7);
        let Join::Follower(follower) = flight.join(7) else {
            panic!("second joiner must follow");
        };
        assert_eq!(
            follower.wait(Duration::from_millis(20)),
            FlightResult::TimedOut
        );
    }
}
