//! The fingerprint-sharded router tier: `reshuffle-server --route
//! backend1,backend2,…` accepts the same `POST /synthesize` surface as
//! a backend, computes the content-addressed cache key locally
//! ([`reshuffle::source_cache_key`] — parse only, no pipeline), and
//! forwards the request to backend `key % N` over pooled keep-alive
//! connections, streaming the response through verbatim.
//!
//! **Routing invariant.** The key is a pure function of the spec's
//! canonical fingerprint and the option trail, so identical requests
//! always land on the same backend — which is exactly what preserves
//! per-shard single-flight coalescing (concurrent identical requests
//! meet in one backend's flight table and execute once, fleet-wide)
//! and cache locality (a spec's journal entry lives on one shard).
//!
//! **Failover semantics.** Forwards retry within a bounded attempt
//! budget (healing the benign keep-alive close race); when a backend
//! stays unreachable the router answers `503` itself — stamped
//! `X-Role: router` to distinguish it from a backend's own shed `503`
//! — and a background probe loop holds the backend's
//! `reshuffle_backend_up` gauge at 0 until its `/healthz` listener is
//! reachable again (a busy backend that accepts but answers slowly
//! stays up; only a vanished peer is down).
//! Proxied responses instead carry `X-Backend: <shard>` and the
//! backend's own payload, byte-for-byte. A client `X-Trace-Id` is
//! forwarded, so router and backend spans share one trace.
//!
//! **Resharding.** Journals replay anywhere, so `N → N+1` is an
//! operational procedure, not a migration: stop the fleet, restart
//! backends under the new list (each recovers its own journal), point
//! the router at the new list. Keys that moved shards re-execute once
//! (a clean miss) and refill; keys that stayed hit their journal.
//!
//! `GET /stats` and `GET /metrics` are fleet rollups: the router
//! scrapes every backend, merges counters by sum and histograms via
//! [`HistSnapshot::merge`], and adds its own `reshuffle_router_*`,
//! `reshuffle_routed_total{backend}`, `reshuffle_backend_errors_total
//! {backend}` and `reshuffle_backend_up{backend}` families.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use reshuffle::source_cache_key;
use reshuffle_bench::json::{self, Json};
use reshuffle_obs::{
    parse as prom_parse, FieldVal, HistSnapshot, PromDoc, PromWriter, SinkHandle, TraceId, Tracer,
};
use reshuffle_sg::BuildOptions;
use std::collections::HashMap;

use crate::client::{exchange_with_retry, ClientConn};
use crate::engine::{error_body, Engine, EngineConfig, EngineState, Response, Service};
use crate::http::Request;
use crate::options_from_json;
use crate::shard::ShardTable;

/// How the router binds, pools, bounds, routes and probes.
///
/// `#[non_exhaustive]`: build it with [`RouterConfig::new`] and the
/// `with_*` setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RouterConfig {
    /// Bind address (`127.0.0.1:0` by default — an ephemeral port).
    pub addr: String,
    /// Backend addresses in shard order (`key % N` indexes this list;
    /// the order is part of the routing contract).
    pub backends: Vec<String>,
    /// Worker threads; `0` resolves to available parallelism.
    pub threads: usize,
    /// Accepted connections queued ahead of the workers; one more and
    /// the router sheds with `503`.
    pub queue_depth: usize,
    /// Per-request budget: the read deadline for one client request
    /// and the read timeout on forwarded backend exchanges.
    pub request_timeout: Duration,
    /// Keep-alive idle deadline between client requests.
    pub idle_timeout: Duration,
    /// Requests served over one client connection before close.
    pub max_requests_per_conn: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Total exchange attempts per forward (≥ 1); exhausting them
    /// answers `503` with `X-Role: router`.
    pub retries: usize,
    /// Dial deadline for backend connections and health probes.
    pub connect_timeout: Duration,
    /// Cadence of the background `/healthz` probe loop.
    pub health_interval: Duration,
    /// Trace verbosity, as on the backend (`RESHUFFLE_TRACE` default).
    pub trace_level: u8,
    /// Where span JSON lines go when tracing is on (`None` = stderr).
    pub trace_sink: Option<SinkHandle>,
}

impl RouterConfig {
    /// The default router configuration in front of `backends`
    /// (ephemeral localhost port, 64-deep queue, 30 s request budget,
    /// 2 forward attempts, 1 s dials, 500 ms health probes).
    pub fn new(backends: Vec<String>) -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            backends,
            threads: BuildOptions::default().threads,
            queue_depth: 64,
            request_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_conn: 128,
            max_body_bytes: 1024 * 1024,
            retries: 2,
            connect_timeout: Duration::from_secs(1),
            health_interval: Duration::from_millis(500),
            trace_level: std::env::var("RESHUFFLE_TRACE")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0),
            trace_sink: None,
        }
    }

    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> RouterConfig {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-pool size (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> RouterConfig {
        self.threads = threads;
        self
    }

    /// Sets the accept-queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> RouterConfig {
        self.queue_depth = depth;
        self
    }

    /// Sets the per-request budget (client reads and backend waits).
    pub fn with_request_timeout(mut self, timeout: Duration) -> RouterConfig {
        self.request_timeout = timeout;
        self
    }

    /// Sets the keep-alive idle deadline between client requests.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> RouterConfig {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the per-connection request cap (min 1).
    pub fn with_max_requests_per_conn(mut self, max: usize) -> RouterConfig {
        self.max_requests_per_conn = max.max(1);
        self
    }

    /// Sets the request-body limit.
    pub fn with_max_body_bytes(mut self, bytes: usize) -> RouterConfig {
        self.max_body_bytes = bytes;
        self
    }

    /// Sets the forward attempt budget (min 1).
    pub fn with_retries(mut self, attempts: usize) -> RouterConfig {
        self.retries = attempts.max(1);
        self
    }

    /// Sets the backend dial deadline.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> RouterConfig {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the health-probe cadence.
    pub fn with_health_interval(mut self, interval: Duration) -> RouterConfig {
        self.health_interval = interval;
        self
    }

    /// Sets the trace verbosity.
    pub fn with_trace_level(mut self, level: u8) -> RouterConfig {
        self.trace_level = level;
        self
    }

    /// Routes span JSON lines to `sink` instead of stderr.
    pub fn with_trace_sink(mut self, sink: SinkHandle) -> RouterConfig {
        self.trace_sink = Some(sink);
        self
    }
}

#[derive(Debug, Default)]
struct RouterStats {
    /// `POST /synthesize` requests routed (or attempted).
    synth_requests: AtomicU64,
    /// Extra dials beyond the first per forward — the keep-alive close
    /// race being healed, or a dying backend being retried.
    retries: AtomicU64,
}

/// The routing service behind the shared engine.
struct RouteService {
    cfg: RouterConfig,
    engine: Arc<EngineState>,
    table: ShardTable,
    stats: RouterStats,
    tracer: Tracer,
}

impl RouteService {
    /// Stamps a router-originated response: every response the router
    /// answers itself (rollups, errors, health) carries
    /// `X-Role: router`, while proxied responses carry `X-Backend`.
    fn local(&self, response: Response) -> Response {
        response.with_header("X-Role", "router")
    }

    fn bad_request(&self, status: u16, msg: &str, trace: TraceId) -> Response {
        self.engine
            .stats
            .bad_requests
            .fetch_add(1, Ordering::Relaxed);
        self.local(Response::json(status, error_body(msg), trace))
    }

    fn handle_synthesize(
        &self,
        body: &[u8],
        client_trace: Option<TraceId>,
        nonce: u64,
    ) -> Response {
        self.stats.synth_requests.fetch_add(1, Ordering::Relaxed);
        let early = client_trace.unwrap_or_else(|| TraceId::derive(0, nonce));
        // Parse just enough to compute the key the backend will derive:
        // the spec and the option trail. Malformed requests never reach
        // a backend.
        let parsed = std::str::from_utf8(body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(json::parse);
        let request = match parsed {
            Ok(v) => v,
            Err(e) => return self.bad_request(400, &format!("bad JSON: {e}"), early),
        };
        let Some(g) = request.get("g").and_then(Json::as_str) else {
            return self.bad_request(400, "missing string member \"g\"", early);
        };
        let opts = match options_from_json(request.get("options")) {
            Ok(opts) => opts,
            Err(e) => return self.bad_request(400, &e, early),
        };
        let key = match source_cache_key(g, &opts) {
            Ok(key) => key,
            Err(e) => {
                return self.local(Response::json(
                    422,
                    error_body(&format!("parse: {e}")),
                    early,
                ))
            }
        };
        let shard = self.table.route(key);
        let trace = client_trace.unwrap_or_else(|| TraceId::derive(key, nonce));
        let root = self.tracer.root(trace);
        let sp = root.span("route");

        let response = self.forward(shard, body, trace);
        sp.end(&[
            ("backend", FieldVal::U64(shard as u64)),
            ("status", FieldVal::U64(u64::from(response.status))),
        ]);
        response
    }

    /// Forwards the raw body to shard `shard`, reusing a pooled
    /// keep-alive connection when one is idle, with the configured
    /// attempt budget. The backend sees the client's trace id, so
    /// spans share the trace across the hop.
    fn forward(&self, shard: usize, body: &[u8], trace: TraceId) -> Response {
        let backend = self.table.backend(shard);
        let head = format!(
            "POST /synthesize HTTP/1.1\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nX-Trace-Id: {trace}\r\n\r\n",
            body.len()
        );
        let mut request = head.into_bytes();
        request.extend_from_slice(body);

        let mut slot = backend.take_conn();
        let pooled = slot.is_some();
        let dial = || {
            ClientConn::connect_timeout(
                backend.addr(),
                self.cfg.connect_timeout,
                self.cfg.request_timeout,
            )
        };
        match exchange_with_retry(&mut slot, dial, &request, self.cfg.retries) {
            Ok((response, dialed)) => {
                let extra_dials = (dialed + usize::from(pooled)).saturating_sub(1);
                if extra_dials > 0 {
                    self.stats
                        .retries
                        .fetch_add(extra_dials as u64, Ordering::Relaxed);
                }
                backend.note_routed();
                backend.set_up(true);
                if let Some(conn) = slot {
                    backend.put_conn(conn);
                }
                let content_type = response
                    .header("content-type")
                    .unwrap_or("application/json")
                    .to_string();
                Response {
                    status: response.status,
                    content_type,
                    body: response.body,
                    trace,
                    headers: vec![("X-Backend".to_string(), shard.to_string())],
                }
            }
            Err(_) => {
                backend.note_error();
                backend.set_up(false);
                self.local(Response::json(
                    503,
                    error_body(&format!(
                        "backend {} (shard {shard}) unavailable",
                        backend.addr()
                    )),
                    trace,
                ))
            }
        }
    }

    /// One `Connection: close` GET against a backend, under the dial
    /// and read deadlines.
    fn scrape(&self, addr: &str, path: &str) -> Option<(u16, String)> {
        let mut conn =
            ClientConn::connect_timeout(addr, self.cfg.connect_timeout, self.cfg.request_timeout)
                .ok()?;
        let request = format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n");
        let response = conn.exchange(request.as_bytes()).ok()?;
        Some((response.status, response.body_str()))
    }

    /// The `/stats` rollup: router-local counters, per-backend
    /// attribution, each backend's own `/stats` document, and a
    /// recursive numeric sum of those documents under `"totals"`.
    fn render_stats(&self) -> String {
        let stat = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        let e = &self.engine.stats;
        let routed = Json::Arr(
            self.table
                .backends()
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    Json::obj(vec![
                        ("backend", Json::Num(i as f64)),
                        ("addr", Json::Str(b.addr().to_string())),
                        ("up", Json::Bool(b.is_up())),
                        ("routed", Json::Num(b.routed() as f64)),
                        ("errors", Json::Num(b.errors() as f64)),
                    ])
                })
                .collect(),
        );
        let mut docs: Vec<Json> = Vec::new();
        for backend in self.table.backends() {
            let doc = self
                .scrape(backend.addr(), "/stats")
                .filter(|(status, _)| *status == 200)
                .and_then(|(_, body)| json::parse(&body).ok());
            docs.push(doc.unwrap_or(Json::Null));
        }
        let mut totals = Json::Obj(Vec::new());
        for doc in docs.iter().filter(|d| !matches!(d, Json::Null)) {
            sum_numeric_into(&mut totals, doc);
        }
        Json::obj(vec![
            ("role", Json::Str("router".to_string())),
            ("backends_configured", Json::Num(self.table.len() as f64)),
            (
                "uptime_ms",
                Json::Num(self.engine.started.elapsed().as_secs_f64() * 1e3),
            ),
            ("connections", stat(&e.connections)),
            ("requests", stat(&e.requests)),
            ("synth_requests", stat(&self.stats.synth_requests)),
            ("shed", stat(&e.shed)),
            ("request_timeouts", stat(&e.request_timeouts)),
            ("bad_requests", stat(&e.bad_requests)),
            ("write_errors", stat(&e.write_errors)),
            ("retries", stat(&self.stats.retries)),
            ("routed", routed),
            ("backends", Json::Arr(docs)),
            ("totals", totals),
        ])
        .render()
    }

    /// The `/metrics` rollup: router-local families plus every backend
    /// family merged across the fleet — counters and gauges summed per
    /// label set, histograms rebuilt from their exposition and merged
    /// with [`HistSnapshot::merge`] — under the backends' original
    /// family names, so one scrape of the router sees fleet totals in
    /// the same vocabulary as one backend.
    fn render_metrics(&self) -> String {
        let mut w = PromWriter::new();
        let stat = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let e = &self.engine.stats;
        w.counter(
            "reshuffle_router_connections_total",
            "Client connections accepted by the router.",
            stat(&e.connections),
        );
        w.counter(
            "reshuffle_router_requests_total",
            "HTTP requests parsed off router connections.",
            stat(&e.requests),
        );
        w.counter(
            "reshuffle_router_synth_requests_total",
            "POST /synthesize requests routed (or attempted).",
            stat(&self.stats.synth_requests),
        );
        w.counter(
            "reshuffle_router_shed_total",
            "Connections shed with 503 at the router accept queue.",
            stat(&e.shed),
        );
        w.counter(
            "reshuffle_router_request_timeouts_total",
            "Client requests that lapsed the read deadline (408).",
            stat(&e.request_timeouts),
        );
        w.counter(
            "reshuffle_router_bad_requests_total",
            "Malformed, oversized or unroutable requests.",
            stat(&e.bad_requests),
        );
        w.counter(
            "reshuffle_router_write_errors_total",
            "Responses that failed to write (client gone).",
            stat(&e.write_errors),
        );
        w.counter(
            "reshuffle_router_retries_total",
            "Extra backend dials beyond the first per forward.",
            stat(&self.stats.retries),
        );
        let addrs: Vec<&str> = self.table.backends().iter().map(|b| b.addr()).collect();
        let labels: Vec<[(&str, &str); 1]> = addrs.iter().map(|a| [("backend", *a)]).collect();
        let routed: Vec<(&[(&str, &str)], u64)> = labels
            .iter()
            .zip(self.table.backends())
            .map(|(l, b)| (l.as_slice(), b.routed()))
            .collect();
        w.counter_family(
            "reshuffle_routed_total",
            "Requests forwarded per backend.",
            &routed,
        );
        let errors: Vec<(&[(&str, &str)], u64)> = labels
            .iter()
            .zip(self.table.backends())
            .map(|(l, b)| (l.as_slice(), b.errors()))
            .collect();
        w.counter_family(
            "reshuffle_backend_errors_total",
            "Forwards that exhausted their retries, per backend.",
            &errors,
        );
        let up: Vec<(&[(&str, &str)], f64)> = labels
            .iter()
            .zip(self.table.backends())
            .map(|(l, b)| (l.as_slice(), f64::from(u8::from(b.is_up()))))
            .collect();
        w.gauge_family(
            "reshuffle_backend_up",
            "Backend health as of the last probe or forward (1 = up).",
            &up,
        );
        w.gauge(
            "reshuffle_router_uptime_seconds",
            "Seconds since the router started.",
            self.engine.started.elapsed().as_secs_f64(),
        );
        w.histogram(
            "reshuffle_router_request_duration_seconds",
            "Router request service time, request parsed to response written.",
            &self.engine.request_hist.snapshot(),
        );
        w.histogram(
            "reshuffle_router_queue_wait_seconds",
            "Router accept-queue wait from enqueue to worker pickup.",
            &self.engine.queue_wait_hist.snapshot(),
        );

        // Merge the fleet: scrape every backend, keep the docs that
        // parse, and emit each family of the first doc summed across
        // all of them.
        let docs: Vec<PromDoc> = self
            .table
            .backends()
            .iter()
            .filter_map(|b| self.scrape(b.addr(), "/metrics"))
            .filter(|(status, _)| *status == 200)
            .filter_map(|(_, body)| prom_parse(&body).ok())
            .collect();
        if let Some(first) = docs.first() {
            for family in &first.families {
                // Per-process identity gauges do not sum meaningfully.
                if family.name == "reshuffle_uptime_seconds" || family.name == "reshuffle_shard_id"
                {
                    continue;
                }
                match family.ty.as_str() {
                    "counter" => {
                        let series = sum_series(&docs, &family.name);
                        let refs = label_refs(&series);
                        let rows: Vec<(&[(&str, &str)], u64)> = refs
                            .iter()
                            .zip(&series)
                            .map(|(l, (_, v))| (l.as_slice(), *v as u64))
                            .collect();
                        w.counter_family(&family.name, &family.help, &rows);
                    }
                    "gauge" => {
                        let series = sum_series(&docs, &family.name);
                        let refs = label_refs(&series);
                        let rows: Vec<(&[(&str, &str)], f64)> = refs
                            .iter()
                            .zip(&series)
                            .map(|(l, (_, v))| (l.as_slice(), *v))
                            .collect();
                        w.gauge_family(&family.name, &family.help, &rows);
                    }
                    "histogram" => {
                        let series = merge_histograms(&docs, &family.name);
                        let refs: Vec<Vec<(&str, &str)>> = series
                            .iter()
                            .map(|(labels, _)| {
                                labels
                                    .iter()
                                    .map(|(k, v)| (k.as_str(), v.as_str()))
                                    .collect()
                            })
                            .collect();
                        let rows: Vec<(&[(&str, &str)], &HistSnapshot)> = refs
                            .iter()
                            .zip(&series)
                            .map(|(l, (_, snap))| (l.as_slice(), snap))
                            .collect();
                        w.histogram_family(&family.name, &family.help, &rows);
                    }
                    _ => {}
                }
            }
        }
        w.finish()
    }
}

/// Adds `add`'s numeric leaves into `acc`, recursing through objects;
/// non-numeric leaves (strings, bools, arrays, nulls) are skipped —
/// totals carry only what sums meaningfully.
fn sum_numeric_into(acc: &mut Json, add: &Json) {
    let (Json::Obj(amem), Json::Obj(bmem)) = (acc, add) else {
        return;
    };
    for (key, value) in bmem {
        match value {
            Json::Num(n) => {
                if let Some((_, slot)) = amem.iter_mut().find(|(k, _)| k == key) {
                    if let Json::Num(total) = slot {
                        *total += n;
                    }
                } else {
                    amem.push((key.clone(), Json::Num(*n)));
                }
            }
            Json::Obj(_) => {
                if !amem.iter().any(|(k, _)| k == key) {
                    amem.push((key.clone(), Json::Obj(Vec::new())));
                }
                let slot = &mut amem.iter_mut().find(|(k, _)| k == key).unwrap().1;
                sum_numeric_into(slot, value);
            }
            _ => {}
        }
    }
}

/// Sums one family's samples across documents, keyed by label set, in
/// first-appearance order.
fn sum_series(docs: &[PromDoc], name: &str) -> Vec<(Vec<(String, String)>, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut map: HashMap<String, (Vec<(String, String)>, f64)> = HashMap::new();
    for doc in docs {
        let Some(family) = doc.family(name) else {
            continue;
        };
        for sample in &family.samples {
            let mut sorted = sample.labels.clone();
            sorted.sort();
            let key = format!("{sorted:?}");
            let entry = map.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (sample.labels.clone(), 0.0)
            });
            entry.1 += sample.value;
        }
    }
    order
        .into_iter()
        .map(|key| map.remove(&key).expect("keyed above"))
        .collect()
}

fn label_refs(series: &[(Vec<(String, String)>, f64)]) -> Vec<Vec<(&str, &str)>> {
    series
        .iter()
        .map(|(labels, _)| {
            labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect()
        })
        .collect()
}

/// Merges one histogram family across documents with
/// [`HistSnapshot::merge`], keyed by label set (minus `le`), in
/// first-appearance order. Documents whose buckets are off the log2
/// grid are skipped.
fn merge_histograms(docs: &[PromDoc], name: &str) -> Vec<(Vec<(String, String)>, HistSnapshot)> {
    let mut order: Vec<String> = Vec::new();
    let mut map: HashMap<String, (Vec<(String, String)>, HistSnapshot)> = HashMap::new();
    for doc in docs {
        let Some(snapshots) = doc
            .family(name)
            .and_then(|family| family.histogram_snapshots().ok())
        else {
            continue;
        };
        for (labels, snap) in snapshots {
            let mut sorted = labels.clone();
            sorted.sort();
            let key = format!("{sorted:?}");
            match map.get_mut(&key) {
                Some((_, merged)) => merged.merge(&snap),
                None => {
                    order.push(key.clone());
                    map.insert(key, (labels, snap));
                }
            }
        }
    }
    order
        .into_iter()
        .map(|key| map.remove(&key).expect("keyed above"))
        .collect()
}

impl Service for RouteService {
    fn route(&self, request: &Request) -> Response {
        let nonce = self.engine.req_seq.fetch_add(1, Ordering::Relaxed);
        let client = request.trace_id.as_deref().and_then(TraceId::parse);
        let trace = client.unwrap_or_else(|| TraceId::derive(0, nonce));
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/synthesize") => self.handle_synthesize(&request.body, client, nonce),
            ("GET", "/stats") => self.local(Response::json(200, self.render_stats(), trace)),
            ("GET", "/metrics") => self.local(Response {
                status: 200,
                content_type: "text/plain; version=0.0.4".to_string(),
                body: self.render_metrics().into_bytes(),
                trace,
                headers: Vec::new(),
            }),
            ("GET", "/healthz") => {
                self.local(Response::json(200, Json::Str("ok".into()).render(), trace))
            }
            ("POST", "/shutdown") => {
                self.local(Response::json(200, Json::Str("ok".into()).render(), trace))
            }
            (_, "/synthesize" | "/stats" | "/metrics" | "/healthz" | "/shutdown") => {
                self.bad_request(405, &format!("{} not allowed here", request.method), trace)
            }
            (_, path) => self.bad_request(404, &format!("no such endpoint: {path}"), trace),
        }
    }
}

/// A running router: accept thread, worker pool, health-probe loop.
///
/// Start with [`Router::start`]; take it down with [`Router::stop`]
/// (or let a client `POST /shutdown` and pair it with
/// [`Router::wait_for_shutdown`] + `stop`, the binary's lifecycle).
pub struct Router {
    svc: Arc<RouteService>,
    engine: Engine,
    health: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds and spawns the accept thread, worker pool, and the
    /// background `/healthz` probe loop.
    ///
    /// # Errors
    ///
    /// An empty backend list, and bind failures.
    pub fn start(cfg: RouterConfig) -> io::Result<Router> {
        if cfg.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let tracer = Tracer::new(
            cfg.trace_level,
            cfg.trace_sink.clone().unwrap_or_else(SinkHandle::stderr),
        );
        let state = Arc::new(EngineState::new(EngineConfig {
            addr: cfg.addr.clone(),
            threads: cfg.threads,
            queue_depth: cfg.queue_depth,
            request_timeout: cfg.request_timeout,
            idle_timeout: cfg.idle_timeout,
            max_requests_per_conn: cfg.max_requests_per_conn,
            max_body_bytes: cfg.max_body_bytes,
            role: Some("router"),
        }));
        let table = ShardTable::new(cfg.backends.iter().cloned());
        let svc = Arc::new(RouteService {
            cfg,
            engine: state.clone(),
            table,
            stats: RouterStats::default(),
            tracer,
        });
        let engine = Engine::start(state.clone(), svc.clone())?;
        let health = {
            let svc = svc.clone();
            std::thread::spawn(move || health_loop(&svc))
        };
        Ok(Router {
            svc,
            engine,
            health: Some(health),
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.engine.addr()
    }

    /// The routing table (health and per-backend counters).
    pub fn shards(&self) -> &ShardTable {
        &self.svc.table
    }

    /// Blocks until a client posts `/shutdown`.
    pub fn wait_for_shutdown(&self) {
        self.engine.wait_for_shutdown();
    }

    /// Stops accepting, drains the pool, and joins the probe loop.
    ///
    /// # Errors
    ///
    /// None today; `io::Result` mirrors [`Server::stop`](crate::Server::stop)
    /// so binaries treat both tiers uniformly.
    pub fn stop(mut self) -> io::Result<()> {
        self.join();
        Ok(())
    }

    /// [`Router::stop`] without the result — the drop-everything path.
    pub fn abort(mut self) {
        self.join();
    }

    fn join(&mut self) {
        self.engine.join();
        if let Some(health) = self.health.take() {
            let _ = health.join();
        }
    }
}

/// Probes every backend's `/healthz` each interval, flipping the
/// per-backend `up` flag; exits when shutdown begins.
fn health_loop(svc: &RouteService) {
    loop {
        for backend in svc.table.backends() {
            let up = probe(svc, backend.addr());
            backend.set_up(up);
        }
        if svc.engine.wait_for_shutdown(Some(svc.cfg.health_interval)) {
            return;
        }
    }
}

fn probe(svc: &RouteService, addr: &str) -> bool {
    let Ok(mut conn) =
        ClientConn::connect_timeout(addr, svc.cfg.connect_timeout, svc.cfg.connect_timeout)
    else {
        return false;
    };
    match conn.exchange(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n") {
        Ok(response) => response.status == 200,
        // The listener accepted and the request queued, but no worker
        // answered within the deadline: that backend is *busy*, not
        // dead — on a small worker pool even one idle keep-alive
        // connection can pin every worker for a while. Only a vanished
        // peer (refused, reset, EOF) marks it down.
        Err(e) => matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ),
    }
}
