//! Hand-rolled HTTP/1.1, the way the bench crate hand-rolls JSON: the
//! build container has no network, so no hyper — a blocking
//! request reader and response writer over [`std::net::TcpStream`] is
//! all the service needs. One request per connection
//! (`Connection: close`), bodies sized by `Content-Length` and bounded
//! by the server's limit.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus headers, defending the reader
/// against unbounded header streams.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method verb, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// The request target (path only; queries are not used).
    pub path: String,
    /// The body, `Content-Length` bytes of it.
    pub body: Vec<u8>,
}

/// Why a request could not be served a 200.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes were not a well-formed HTTP/1.1 request → 400.
    Malformed(String),
    /// The declared body exceeds the server's limit → 413.
    BodyTooLarge,
    /// The socket failed mid-read (peer gone, read timeout) — nothing
    /// to respond to.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> HttpError {
    HttpError::Malformed(msg.into())
}

/// Reads one HTTP/1.1 request from `stream`, rejecting bodies larger
/// than `max_body` bytes.
///
/// # Errors
///
/// [`HttpError::Malformed`] on protocol violations,
/// [`HttpError::BodyTooLarge`] past the body limit, [`HttpError::Io`]
/// when the socket dies.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head = 0usize;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(malformed("empty request"));
    }
    head += line.len();
    let mut parts = line.trim_end().split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts
        .next()
        .ok_or_else(|| malformed("missing request target"))?
        .to_string();
    let version = parts.next().ok_or_else(|| malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(malformed("not an HTTP/1.x request line"));
    }
    if method.is_empty() || !path.starts_with('/') {
        return Err(malformed("bad method or target"));
    }

    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        head += line.len();
        if head > MAX_HEAD_BYTES {
            return Err(malformed("header section too large"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            if line.is_empty() {
                return Err(malformed("connection closed inside headers"));
            }
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or_else(|| malformed("header without a colon"))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| malformed("unparseable Content-Length"))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(malformed("chunked bodies are not supported"));
        }
    }
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one `Connection: close` response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn, max_body);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(
            b"POST /synthesize HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
            64,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/synthesize");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        assert!(matches!(
            roundtrip(b"not http at all\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n", 10),
            Err(HttpError::BodyTooLarge)
        ));
    }
}
