//! Hand-rolled HTTP/1.1, the way the bench crate hand-rolls JSON: the
//! build container has no network, so no hyper — a blocking
//! request reader and response writer over [`std::net::TcpStream`] is
//! all the service needs. Bodies are sized by `Content-Length` and
//! bounded by the server's limit.
//!
//! A [`Conn`] wraps one accepted socket for its whole keep-alive
//! lifetime: the read buffer persists across requests (so pipelined
//! bytes are never dropped), and every read syscall is bounded by an
//! *absolute* deadline — an idle deadline while waiting for the next
//! request to start, then a per-request deadline across the head and
//! body. A client trickling one byte per almost-timeout can therefore
//! never hold a worker past the request budget: the deadline does not
//! reset per read.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Upper bound on the request line plus headers, defending the reader
/// against unbounded header streams.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method verb, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// The request target (path only; queries are not used).
    pub path: String,
    /// The body, `Content-Length` bytes of it.
    pub body: Vec<u8>,
    /// Whether the client asked for the connection to end after this
    /// request (`Connection: close`, or HTTP/1.0 without an explicit
    /// `keep-alive`).
    pub close: bool,
    /// The `X-Trace-Id` request header, verbatim, when the client sent
    /// one — callers decide whether it parses as a trace id worth
    /// propagating.
    pub trace_id: Option<String>,
}

/// Why a request could not be served a 200.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes were not a well-formed HTTP/1.1 request → 400.
    Malformed(String),
    /// The declared body exceeds the server's limit → 413.
    BodyTooLarge,
    /// The absolute per-request deadline lapsed mid-request → 408.
    Timeout,
    /// The connection ended cleanly between requests: the peer closed
    /// it, or the idle deadline lapsed before any byte of a new
    /// request arrived. Nothing to respond to.
    Closed,
    /// The socket failed mid-read (peer vanished) — nothing to
    /// respond to.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        if e.kind() == io::ErrorKind::TimedOut {
            HttpError::Timeout
        } else {
            HttpError::Io(e)
        }
    }
}

fn malformed(msg: impl Into<String>) -> HttpError {
    HttpError::Malformed(msg.into())
}

/// A [`TcpStream`] whose every read is bounded by an absolute
/// deadline: before each syscall the socket read timeout is set to the
/// time *remaining*, so a sequence of trickled bytes cannot stretch
/// the total wait. Timeout-ish errors (`WouldBlock`/`TimedOut`) are
/// normalized to [`io::ErrorKind::TimedOut`].
#[derive(Debug)]
struct DeadlineStream {
    stream: TcpStream,
    deadline: Option<Instant>,
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(deadline) = self.deadline {
            let left = deadline
                .checked_duration_since(Instant::now())
                .filter(|left| !left.is_zero())
                .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "deadline lapsed"))?;
            self.stream.set_read_timeout(Some(left))?;
        } else {
            self.stream.set_read_timeout(None)?;
        }
        match self.stream.read(buf) {
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Err(io::Error::new(io::ErrorKind::TimedOut, "deadline lapsed"))
            }
            other => other,
        }
    }
}

/// One accepted connection, held for its keep-alive lifetime.
#[derive(Debug)]
pub struct Conn {
    reader: BufReader<DeadlineStream>,
}

impl Conn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            reader: BufReader::new(DeadlineStream {
                stream,
                deadline: None,
            }),
        }
    }

    /// The connection's local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.reader.get_ref().stream.local_addr()
    }

    fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.reader.get_mut().deadline = deadline;
    }

    /// Reads the next request off the connection, rejecting bodies
    /// larger than `max_body` bytes.
    ///
    /// The wait for the request's *first line* is bounded by `idle`
    /// (keep-alive connections do not park a worker forever); once it
    /// arrives, the rest of the head plus the whole body must land
    /// within `budget` — an absolute deadline shared by every
    /// subsequent read.
    ///
    /// # Errors
    ///
    /// [`HttpError::Closed`] when the connection ended between
    /// requests (peer EOF, or idle expiry with no bytes read),
    /// [`HttpError::Timeout`] when a deadline lapsed mid-request,
    /// [`HttpError::Malformed`] on protocol violations,
    /// [`HttpError::BodyTooLarge`] past the body limit, and
    /// [`HttpError::Io`] when the socket dies.
    pub fn read_request(
        &mut self,
        max_body: usize,
        idle: Duration,
        budget: Duration,
    ) -> Result<Request, HttpError> {
        let mut line = String::new();
        self.set_deadline(Some(Instant::now() + idle));
        match self.reader.read_line(&mut line) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(_) => {}
            // An idle expiry (or peer reset) before any byte of a new
            // request is a clean end of the connection; the same error
            // with a partial line down is a mid-request failure.
            Err(e) if line.is_empty() => {
                return Err(match e.kind() {
                    io::ErrorKind::TimedOut | io::ErrorKind::ConnectionReset => HttpError::Closed,
                    _ => HttpError::Io(e),
                })
            }
            Err(e) => return Err(e.into()),
        }
        // The request has begun: everything else — rest of the head,
        // whole body — shares one absolute deadline.
        self.set_deadline(Some(Instant::now() + budget));

        let mut head = line.len();
        let mut parts = line.trim_end().split(' ');
        let method = parts.next().unwrap_or_default().to_string();
        let path = parts
            .next()
            .ok_or_else(|| malformed("missing request target"))?
            .to_string();
        let version = parts.next().ok_or_else(|| malformed("missing version"))?;
        if !version.starts_with("HTTP/1.") || parts.next().is_some() {
            return Err(malformed("not an HTTP/1.x request line"));
        }
        if method.is_empty() || !path.starts_with('/') {
            return Err(malformed("bad method or target"));
        }
        // HTTP/1.0 defaults to one request per connection.
        let mut close = version == "HTTP/1.0";

        let mut content_length = 0usize;
        let mut trace_id = None;
        loop {
            line.clear();
            self.reader.read_line(&mut line)?;
            head += line.len();
            if head > MAX_HEAD_BYTES {
                return Err(malformed("header section too large"));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                if line.is_empty() {
                    return Err(malformed("connection closed inside headers"));
                }
                break;
            }
            let (name, value) = trimmed
                .split_once(':')
                .ok_or_else(|| malformed("header without a colon"))?;
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| malformed("unparseable Content-Length"))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(malformed("chunked bodies are not supported"));
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        close = false;
                    }
                }
            } else if name.eq_ignore_ascii_case("x-trace-id") {
                trace_id = Some(value.to_string());
            }
        }
        if content_length > max_body {
            return Err(HttpError::BodyTooLarge);
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        self.set_deadline(None);
        Ok(Request {
            method,
            path,
            body,
            close,
            trace_id,
        })
    }

    /// Writes one response on this connection, advertising
    /// `Connection: keep-alive` unless `close` is set.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (including a vanished peer —
    /// `EPIPE` surfaces as an error because Rust ignores `SIGPIPE`).
    pub fn write_response(
        &mut self,
        status: u16,
        content_type: &str,
        body: &[u8],
        close: bool,
    ) -> io::Result<()> {
        self.write_response_with(status, content_type, &[], body, close)
    }

    /// Like [`Conn::write_response`], with extra response headers
    /// (`(name, value)` pairs, e.g. `X-Trace-Id`).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_response_with(
        &mut self,
        status: u16,
        content_type: &str,
        extra: &[(&str, &str)],
        body: &[u8],
        close: bool,
    ) -> io::Result<()> {
        let mut stream = &self.reader.get_ref().stream;
        write_response_with(&mut stream, status, content_type, extra, body, close)
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one response to any sink (a [`Conn`] wraps this for its own
/// stream; the acceptor uses it directly to shed load with 503).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write_response_with(stream, status, content_type, &[], body, close)
}

/// [`write_response`] with extra response headers appended to the
/// standard set.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in extra {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    const LONG: Duration = Duration::from_secs(10);

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        let req = Conn::new(conn).read_request(max_body, LONG, LONG);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(
            b"POST /synthesize HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
            64,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/synthesize");
        assert_eq!(req.body, b"hello");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        let req = roundtrip(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 64).unwrap();
        assert!(req.close);
        let req = roundtrip(b"GET / HTTP/1.0\r\n\r\n", 64).unwrap();
        assert!(req.close, "HTTP/1.0 defaults to close");
        let req = roundtrip(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 64).unwrap();
        assert!(!req.close);
    }

    #[test]
    fn captures_x_trace_id_and_writes_extra_headers() {
        let req = roundtrip(b"GET / HTTP/1.1\r\nX-Trace-Id: abc123\r\n\r\n", 64).unwrap();
        assert_eq!(req.trace_id.as_deref(), Some("abc123"));
        let req = roundtrip(b"GET / HTTP/1.1\r\n\r\n", 64).unwrap();
        assert!(req.trace_id.is_none());

        let mut out = Vec::new();
        write_response_with(
            &mut out,
            200,
            "text/plain",
            &[("X-Trace-Id", "deadbeef")],
            b"ok",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nX-Trace-Id: deadbeef\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok"), "{text}");
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        assert!(matches!(
            roundtrip(b"not http at all\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n", 10),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn reads_pipelined_requests_off_one_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Both requests land in one burst; the persistent buffer
            // must not drop the second one.
            s.write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(stream);
        let first = conn.read_request(64, LONG, LONG).unwrap();
        assert_eq!((first.path.as_str(), first.close), ("/a", false));
        let second = conn.read_request(64, LONG, LONG).unwrap();
        assert_eq!((second.path.as_str(), second.close), ("/b", true));
        writer.join().unwrap();
        assert!(matches!(
            conn.read_request(64, Duration::from_millis(50), LONG),
            Err(HttpError::Closed),
        ));
    }

    #[test]
    fn idle_expiry_is_a_clean_close_but_a_trickle_times_out() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let holder = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(stream);
        // No bytes at all within the idle window: clean close.
        assert!(matches!(
            conn.read_request(64, Duration::from_millis(50), LONG),
            Err(HttpError::Closed),
        ));

        // A request line followed by a stalled head: the per-request
        // budget lapses mid-request — a 408-worthy Timeout, and it
        // must lapse on the *absolute* deadline even though bytes keep
        // arriving more often than the budget.
        let (stream2, handle) = {
            let mut sender = TcpStream::connect(addr).unwrap();
            let (stream2, _) = listener.accept().unwrap();
            let handle = std::thread::spawn(move || {
                sender.write_all(b"GET / HTTP/1.1\r\n").unwrap();
                for _ in 0..20 {
                    std::thread::sleep(Duration::from_millis(20));
                    if sender.write_all(b"X-Trickle: a\r").is_err() {
                        return;
                    }
                }
            });
            (stream2, handle)
        };
        let mut conn2 = Conn::new(stream2);
        let t0 = Instant::now();
        let got = conn2.read_request(64, LONG, Duration::from_millis(120));
        assert!(matches!(got, Err(HttpError::Timeout)), "{got:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "deadline was not absolute: {:?}",
            t0.elapsed()
        );
        drop(conn2);
        handle.join().unwrap();
        drop(holder);
    }
}
