//! The `reshuffle-server` binary: parse flags, start the service, and
//! run until a client posts `/shutdown` (or the process is killed).
//!
//! ```sh
//! reshuffle-server --addr 127.0.0.1:7878 --cache /tmp/reshuffle.cache \
//!     --cache-capacity 1024 --threads 4
//! ```

use std::process::ExitCode;
use std::time::Duration;

use reshuffle_server::{Server, ServerConfig};

fn usage() -> &'static str {
    "usage: reshuffle-server [--addr HOST:PORT] [--threads N] [--queue-depth N]\n\
     \x20                       [--timeout-secs N] [--idle-timeout-secs N]\n\
     \x20                       [--max-requests-per-conn N] [--max-body-bytes N]\n\
     \x20                       [--cache PATH] [--cache-capacity N]\n\
     \x20                       [--trace-level N] [--trace-file PATH]"
}

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs {what}"))
        };
        match flag.as_str() {
            "--addr" => cfg = cfg.with_addr(value("an address")?),
            "--threads" => {
                cfg = cfg.with_threads(
                    value("a count")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--queue-depth" => {
                cfg = cfg.with_queue_depth(
                    value("a depth")?
                        .parse()
                        .map_err(|e| format!("--queue-depth: {e}"))?,
                );
            }
            "--timeout-secs" => {
                cfg = cfg.with_request_timeout(Duration::from_secs(
                    value("seconds")?
                        .parse()
                        .map_err(|e| format!("--timeout-secs: {e}"))?,
                ));
            }
            "--idle-timeout-secs" => {
                cfg = cfg.with_idle_timeout(Duration::from_secs(
                    value("seconds")?
                        .parse()
                        .map_err(|e| format!("--idle-timeout-secs: {e}"))?,
                ));
            }
            "--max-requests-per-conn" => {
                cfg = cfg.with_max_requests_per_conn(
                    value("a count")?
                        .parse()
                        .map_err(|e| format!("--max-requests-per-conn: {e}"))?,
                );
            }
            "--max-body-bytes" => {
                cfg = cfg.with_max_body_bytes(
                    value("a size")?
                        .parse()
                        .map_err(|e| format!("--max-body-bytes: {e}"))?,
                );
            }
            "--cache" => cfg = cfg.with_cache_path(value("a path")?),
            "--cache-capacity" => {
                cfg = cfg.with_cache_capacity(Some(
                    value("a count")?
                        .parse()
                        .map_err(|e| format!("--cache-capacity: {e}"))?,
                ));
            }
            "--trace-level" => {
                cfg = cfg.with_trace_level(
                    value("a level (0-2)")?
                        .parse()
                        .map_err(|e| format!("--trace-level: {e}"))?,
                );
            }
            "--trace-file" => {
                let path = value("a path")?;
                let sink = reshuffle_server::SinkHandle::file(std::path::Path::new(&path))
                    .map_err(|e| format!("--trace-file {path}: {e}"))?;
                cfg = cfg.with_trace_sink(sink);
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("reshuffle-server listening on {}", server.addr());
    server.wait_for_shutdown();
    match server.stop() {
        Ok(()) => {
            println!("reshuffle-server: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error during shutdown: {e}");
            ExitCode::FAILURE
        }
    }
}
