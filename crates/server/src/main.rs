//! The `reshuffle-server` binary: parse flags, start the service, and
//! run until a client posts `/shutdown` (or the process is killed).
//!
//! Two modes share one binary and one transport flag set:
//!
//! ```sh
//! # A backend shard: synthesis, cache, journal.
//! reshuffle-server --addr 127.0.0.1:7890 --shard-id 0 \
//!     --cache /tmp/shard0.cache --cache-capacity 1024 --threads 4
//!
//! # The router tier in front of a fleet: same POST /synthesize
//! # surface, forwards key % N to the listed backends in order.
//! reshuffle-server --addr 127.0.0.1:7878 \
//!     --route 127.0.0.1:7890,127.0.0.1:7891
//! ```

use std::process::ExitCode;
use std::str::FromStr;
use std::time::Duration;

use reshuffle_server::{Router, RouterConfig, Server, ServerConfig};

fn usage() -> &'static str {
    "usage: reshuffle-server [--addr HOST:PORT] [--threads N] [--queue-depth N]\n\
     \x20                       [--timeout-secs N] [--idle-timeout-secs N]\n\
     \x20                       [--max-requests-per-conn N] [--max-body-bytes N]\n\
     \x20                       [--trace-level N] [--trace-file PATH]\n\
     \x20  serve mode:          [--cache PATH] [--cache-capacity N] [--shard-id N]\n\
     \x20  router mode:         --route BACKEND1,BACKEND2,...\n\
     \x20                       [--backend-retries N] [--connect-timeout-ms N]\n\
     \x20                       [--health-interval-ms N]"
}

/// Which tier the binary runs as, fully configured.
enum Mode {
    Serve(Box<ServerConfig>),
    Route(Box<RouterConfig>),
}

fn num<T: FromStr>(flag: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

fn trace_sink(path: &str) -> Result<reshuffle_server::SinkHandle, String> {
    reshuffle_server::SinkHandle::file(std::path::Path::new(path))
        .map_err(|e| format!("--trace-file {path}: {e}"))
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    // Every flag takes exactly one value; pair them up first so the
    // mode switch (`--route`) can be found before dispatching.
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))?;
        pairs.push((flag.as_str(), value.as_str()));
    }
    let route = pairs.iter().find(|(f, _)| *f == "--route").map(|(_, v)| *v);

    if let Some(list) = route {
        let backends: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if backends.is_empty() {
            return Err("--route needs a comma-separated backend list".to_string());
        }
        let mut cfg = RouterConfig::new(backends);
        for (flag, v) in pairs {
            match flag {
                "--route" => {}
                "--addr" => cfg = cfg.with_addr(v),
                "--threads" => cfg = cfg.with_threads(num(flag, v)?),
                "--queue-depth" => cfg = cfg.with_queue_depth(num(flag, v)?),
                "--timeout-secs" => {
                    cfg = cfg.with_request_timeout(Duration::from_secs(num(flag, v)?));
                }
                "--idle-timeout-secs" => {
                    cfg = cfg.with_idle_timeout(Duration::from_secs(num(flag, v)?));
                }
                "--max-requests-per-conn" => cfg = cfg.with_max_requests_per_conn(num(flag, v)?),
                "--max-body-bytes" => cfg = cfg.with_max_body_bytes(num(flag, v)?),
                "--backend-retries" => cfg = cfg.with_retries(num(flag, v)?),
                "--connect-timeout-ms" => {
                    cfg = cfg.with_connect_timeout(Duration::from_millis(num(flag, v)?));
                }
                "--health-interval-ms" => {
                    cfg = cfg.with_health_interval(Duration::from_millis(num(flag, v)?));
                }
                "--trace-level" => cfg = cfg.with_trace_level(num(flag, v)?),
                "--trace-file" => cfg = cfg.with_trace_sink(trace_sink(v)?),
                "--cache" | "--cache-capacity" | "--shard-id" => {
                    return Err(format!(
                        "`{flag}` applies to serve mode — the router holds no cache\n{}",
                        usage()
                    ));
                }
                other => return Err(format!("unknown flag `{other}`\n{}", usage())),
            }
        }
        return Ok(Mode::Route(Box::new(cfg)));
    }

    let mut cfg = ServerConfig::new();
    for (flag, v) in pairs {
        match flag {
            "--addr" => cfg = cfg.with_addr(v),
            "--threads" => cfg = cfg.with_threads(num(flag, v)?),
            "--queue-depth" => cfg = cfg.with_queue_depth(num(flag, v)?),
            "--timeout-secs" => {
                cfg = cfg.with_request_timeout(Duration::from_secs(num(flag, v)?));
            }
            "--idle-timeout-secs" => {
                cfg = cfg.with_idle_timeout(Duration::from_secs(num(flag, v)?));
            }
            "--max-requests-per-conn" => cfg = cfg.with_max_requests_per_conn(num(flag, v)?),
            "--max-body-bytes" => cfg = cfg.with_max_body_bytes(num(flag, v)?),
            "--cache" => cfg = cfg.with_cache_path(v),
            "--cache-capacity" => cfg = cfg.with_cache_capacity(Some(num(flag, v)?)),
            "--shard-id" => cfg = cfg.with_shard_id(num(flag, v)?),
            "--trace-level" => cfg = cfg.with_trace_level(num(flag, v)?),
            "--trace-file" => cfg = cfg.with_trace_sink(trace_sink(v)?),
            "--backend-retries" | "--connect-timeout-ms" | "--health-interval-ms" => {
                return Err(format!(
                    "`{flag}` applies to router mode (--route)\n{}",
                    usage()
                ));
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(Mode::Serve(Box::new(cfg)))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Mode::Serve(cfg)) => {
            let server = match Server::start(*cfg) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("reshuffle-server listening on {}", server.addr());
            server.wait_for_shutdown();
            match server.stop() {
                Ok(()) => {
                    println!("reshuffle-server: clean shutdown");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error during shutdown: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Ok(Mode::Route(cfg)) => {
            let backends = cfg.backends.len();
            let router = match Router::start(*cfg) {
                Ok(router) => router,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "reshuffle-server listening on {} (router, {backends} backends)",
                router.addr()
            );
            router.wait_for_shutdown();
            match router.stop() {
                Ok(()) => {
                    println!("reshuffle-server: clean shutdown");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error during shutdown: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
