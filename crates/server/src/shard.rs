//! The router's routing table: a fixed-order list of backends, each
//! with health state, per-backend counters, and a small pool of idle
//! keep-alive connections.
//!
//! Routing is deterministic — `key % N` over the content-addressed
//! [`run_cache_key`](reshuffle::run_cache_key) — so every request for
//! the same spec × options lands on the same backend. That invariant
//! is what keeps per-shard single-flight coalescing and cache locality
//! working across a fleet: the shard is a pure function of *what* is
//! being synthesized, never of arrival order or load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::client::ClientConn;

/// Idle keep-alive connections kept per backend; more are dropped.
const POOL_BOUND: usize = 8;

/// One backend in the routing table.
#[derive(Debug)]
pub struct Backend {
    addr: String,
    /// Health as of the last probe or forward (optimistic at start, so
    /// traffic flows before the first probe completes).
    up: AtomicBool,
    routed: AtomicU64,
    errors: AtomicU64,
    pool: Mutex<Vec<ClientConn>>,
}

impl Backend {
    fn new(addr: String) -> Backend {
        Backend {
            addr,
            up: AtomicBool::new(true),
            routed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The backend's address, as configured.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the last probe or forward found the backend healthy.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    /// Requests successfully forwarded to this backend.
    pub fn routed(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    /// Forward attempts that exhausted their retries.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    pub(crate) fn set_up(&self, up: bool) {
        self.up.store(up, Ordering::Relaxed);
    }

    pub(crate) fn note_routed(&self) {
        self.routed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes an idle pooled connection, if any.
    pub(crate) fn take_conn(&self) -> Option<ClientConn> {
        self.pool.lock().unwrap().pop()
    }

    /// Returns a still-usable connection to the pool (dropped when the
    /// pool is full).
    pub(crate) fn put_conn(&self, conn: ClientConn) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < POOL_BOUND {
            pool.push(conn);
        }
    }
}

/// A fixed-order backend list routing `key % N`.
#[derive(Debug)]
pub struct ShardTable {
    backends: Vec<Backend>,
}

impl ShardTable {
    /// Builds the table from backend addresses, preserving order —
    /// order *is* the shard numbering, so every router given the same
    /// list routes identically.
    pub fn new(addrs: impl IntoIterator<Item = String>) -> ShardTable {
        ShardTable {
            backends: addrs.into_iter().map(Backend::new).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the table has no backends.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// The shard index for a cache key: `key % N`.
    pub fn route(&self, key: u64) -> usize {
        (key % self.backends.len() as u64) as usize
    }

    /// The backend at shard index `i`.
    pub fn backend(&self, i: usize) -> &Backend {
        &self.backends[i]
    }

    /// All backends, in shard order.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> ShardTable {
        ShardTable::new((0..n).map(|i| format!("127.0.0.1:{}", 7890 + i)))
    }

    #[test]
    fn routing_is_deterministic_and_order_sensitive() {
        let t = table(3);
        for key in [0u64, 1, 17, u64::MAX, 0x9e3779b97f4a7c15] {
            assert_eq!(t.route(key), t.route(key), "same key, same shard");
            assert_eq!(t.route(key), (key % 3) as usize);
        }
        // A reversed list renumbers the shards: order is part of the
        // routing contract.
        let reversed = ShardTable::new((0..3).rev().map(|i| format!("127.0.0.1:{}", 7890 + i)));
        assert_eq!(t.backend(t.route(0)).addr(), "127.0.0.1:7890");
        assert_eq!(reversed.backend(reversed.route(0)).addr(), "127.0.0.1:7892");
        assert_ne!(
            t.backend(0).addr(),
            reversed.backend(0).addr(),
            "shard numbering follows list order"
        );
    }

    #[test]
    fn every_shard_is_reachable() {
        let t = table(4);
        let mut hit = [false; 4];
        for key in 0..64u64 {
            hit[t.route(key)] = true;
        }
        assert!(hit.iter().all(|h| *h), "{hit:?}");
    }

    #[test]
    fn counters_and_pool_are_per_backend() {
        let t = table(2);
        t.backend(0).note_routed();
        t.backend(0).note_routed();
        t.backend(1).note_error();
        t.backend(1).set_up(false);
        assert_eq!((t.backend(0).routed(), t.backend(0).errors()), (2, 0));
        assert_eq!((t.backend(1).routed(), t.backend(1).errors()), (0, 1));
        assert!(t.backend(0).is_up());
        assert!(!t.backend(1).is_up());
        assert!(t.backend(0).take_conn().is_none(), "pool starts empty");
    }
}
