//! Load driver for `reshuffle-server`: replay corpus plus
//! `scaled_pipeline(n)` traffic at a chosen concurrency, with
//! client-side latency histograms per response phase and a `/metrics`
//! scrape validated against the Prometheus text grammar.
//!
//! ```sh
//! loadgen --requests 128 --concurrency 8 --scale 6           # self-hosted
//! loadgen --addr 127.0.0.1:7878 --requests 64                # external
//! loadgen --requests 64 --no-keep-alive                      # one conn/request
//! loadgen --json --baseline                                  # stable JSON report
//! ```
//!
//! Without `--addr` the driver starts an in-process server, so one
//! command load-tests a fresh build. Each worker drives one
//! **persistent keep-alive connection** (reconnecting when the server
//! closes it — `Connection: close`, per-connection request cap, or a
//! shed); `--no-keep-alive` falls back to one connection per request.
//!
//! Every response is classified into a phase — `executed` (the request
//! ran the pipeline), `cache_hit`, `coalesced` (served by another
//! request's in-flight run), or `shed` (503) — and its latency recorded
//! in a per-phase histogram; the text report prints p50/p95/p99/max per
//! phase. Failures are split into **connection errors** (connect or
//! socket failures after the one reconnect retry) and **HTTP errors**
//! (unexpected statuses), reported and counted separately.
//!
//! Driving a **router** (`--route` mode) needs no extra flags: the
//! driver recognizes the router's response headers and adds a `routed`
//! breakdown — per-backend request counts from `X-Backend`, and the
//! shed split between `router_shed` (503 stamped `X-Role: router`: the
//! router's own queue or an unreachable backend) and `backend_shed` (a
//! backend's 503 proxied through). Direct backend runs never carry
//! those headers, so the committed `--baseline` report keeps its exact
//! schema.
//!
//! `--json` emits the report as JSON. `--baseline` additionally makes
//! it machine-stable for committing and diffing in CI: wall-clock
//! fields are zeroed and the scheduling-dependent `cache_hit` /
//! `coalesced` split is merged into one `cached` phase (their *sum* is
//! deterministic; which side of the race each request lands on is not).
//!
//! Exits nonzero on any connection error, HTTP error, or an invalid
//! `/metrics` document.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use reshuffle_bench::examples::{self, scaled_pipeline};
use reshuffle_bench::json::Json;
use reshuffle_obs::{validate, HistSnapshot, Histogram};
use reshuffle_server::client::{exchange_once, exchange_with_retry, ClientConn, ClientResponse};
use reshuffle_server::{Server, ServerConfig};

struct Args {
    addr: Option<String>,
    requests: usize,
    concurrency: usize,
    scale: usize,
    keep_alive: bool,
    json: bool,
    baseline: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        addr: None,
        requests: 64,
        concurrency: 8,
        scale: 6,
        keep_alive: true,
        json: false,
        baseline: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => out.addr = Some(value()?.clone()),
            "--requests" => out.requests = value()?.parse().map_err(|e| format!("{e}"))?,
            "--concurrency" => out.concurrency = value()?.parse().map_err(|e| format!("{e}"))?,
            "--scale" => out.scale = value()?.parse().map_err(|e| format!("{e}"))?,
            "--no-keep-alive" => out.keep_alive = false,
            "--json" => out.json = true,
            "--baseline" => out.baseline = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if out.scale < 1 || out.scale > 31 {
        return Err("--scale must be in 1..=31".into());
    }
    Ok(out)
}

/// Response phases the driver tells apart (classified from status and
/// the response body's `cache_hit`/`coalesced` flags).
const PHASES: usize = 4;
const PHASE_NAMES: [&str; PHASES] = ["executed", "cache_hit", "coalesced", "shed"];
const EXECUTED: usize = 0;
const CACHE_HIT: usize = 1;
const COALESCED: usize = 2;
const SHED: usize = 3;

/// Router-tier attribution, populated only when responses carry the
/// router's headers (`X-Role: router` on router-originated responses,
/// `X-Backend` on proxied ones).
#[derive(Default)]
struct RoutedTotals {
    seen: bool,
    /// 503s the router answered itself (queue shed, backend down).
    router_shed: u64,
    /// Backend 503s proxied through the router.
    backend_shed: u64,
    /// Responses per `X-Backend` shard index.
    backends: BTreeMap<String, u64>,
}

/// Everything the worker threads count and measure, shared by `Arc`.
#[derive(Default)]
struct Totals {
    next: AtomicUsize,
    /// Connect/socket failures (after the one reconnect retry).
    conn_errors: AtomicUsize,
    /// Responses with an unexpected HTTP status.
    http_errors: AtomicUsize,
    reconnects: AtomicUsize,
    /// Client-observed latency per phase.
    phases: [Histogram; PHASES],
    routed: Mutex<RoutedTotals>,
}

impl Totals {
    /// Attributes one response to the router tier, when its headers say
    /// a router produced or proxied it.
    fn observe_route(&self, response: &ClientResponse) {
        let from_router = response.header("x-role") == Some("router");
        let backend = response.header("x-backend");
        if !from_router && backend.is_none() {
            return;
        }
        let mut routed = self.routed.lock().unwrap();
        routed.seen = true;
        if let Some(shard) = backend {
            *routed.backends.entry(shard.to_string()).or_insert(0) += 1;
            if response.status == 503 {
                routed.backend_shed += 1;
            }
        } else if response.status == 503 {
            routed.router_shed += 1;
        }
    }
}

fn post_body(g: &str, reduce: bool) -> String {
    let mut members = vec![("g", Json::Str(g.to_string()))];
    if reduce {
        members.push(("options", Json::obj(vec![("reduce", Json::obj(vec![]))])));
    }
    let body = Json::obj(members).render();
    format!(
        "POST /synthesize HTTP/1.1\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Which phase a 200 response belongs to, from the flags the server
/// prefixes every `/synthesize` payload with.
fn classify_ok(body: &str) -> usize {
    if body.starts_with("{\"cache_hit\":true") {
        CACHE_HIT
    } else if body.contains("\"coalesced\":true") {
        COALESCED
    } else {
        EXECUTED
    }
}

/// Drives requests `next..total` over a persistent connection,
/// reconnecting when the server closes it; with `keep_alive` off,
/// every request gets a fresh connection.
fn drive(addr: &str, corpus: &[String], totals: &Totals, total: usize, keep_alive: bool) {
    let mut conn: Option<ClientConn> = None;
    let mut connected_before = false;
    loop {
        let i = totals.next.fetch_add(1, Ordering::Relaxed);
        if i >= total {
            return;
        }
        let request = &corpus[i % corpus.len()];
        let t0 = Instant::now();
        // One reconnect retry covers the benign race where the server
        // closed an idle connection as we were writing to it; connect
        // failures surface immediately.
        let outcome = exchange_with_retry(
            &mut conn,
            || ClientConn::connect(addr),
            request.as_bytes(),
            2,
        );
        let elapsed = t0.elapsed();
        match outcome {
            Ok((response, dialed)) => {
                if connected_before {
                    totals.reconnects.fetch_add(dialed, Ordering::Relaxed);
                } else if dialed > 0 {
                    connected_before = true;
                    totals.reconnects.fetch_add(dialed - 1, Ordering::Relaxed);
                }
                totals.observe_route(&response);
                match response.status {
                    200 => totals.phases[classify_ok(&response.body_str())].record(elapsed),
                    503 => totals.phases[SHED].record(elapsed),
                    status => {
                        eprintln!("request {i}: unexpected {status}: {}", response.body_str());
                        totals.http_errors.fetch_add(1, Ordering::Relaxed);
                        conn = None;
                    }
                }
                if !keep_alive {
                    conn = None;
                }
            }
            Err(e) => {
                eprintln!("request {i}: connection error: {e}");
                totals.conn_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// One phase's report row: its count plus client-side percentiles.
fn phase_json(name: &str, snap: &HistSnapshot, baseline: bool) -> Json {
    let us = |v: u64| Json::Num(if baseline { 0.0 } else { v as f64 });
    Json::obj(vec![
        ("phase", Json::Str(name.to_string())),
        ("count", Json::Num(snap.count as f64)),
        ("p50_us", us(snap.quantile(0.50))),
        ("p95_us", us(snap.quantile(0.95))),
        ("p99_us", us(snap.quantile(0.99))),
        ("max_us", us(snap.max_micros)),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Self-host unless pointed at an external server.
    let own = if args.addr.is_none() {
        match Server::start(ServerConfig::new()) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("error: cannot start server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = args
        .addr
        .clone()
        .unwrap_or_else(|| own.as_ref().unwrap().addr().to_string());

    // Traffic mix: complete corpus entries plus one scaled pipeline —
    // highly repetitive, the shape the cache and coalescing serve.
    // `mfig1` is insertion-unresolvable by design; it needs the
    // reduction stage to synthesize at all.
    let mut corpus: Vec<String> = examples::ALL
        .iter()
        .filter(|(name, _)| !examples::PARTIAL.contains(name))
        .map(|(name, src)| post_body(src, *name == "mfig1"))
        .collect();
    corpus.push(post_body(&scaled_pipeline(args.scale), false));
    let corpus = Arc::new(corpus);

    let totals = Arc::new(Totals::default());
    let t0 = Instant::now();
    let threads: Vec<_> = (0..args.concurrency.max(1))
        .map(|_| {
            let (corpus, totals, addr) = (corpus.clone(), totals.clone(), addr.clone());
            let (total, keep_alive) = (args.requests, args.keep_alive);
            std::thread::spawn(move || drive(&addr, &corpus, &totals, total, keep_alive))
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }
    let wall = t0.elapsed();

    let stats = match exchange_once(&addr, b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n") {
        Ok(r) if r.status == 200 => r.body_str(),
        other => {
            eprintln!("error: GET /stats failed: {other:?}");
            return ExitCode::FAILURE;
        }
    };
    // Scrape `/metrics` and hold it to the Prometheus text grammar —
    // every loadgen run doubles as an exposition-format check.
    let metrics_ok =
        match exchange_once(&addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n") {
            Ok(r) if r.status == 200 => match validate(&r.body_str()) {
                Ok(_) => true,
                Err(e) => {
                    eprintln!("error: /metrics failed validation: {e}");
                    false
                }
            },
            other => {
                eprintln!("error: GET /metrics failed: {other:?}");
                false
            }
        };

    let snaps: Vec<HistSnapshot> = totals.phases.iter().map(Histogram::snapshot).collect();
    let ok: u64 = snaps[..SHED].iter().map(|s| s.count).sum();
    let shed = snaps[SHED].count;
    let conn_errors = totals.conn_errors.load(Ordering::Relaxed);
    let http_errors = totals.http_errors.load(Ordering::Relaxed);
    let routed = std::mem::take(&mut *totals.routed.lock().unwrap());

    if args.json {
        // `--baseline` keeps only machine-stable fields: wall-clock
        // values zero out, and cache_hit/coalesced — whose split is a
        // scheduling race — merge into one `cached` phase.
        let phases = if args.baseline {
            let mut cached = snaps[CACHE_HIT].clone();
            cached.merge(&snaps[COALESCED]);
            vec![
                phase_json("executed", &snaps[EXECUTED], true),
                phase_json("cached", &cached, true),
                phase_json("shed", &snaps[SHED], true),
            ]
        } else {
            PHASE_NAMES
                .iter()
                .zip(&snaps)
                .map(|(name, snap)| phase_json(name, snap, false))
                .collect()
        };
        let mut members = vec![
            ("requests", Json::Num(args.requests as f64)),
            ("concurrency", Json::Num(args.concurrency as f64)),
            ("scale", Json::Num(args.scale as f64)),
            ("keep_alive", Json::Bool(args.keep_alive)),
            (
                "wall_ms",
                Json::Num(if args.baseline {
                    0.0
                } else {
                    (wall.as_secs_f64() * 1e3).round()
                }),
            ),
            ("ok", Json::Num(ok as f64)),
            ("shed", Json::Num(shed as f64)),
            (
                "reconnects",
                Json::Num(if args.baseline {
                    0.0
                } else {
                    totals.reconnects.load(Ordering::Relaxed) as f64
                }),
            ),
            ("conn_errors", Json::Num(conn_errors as f64)),
            ("http_errors", Json::Num(http_errors as f64)),
            ("phases", Json::Arr(phases)),
        ];
        // Only when a router answered: direct backend runs keep the
        // exact report schema the committed baseline pins.
        if routed.seen {
            members.push((
                "routed",
                Json::obj(vec![
                    ("router_shed", Json::Num(routed.router_shed as f64)),
                    ("backend_shed", Json::Num(routed.backend_shed as f64)),
                    (
                        "backends",
                        Json::Arr(
                            routed
                                .backends
                                .iter()
                                .map(|(shard, count)| {
                                    Json::obj(vec![
                                        ("backend", Json::Str(shard.clone())),
                                        ("requests", Json::Num(*count as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        println!("{}", Json::obj(members).render());
    } else {
        println!(
            "{} requests in {:.1} ms ({:.0} req/s), {} shed, {} reconnects ({})",
            args.requests,
            wall.as_secs_f64() * 1e3,
            args.requests as f64 / wall.as_secs_f64(),
            shed,
            totals.reconnects.load(Ordering::Relaxed),
            if args.keep_alive {
                "keep-alive"
            } else {
                "connection-per-request"
            },
        );
        for (name, snap) in PHASE_NAMES.iter().zip(&snaps) {
            if snap.count == 0 {
                continue;
            }
            println!(
                "{name:<10} {:>5} requests  p50 {:>8} µs  p95 {:>8} µs  p99 {:>8} µs  max {:>8} µs",
                snap.count,
                snap.quantile(0.50),
                snap.quantile(0.95),
                snap.quantile(0.99),
                snap.max_micros,
            );
        }
        if routed.seen {
            let per_backend: Vec<String> = routed
                .backends
                .iter()
                .map(|(shard, count)| format!("backend {shard}: {count}"))
                .collect();
            println!(
                "routed: {} (router_shed {}, backend_shed {})",
                per_backend.join(", "),
                routed.router_shed,
                routed.backend_shed,
            );
        }
        println!("stats: {stats}");
    }

    if let Some(server) = own {
        if let Err(e) = server.stop() {
            eprintln!("error during shutdown: {e}");
            return ExitCode::FAILURE;
        }
    }
    if conn_errors > 0 || http_errors > 0 {
        eprintln!("error: {conn_errors} connection errors, {http_errors} HTTP errors");
        return ExitCode::FAILURE;
    }
    if !metrics_ok {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
