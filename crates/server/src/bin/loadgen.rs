//! Load driver for `reshuffle-server`: replay corpus plus
//! `scaled_pipeline(n)` traffic at a chosen concurrency and report the
//! service's `/stats`.
//!
//! ```sh
//! loadgen --requests 128 --concurrency 8 --scale 6           # self-hosted
//! loadgen --addr 127.0.0.1:7878 --requests 64                # external
//! ```
//!
//! Without `--addr` the driver starts an in-process server, so one
//! command load-tests a fresh build. Exits nonzero when any request
//! gets an unexpected status (anything except `200`, or `503` shed
//! load, which is counted separately).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use reshuffle_bench::examples::{self, scaled_pipeline};
use reshuffle_server::{Server, ServerConfig};

struct Args {
    addr: Option<String>,
    requests: usize,
    concurrency: usize,
    scale: usize,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        addr: None,
        requests: 64,
        concurrency: 8,
        scale: 6,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => out.addr = Some(value()?.clone()),
            "--requests" => out.requests = value()?.parse().map_err(|e| format!("{e}"))?,
            "--concurrency" => out.concurrency = value()?.parse().map_err(|e| format!("{e}"))?,
            "--scale" => out.scale = value()?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if out.scale < 1 || out.scale > 31 {
        return Err("--scale must be in 1..=31".into());
    }
    Ok(out)
}

/// One blocking HTTP exchange; returns (status, body).
fn exchange(addr: &str, request: &str) -> std::io::Result<(u16, String)> {
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(request.as_bytes())?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn post_body(g: &str, reduce: bool) -> String {
    use reshuffle_bench::json::Json;
    let mut members = vec![("g", Json::Str(g.to_string()))];
    if reduce {
        members.push(("options", Json::obj(vec![("reduce", Json::obj(vec![]))])));
    }
    let body = Json::obj(members).render();
    format!(
        "POST /synthesize HTTP/1.1\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Self-host unless pointed at an external server.
    let own = if args.addr.is_none() {
        match Server::start(ServerConfig::new()) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("error: cannot start server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = args
        .addr
        .clone()
        .unwrap_or_else(|| own.as_ref().unwrap().addr().to_string());

    // Traffic mix: complete corpus entries plus one scaled pipeline —
    // highly repetitive, the shape the cache and coalescing serve.
    // `mfig1` is insertion-unresolvable by design; it needs the
    // reduction stage to synthesize at all.
    let mut corpus: Vec<String> = examples::ALL
        .iter()
        .filter(|(name, _)| !examples::PARTIAL.contains(name))
        .map(|(name, src)| post_body(src, *name == "mfig1"))
        .collect();
    corpus.push(post_body(&scaled_pipeline(args.scale), false));
    let corpus = Arc::new(corpus);

    let next = Arc::new(AtomicUsize::new(0));
    let failures = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..args.concurrency.max(1))
        .map(|_| {
            let (corpus, next, failures, shed, addr) = (
                corpus.clone(),
                next.clone(),
                failures.clone(),
                shed.clone(),
                addr.clone(),
            );
            let total = args.requests;
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    return;
                }
                match exchange(&addr, &corpus[i % corpus.len()]) {
                    Ok((200, _)) => {}
                    Ok((503, _)) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok((status, body)) => {
                        eprintln!("request {i}: unexpected {status}: {body}");
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        eprintln!("request {i}: {e}");
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }
    let wall = t0.elapsed();

    let stats = match exchange(&addr, "GET /stats HTTP/1.1\r\n\r\n") {
        Ok((200, body)) => body,
        other => {
            eprintln!("error: GET /stats failed: {other:?}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} requests in {:.1} ms ({:.0} req/s), {} shed",
        args.requests,
        wall.as_secs_f64() * 1e3,
        args.requests as f64 / wall.as_secs_f64(),
        shed.load(Ordering::Relaxed),
    );
    println!("stats: {stats}");

    if let Some(server) = own {
        if let Err(e) = server.stop() {
            eprintln!("error during shutdown: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failures.load(Ordering::Relaxed) > 0 {
        eprintln!(
            "error: {} failed requests",
            failures.load(Ordering::Relaxed)
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
