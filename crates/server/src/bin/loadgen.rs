//! Load driver for `reshuffle-server`: replay corpus plus
//! `scaled_pipeline(n)` traffic at a chosen concurrency and report the
//! service's `/stats`.
//!
//! ```sh
//! loadgen --requests 128 --concurrency 8 --scale 6           # self-hosted
//! loadgen --addr 127.0.0.1:7878 --requests 64                # external
//! loadgen --requests 64 --no-keep-alive                      # one conn/request
//! ```
//!
//! Without `--addr` the driver starts an in-process server, so one
//! command load-tests a fresh build. Each worker drives one
//! **persistent keep-alive connection** (reconnecting when the server
//! closes it — `Connection: close`, per-connection request cap, or a
//! shed); `--no-keep-alive` falls back to one connection per request.
//! Exits nonzero when any request gets an unexpected status (anything
//! except `200`, or `503` shed load, which is counted separately).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use reshuffle_bench::examples::{self, scaled_pipeline};
use reshuffle_server::{Server, ServerConfig};

struct Args {
    addr: Option<String>,
    requests: usize,
    concurrency: usize,
    scale: usize,
    keep_alive: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        addr: None,
        requests: 64,
        concurrency: 8,
        scale: 6,
        keep_alive: true,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => out.addr = Some(value()?.clone()),
            "--requests" => out.requests = value()?.parse().map_err(|e| format!("{e}"))?,
            "--concurrency" => out.concurrency = value()?.parse().map_err(|e| format!("{e}"))?,
            "--scale" => out.scale = value()?.parse().map_err(|e| format!("{e}"))?,
            "--no-keep-alive" => out.keep_alive = false,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if out.scale < 1 || out.scale > 31 {
        return Err("--scale must be in 1..=31".into());
    }
    Ok(out)
}

/// One client end of a keep-alive connection: sends requests and reads
/// `Content-Length`-framed responses without waiting for EOF, so the
/// socket can carry the next request.
struct ClientConn {
    reader: BufReader<TcpStream>,
}

impl ClientConn {
    fn connect(addr: &str) -> io::Result<ClientConn> {
        Ok(ClientConn {
            reader: BufReader::new(TcpStream::connect(addr)?),
        })
    }

    /// One request/response exchange. Returns
    /// `(status, body, server_closes)`.
    fn exchange(&mut self, request: &str) -> io::Result<(u16, String, bool)> {
        let mut stream = self.reader.get_ref();
        stream.write_all(request.as_bytes())?;

        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the response",
            ));
        }
        let status = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside response headers",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    close = true;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, String::from_utf8_lossy(&body).into_owned(), close))
    }
}

/// One exchange over a fresh short-lived connection (asks the server
/// to close, so it also works against keep-alive servers).
fn exchange_once(addr: &str, request: &str) -> io::Result<(u16, String)> {
    let mut conn = ClientConn::connect(addr)?;
    let (status, body, _) = conn.exchange(request)?;
    Ok((status, body))
}

fn post_body(g: &str, reduce: bool) -> String {
    use reshuffle_bench::json::Json;
    let mut members = vec![("g", Json::Str(g.to_string()))];
    if reduce {
        members.push(("options", Json::obj(vec![("reduce", Json::obj(vec![]))])));
    }
    let body = Json::obj(members).render();
    format!(
        "POST /synthesize HTTP/1.1\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Drives requests `next..total` over a persistent connection,
/// reconnecting when the server closes it; with `keep_alive` off,
/// every request gets a fresh connection.
#[allow(clippy::too_many_arguments)]
fn drive(
    addr: &str,
    corpus: &[String],
    next: &AtomicUsize,
    total: usize,
    keep_alive: bool,
    failures: &AtomicUsize,
    shed: &AtomicUsize,
    reconnects: &AtomicUsize,
) {
    let mut conn: Option<ClientConn> = None;
    let mut connected_before = false;
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= total {
            return;
        }
        let request = &corpus[i % corpus.len()];
        // One reconnect retry covers the benign race where the server
        // closed an idle connection as we were writing to it.
        let mut attempts = 0;
        let outcome = loop {
            attempts += 1;
            let c = match conn.as_mut() {
                Some(c) => c,
                None => match ClientConn::connect(addr) {
                    Ok(c) => {
                        if connected_before {
                            reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        connected_before = true;
                        conn.insert(c)
                    }
                    Err(e) => break Err(e),
                },
            };
            match c.exchange(request) {
                Ok(ok) => break Ok(ok),
                Err(e) => {
                    conn = None;
                    if attempts >= 2 {
                        break Err(e);
                    }
                }
            }
        };
        match outcome {
            Ok((200, _, close)) => {
                if close || !keep_alive {
                    conn = None;
                }
            }
            Ok((503, _, close)) => {
                shed.fetch_add(1, Ordering::Relaxed);
                if close || !keep_alive {
                    conn = None;
                }
            }
            Ok((status, body, _)) => {
                eprintln!("request {i}: unexpected {status}: {body}");
                failures.fetch_add(1, Ordering::Relaxed);
                conn = None;
            }
            Err(e) => {
                eprintln!("request {i}: {e}");
                failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Self-host unless pointed at an external server.
    let own = if args.addr.is_none() {
        match Server::start(ServerConfig::new()) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("error: cannot start server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = args
        .addr
        .clone()
        .unwrap_or_else(|| own.as_ref().unwrap().addr().to_string());

    // Traffic mix: complete corpus entries plus one scaled pipeline —
    // highly repetitive, the shape the cache and coalescing serve.
    // `mfig1` is insertion-unresolvable by design; it needs the
    // reduction stage to synthesize at all.
    let mut corpus: Vec<String> = examples::ALL
        .iter()
        .filter(|(name, _)| !examples::PARTIAL.contains(name))
        .map(|(name, src)| post_body(src, *name == "mfig1"))
        .collect();
    corpus.push(post_body(&scaled_pipeline(args.scale), false));
    let corpus = Arc::new(corpus);

    let next = Arc::new(AtomicUsize::new(0));
    let failures = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));
    let reconnects = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..args.concurrency.max(1))
        .map(|_| {
            let (corpus, next, failures, shed, reconnects, addr) = (
                corpus.clone(),
                next.clone(),
                failures.clone(),
                shed.clone(),
                reconnects.clone(),
                addr.clone(),
            );
            let (total, keep_alive) = (args.requests, args.keep_alive);
            std::thread::spawn(move || {
                drive(
                    &addr,
                    &corpus,
                    &next,
                    total,
                    keep_alive,
                    &failures,
                    &shed,
                    &reconnects,
                )
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }
    let wall = t0.elapsed();

    let stats = match exchange_once(&addr, "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n") {
        Ok((200, body)) => body,
        other => {
            eprintln!("error: GET /stats failed: {other:?}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} requests in {:.1} ms ({:.0} req/s), {} shed, {} reconnects ({})",
        args.requests,
        wall.as_secs_f64() * 1e3,
        args.requests as f64 / wall.as_secs_f64(),
        shed.load(Ordering::Relaxed),
        reconnects.load(Ordering::Relaxed),
        if args.keep_alive {
            "keep-alive"
        } else {
            "connection-per-request"
        },
    );
    println!("stats: {stats}");

    if let Some(server) = own {
        if let Err(e) = server.stop() {
            eprintln!("error during shutdown: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failures.load(Ordering::Relaxed) > 0 {
        eprintln!(
            "error: {} failed requests",
            failures.load(Ordering::Relaxed)
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
