//! The stage-typed pipeline builder.
//!
//! [`Pipeline::from_g`] / [`Pipeline::from_stg`] start a typestate
//! chain `Parsed -> Expanded -> Reduced -> Resolved -> Synthesized`:
//! each stage owns that point's artifacts for inspection, each
//! transition takes exactly that stage's options, and orderings the
//! paper's flow forbids (reducing or resolving a specification whose
//! handshake expansion decision has not been made) are not expressible
//! — `reduce` simply does not exist on [`Parsed`].
//!
//! For a *partial* specification, [`Parsed::expand`] enumerates the
//! reshuffling lattice and the chain carries every surviving candidate
//! forward; the ranked selection (state signals inserted, literal
//! estimate, timed cycle) happens in [`Resolved::synthesize`], exactly
//! as in the paper's flow, so a stage-by-stage chain and the
//! [`Parsed::run`] shortcut produce identical results.

use std::sync::Mutex;
use std::time::Instant;

use reshuffle_handshake::{expand_handshakes_stats, ExpansionOptions, HandshakeError};
use reshuffle_obs::{FieldVal, SpanCtx};
use reshuffle_petri::{canonical_fingerprint, parse_g, prereduce, Stg, DEFAULT_STATE_BUDGET};
use reshuffle_reduce::{MoveStep, ReduceOptions};
use reshuffle_sg::csc::analyze_csc;
use reshuffle_sg::props::speed_independence;
use reshuffle_sg::{build_state_graph_stats, BuildOptions, StateGraph};
use reshuffle_synth::{
    literal_estimate, resolve_csc_analyzed, synthesize_complex_gates, synthesize_gc,
    verify_against_sg, CscOptions, Netlist,
};
use reshuffle_timing::{simulate, DelayModel, SimOptions};

use crate::cache::{mix, SynthCache};
use crate::diag::{Diagnostics, SgCounts, Stage};
use crate::{ImplStyle, PipelineError, PipelineOptions, Result, Synthesis};

/// Entry points of the stage-typed builder.
///
/// # Stop-at-state-graph inspection
///
/// Every stage exposes its artifact, so a caller can stop anywhere —
/// here after the state graph is built — and still continue the same
/// chain to a netlist:
///
/// ```
/// use reshuffle::{ImplStyle, Pipeline};
///
/// # fn main() -> Result<(), reshuffle::PipelineError> {
/// let src = ".model xyz\n.inputs x\n.outputs y z\n.graph\n\
///            x+ y+\ny+ z+\nz+ x-\nx- y-\ny- z-\nz- x+\n\
///            .marking { <z-,x+> }\n.end\n";
/// let expanded = Pipeline::from_g(src)?.complete()?;
/// assert_eq!(expanded.state_graph().num_states(), 6); // inspect ...
///
/// let done = expanded
///     .skip_reduce()
///     .resolve(&Default::default())?
///     .synthesize(ImplStyle::ComplexGate)?; // ... then keep going.
/// assert_eq!(done.netlist().signals().len(), 3);
/// assert!(done.diagnostics().total_wall().as_nanos() > 0);
/// # Ok(())
/// # }
/// ```
///
/// # Partial-specification expansion
///
/// A partial spec (open `.handshake` channel) must go through
/// [`Parsed::expand`]; the candidates ride the chain and the best one
/// is selected at [`Resolved::synthesize`]:
///
/// ```
/// use reshuffle::{ImplStyle, Pipeline};
///
/// # fn main() -> Result<(), reshuffle::PipelineError> {
/// let src = ".model pcreq\n.inputs Ack\n.outputs Req Go\n.handshake Req Ack\n\
///            .graph\nReq~ Ack~\nAck~ Go+\nGo+ Go-\nGo- Req~\n\
///            .marking { <Go-,Req~> }\n.end\n";
/// let expanded = Pipeline::from_g(src)?.expand(&Default::default())?;
/// assert!(expanded.num_candidates() >= 2); // the reshuffling lattice
///
/// let done = expanded
///     .skip_reduce()
///     .resolve(&Default::default())?
///     .synthesize(ImplStyle::ComplexGate)?;
/// // The ranked selection committed the winning reshuffling.
/// assert_eq!(
///     done.synthesis().expansion,
///     ["Go+ -> Req-".to_string(), "Go- -> Ack-".to_string()],
/// );
/// # Ok(())
/// # }
/// ```
///
/// The one-call shortcut is [`Parsed::run`]; cache-backed runs are in
/// the [`SynthCache`] docs.
#[non_exhaustive]
pub struct Pipeline;

impl Pipeline {
    /// Parses `.g` source text and starts a pipeline on it.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Parse`] when the source is malformed.
    pub fn from_g(g_source: &str) -> Result<Parsed> {
        let t = Instant::now();
        let stg = parse_g(g_source)?;
        let mut parsed = Pipeline::from_stg_owned(stg);
        parsed
            .ctx
            .diag
            .record(Stage::Parse, t.elapsed(), None, None, None);
        Ok(parsed)
    }

    /// Starts a pipeline on an already-parsed specification.
    pub fn from_stg(stg: &Stg) -> Parsed {
        Pipeline::from_stg_owned(stg.clone())
    }

    /// [`Pipeline::from_stg`] for callers that also pre-built the
    /// specification's state graph (`sg` must be the state graph of
    /// `stg`); the chain will not rebuild it.
    pub fn from_parts(stg: Stg, sg: StateGraph) -> Parsed {
        let mut parsed = Pipeline::from_stg_owned(stg);
        parsed.sg = Some(sg);
        parsed
    }

    fn from_stg_owned(stg: Stg) -> Parsed {
        let spec_fp = canonical_fingerprint(&stg);
        Parsed {
            stg,
            sg: None,
            ctx: Ctx {
                spec_fp,
                opts_hash: 0,
                cand_hash: 0,
                delays: (2.0, 1.0),
                selecting: false,
                prereduce: true,
                state_budget: DEFAULT_STATE_BUDGET,
                diag: Diagnostics::default(),
                cache: None,
                cand_cache: None,
                span: SpanCtx::default(),
            },
        }
    }
}

/// State threaded through every stage of one pipeline.
#[derive(Debug)]
struct Ctx {
    /// Canonical fingerprint of the *input* specification.
    spec_fp: u64,
    /// Hash of the option trail committed so far (cache key half).
    opts_hash: u64,
    /// The *per-candidate* option trail: the same stages hashed as a
    /// complete-specification chain would hash them. Mixed with each
    /// candidate's own fingerprint it reproduces the key a standalone
    /// run of that candidate uses, so lattice siblings and standalone
    /// runs share one cache entry per candidate.
    cand_hash: u64,
    /// (input, gate) delays for the final candidate ranking — set by
    /// the reduce stage, defaulted to the Table 1/2 model otherwise.
    delays: (f64, f64),
    /// True when several expansion candidates are still pending the
    /// ranked selection (per-candidate failures are soft until then).
    selecting: bool,
    /// Structural pre-reduction at the expansion/completeness gate
    /// (committed into the option trail by that transition).
    prereduce: bool,
    /// Explored-state cap for state-graph builds the pipeline runs.
    state_budget: usize,
    diag: Diagnostics,
    /// Trace context: stage transitions emit `stage.*` spans under it
    /// and state-graph builds emit BFS child spans. Disabled by default.
    span: SpanCtx,
    cache: Option<SynthCache>,
    /// The same cache, kept for *candidate-level* sharing even when
    /// [`Parsed::run`] has already claimed `cache` for the whole-run
    /// key (it must not be consulted twice at that level).
    cand_cache: Option<SynthCache>,
}

/// One in-flight refinement of the specification.
#[derive(Debug)]
struct Candidate {
    stg: Stg,
    sg: StateGraph,
    /// Canonical fingerprint of the candidate as it entered the chain
    /// (post-expansion, pre-reduce) — half of its shared cache key.
    fp: u64,
    choices: Vec<String>,
    moves: Vec<MoveStep>,
    inserted: Vec<String>,
    /// CSC conflict count if a stage already established it.
    known_conflicts: Option<usize>,
}

type CandResult = Result<Candidate>;

/// Applies one stage's work to every live candidate, in parallel when
/// several are live (slots that already failed pass through untouched;
/// results keep their slot order, so the chain stays deterministic).
fn stage_map<T, F>(cands: Vec<CandResult>, f: F) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(usize, Candidate) -> Result<T> + Sync,
{
    let live = cands.iter().filter(|c| c.is_ok()).count();
    if live <= 1 {
        return cands
            .into_iter()
            .enumerate()
            .map(|(i, c)| c.and_then(|c| f(i, c)))
            .collect();
    }
    let n = cands.len();
    let queue: Mutex<Vec<(usize, CandResult)>> =
        Mutex::new(cands.into_iter().enumerate().collect());
    let out: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1)
        .min(live);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some((i, c)) = queue.lock().unwrap().pop() else {
                    break;
                };
                *out[i].lock().unwrap() = Some(c.and_then(|c| f(i, c)));
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("every slot computed"))
        .collect()
}

/// Enforces the per-stage failure policy: while candidates are pending
/// selection a failure is soft until *every* candidate has failed (the
/// first failure, in enumeration order, is then representative — the
/// same error the one-call pipeline reported); outside selection the
/// single candidate's failure is the stage's failure.
fn enforce_live<T>(cands: &[Result<T>]) -> Result<()> {
    match cands.iter().find_map(|c| c.as_ref().err()) {
        Some(first) if cands.iter().all(|c| c.is_err()) => Err(first.clone()),
        _ => Ok(()),
    }
}

/// Rejects specifications that are not speed-independent, with the
/// violation-witness count the legacy facade reported.
fn gate_speed_independence(sg: &StateGraph) -> Result<()> {
    let si = speed_independence(sg);
    if si.is_speed_independent() {
        Ok(())
    } else {
        Err(PipelineError::NotSpeedIndependent {
            violations: si.nondeterminism.len()
                + si.noncommutativity.len()
                + si.nonpersistency.len(),
        })
    }
}

// --- option-trail hashing -------------------------------------------
//
// Each staged transition commits its options into the trail with the
// helper matching its stage; `options_key` replays the same sequence
// from a flat `PipelineOptions`, so `run()` can test the cache *before*
// doing any work while a manual chain arrives at the identical key.

fn mix_prereduce(h: u64, enabled: bool) -> u64 {
    mix(h, "prereduce", &[enabled as u64])
}

fn mix_expand(h: u64, opts: Option<&ExpansionOptions>) -> u64 {
    match opts {
        Some(e) => mix(h, "expand", &[e.max_reshufflings as u64]),
        None => mix(h, "complete", &[]),
    }
}

fn mix_reduce(h: u64, opts: Option<&ReduceOptions>) -> u64 {
    match opts {
        Some(r) => mix(
            h,
            "reduce",
            &[
                r.max_cycle_time.is_some() as u64,
                r.max_cycle_time.unwrap_or(0.0).to_bits(),
                r.max_moves as u64,
                r.max_expansions as u64,
                r.input_delay.to_bits(),
                r.gate_delay.to_bits(),
            ],
        ),
        None => mix(h, "skip_reduce", &[]),
    }
}

fn mix_resolve(h: u64, opts: &CscOptions) -> u64 {
    mix(
        h,
        "resolve",
        &[opts.max_signals as u64, opts.rank_pool as u64],
    )
}

fn mix_synthesize(h: u64, style: ImplStyle, verify: bool) -> u64 {
    let style_tag = match style {
        ImplStyle::ComplexGate => 0u64,
        ImplStyle::GeneralizedC => 1u64,
    };
    mix(h, "synthesize", &[style_tag, verify as u64])
}

/// The cache key a [`Parsed::run`] with these options will use.
fn options_key(spec_fp: u64, opts: &PipelineOptions) -> u64 {
    let mut h = 0u64;
    h = mix_prereduce(h, opts.prereduce);
    h = mix_expand(h, opts.expand.as_ref());
    h = mix_reduce(h, opts.reduce.as_ref());
    h = mix_resolve(h, &opts.csc);
    h = mix_synthesize(h, opts.style, !opts.skip_verify);
    mix(spec_fp, "key", &[h])
}

/// The [`SynthCache`](crate::SynthCache) key a [`Parsed::run`] of
/// `spec` under `opts` will look up and fill:
/// [`canonical_fingerprint`] of the spec mixed with the full option
/// trail. Callers that deduplicate work *before* starting a pipeline
/// (like the `reshuffle-server` single-flight registry) key their
/// in-flight table with this.
pub fn run_cache_key(spec: &Stg, opts: &PipelineOptions) -> u64 {
    options_key(canonical_fingerprint(spec), opts)
}

/// [`run_cache_key`] computed straight from `.g` source, without
/// running any pipeline stage. Front tiers that route by content
/// (the `reshuffle-server` router computes `key % N` to pick a
/// backend shard) use this so the routing decision agrees exactly
/// with the cache key every backend will derive for the same spec and
/// options.
///
/// # Errors
///
/// [`PipelineError::Parse`] when the source is not a well-formed `.g`
/// specification.
pub fn source_cache_key(g: &str, opts: &PipelineOptions) -> Result<u64> {
    let spec = parse_g(g).map_err(PipelineError::Parse)?;
    Ok(run_cache_key(&spec, opts))
}

// --- Parsed ----------------------------------------------------------

/// A parsed specification: the start of the stage chain.
#[derive(Debug)]
pub struct Parsed {
    stg: Stg,
    sg: Option<StateGraph>,
    ctx: Ctx,
}

impl Parsed {
    /// The parsed specification.
    pub fn stg(&self) -> &Stg {
        &self.stg
    }

    /// True when the specification is partial (open `.handshake`
    /// channels or toggle events) and must go through [`Parsed::expand`].
    pub fn is_partial(&self) -> bool {
        self.stg.is_partial()
    }

    /// Diagnostics recorded so far (parse wall time).
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.ctx.diag
    }

    /// Attaches a synthesis cache: [`Parsed::run`] will serve repeated
    /// identical runs from it, and a manual chain will consult it at
    /// [`Resolved::synthesize`].
    pub fn with_cache(mut self, cache: &SynthCache) -> Parsed {
        self.ctx.cache = Some(cache.clone());
        self.ctx.cand_cache = Some(cache.clone());
        self
    }

    /// Attaches a trace context: every subsequent stage transition
    /// emits a `stage.*` span under it, state-graph builds emit
    /// `bfs.markings`/`bfs.encode` child spans, and cache consultations
    /// emit `cache.lookup` spans. Tracing is observation only — it
    /// never changes what the pipeline produces.
    pub fn with_trace(mut self, span: SpanCtx) -> Parsed {
        self.ctx.span = span;
        self
    }

    /// Enables or disables structural pre-reduction at the
    /// expansion/completeness gate (on by default; the flag is part of
    /// the option trail either way). See
    /// [`prereduce`](reshuffle_petri::structural::prereduce).
    pub fn with_prereduce(mut self, enabled: bool) -> Parsed {
        self.ctx.prereduce = enabled;
        self
    }

    /// Replaces the explored-state cap for state-graph builds this
    /// chain runs ([`DEFAULT_STATE_BUDGET`] by default). Not part of
    /// the option trail: the budget bounds work, it does not change
    /// the artifact.
    pub fn with_state_budget(mut self, budget: usize) -> Parsed {
        self.ctx.state_budget = budget;
        self
    }

    /// Certifies the specification complete and enters the expansion
    /// stage as a no-op: the only way past this point without
    /// committing expansion options.
    ///
    /// # Errors
    ///
    /// * [`PipelineError::Expand`] ([`HandshakeError::NotExpanded`])
    ///   when the specification is in fact partial;
    /// * [`PipelineError::StateGraph`] when it has no state graph;
    /// * [`PipelineError::NotSpeedIndependent`] when it violates speed
    ///   independence.
    pub fn complete(mut self) -> Result<Expanded> {
        self.ctx.opts_hash = mix_prereduce(self.ctx.opts_hash, self.ctx.prereduce);
        self.ctx.opts_hash = mix_expand(self.ctx.opts_hash, None);
        self.complete_inner()
    }

    /// The complete-specification passthrough, shared by
    /// [`Parsed::complete`] and [`Parsed::expand`]: does the work but
    /// leaves the option trail to the caller (each public transition
    /// mixes exactly its own tag).
    fn complete_inner(mut self) -> Result<Expanded> {
        let t = Instant::now();
        let sp = self.ctx.span.span("stage.expand");
        if self.stg.is_partial() {
            return Err(PipelineError::Expand(HandshakeError::NotExpanded));
        }
        let (sg, counts) = match self.sg.take() {
            Some(sg) => {
                // A pre-built graph skips pre-reduction: its states
                // reference the caller's exact net.
                let counts = SgCounts::of(&sg);
                (sg, counts)
            }
            None => {
                if self.ctx.prereduce {
                    let stats = prereduce(&mut self.stg)?;
                    self.ctx.diag.prereduce_places_removed += stats.places_removed as u64;
                    self.ctx.diag.prereduce_transitions_removed += stats.transitions_removed as u64;
                }
                let build_opts = BuildOptions {
                    state_budget: self.ctx.state_budget,
                    ..Default::default()
                };
                let (sg, stats) =
                    build_state_graph_stats(&self.stg, &build_opts.with_span(sp.ctx()))?;
                (sg, SgCounts::of_build(&stats))
            }
        };
        gate_speed_independence(&sg)?;
        let mut ctx = self.ctx;
        ctx.selecting = false;
        ctx.cand_hash = mix_expand(mix_prereduce(0, ctx.prereduce), None);
        ctx.diag
            .record(Stage::Expand, t.elapsed(), Some(counts), Some(1), Some(0));
        sp.end(&[
            ("states", FieldVal::U64(counts.states.unwrap_or(0) as u64)),
            ("arcs", FieldVal::U64(counts.arcs.unwrap_or(0) as u64)),
        ]);
        let fp = ctx.spec_fp;
        Ok(Expanded {
            cands: vec![Ok(Candidate {
                stg: self.stg,
                sg,
                fp,
                choices: Vec::new(),
                moves: Vec::new(),
                inserted: Vec::new(),
                known_conflicts: None,
            })],
            ctx,
        })
    }

    /// Runs the Section 3 handshake-expansion stage. For a partial
    /// specification this enumerates the reshuffling lattice and
    /// carries every surviving candidate forward (the ranked selection
    /// happens in [`Resolved::synthesize`]); a complete specification
    /// passes through untouched.
    ///
    /// # Errors
    ///
    /// * [`PipelineError::Expand`] when enumeration fails (malformed
    ///   channels, no feasible reshuffling);
    /// * the [`Parsed::complete`] errors for complete inputs.
    pub fn expand(mut self, opts: &ExpansionOptions) -> Result<Expanded> {
        self.ctx.opts_hash = mix_prereduce(self.ctx.opts_hash, self.ctx.prereduce);
        self.ctx.opts_hash = mix_expand(self.ctx.opts_hash, Some(opts));
        if !self.stg.is_partial() {
            // Identity on complete specifications — the trail above
            // still records that the expansion stage was configured.
            return self.complete_inner();
        }
        let t = Instant::now();
        let sp = self.ctx.span.span("stage.expand");
        let expansion = expand_handshakes_stats(&self.stg, opts)?;
        let enumerated = expansion.reshufflings.len();
        let pruned = expansion.stats.pruned();
        self.ctx.diag.lattice_prefix_hits = expansion.stats.prefix_hits;
        let cands: Vec<CandResult> = expansion
            .reshufflings
            .into_iter()
            .map(|r| {
                gate_speed_independence(&r.sg)?;
                // The candidate's own canonical fingerprint keys its
                // shared cache slot — identical to a standalone run of
                // the same complete STG.
                let fp = canonical_fingerprint(&r.stg);
                Ok(Candidate {
                    stg: r.stg,
                    sg: r.sg,
                    fp,
                    choices: r.choices,
                    moves: Vec::new(),
                    inserted: Vec::new(),
                    known_conflicts: None,
                })
            })
            .collect();
        enforce_live(&cands)?;
        let counts = cands
            .iter()
            .find_map(|c| c.as_ref().ok())
            .map(|c| SgCounts::of(&c.sg));
        let mut ctx = self.ctx;
        ctx.selecting = true;
        // Candidates continue as complete specifications from here on.
        ctx.cand_hash = mix_expand(mix_prereduce(0, ctx.prereduce), None);
        ctx.diag.record(
            Stage::Expand,
            t.elapsed(),
            counts,
            Some(enumerated),
            Some(pruned),
        );
        sp.end(&[
            ("candidates", FieldVal::U64(enumerated as u64)),
            ("pruned", FieldVal::U64(pruned as u64)),
        ]);
        Ok(Expanded { cands, ctx })
    }

    /// The one-call shortcut: runs the whole chain under a flat
    /// [`PipelineOptions`], reproducing the legacy free functions —
    /// `expand` set routes through [`Parsed::expand`], `reduce` set
    /// through [`Expanded::reduce`], and an attached [`SynthCache`] is
    /// consulted *before* any stage runs (a hit records no stage
    /// timings).
    ///
    /// # Errors
    ///
    /// Any stage failure, tagged by [`PipelineError`] variant.
    pub fn run(mut self, opts: &PipelineOptions) -> Result<Synthesized> {
        self.ctx.prereduce = opts.prereduce;
        self.ctx.state_budget = opts.state_budget;
        let cache = self.ctx.cache.take();
        let key = options_key(self.ctx.spec_fp, opts);
        if let Some(cache) = &cache {
            let sp = self.ctx.span.span("cache.lookup");
            let t = Instant::now();
            if let Some(synthesis) = cache.lookup(key) {
                let mut diag = self.ctx.diag;
                diag.cache_hits += 1;
                // The hit path is not free: surface the lookup latency
                // as a pseudo-stage instead of recording nothing.
                diag.record(Stage::CacheHit, t.elapsed(), None, None, None);
                sp.end(&[("hit", FieldVal::U64(1))]);
                return Ok(Synthesized { synthesis, diag });
            }
            self.ctx.diag.cache_misses += 1;
            sp.end(&[("hit", FieldVal::U64(0))]);
        }
        let expanded = match &opts.expand {
            Some(eopts) => self.expand(eopts)?,
            None => self.complete()?,
        };
        let reduced = match &opts.reduce {
            Some(ropts) => expanded.reduce(ropts)?,
            None => expanded.skip_reduce(),
        };
        let resolved = reduced.resolve(&opts.csc)?;
        let done = if opts.skip_verify {
            resolved.synthesize_unverified(opts.style)?
        } else {
            resolved.synthesize(opts.style)?
        };
        if let Some(cache) = cache {
            cache.insert(key, done.synthesis.clone());
        }
        Ok(done)
    }
}

// --- Expanded --------------------------------------------------------

/// Past the expansion decision: one complete specification, or — for
/// partial inputs — the surviving reshuffling candidates.
#[derive(Debug)]
pub struct Expanded {
    cands: Vec<CandResult>,
    ctx: Ctx,
}

impl Expanded {
    fn primary(&self) -> &Candidate {
        self.cands
            .iter()
            .find_map(|c| c.as_ref().ok())
            .expect("stage invariant: at least one live candidate")
    }

    /// The (primary candidate's) complete STG. For a partial input this
    /// is the first surviving reshuffling — the eager extreme unless it
    /// was pruned.
    pub fn stg(&self) -> &Stg {
        &self.primary().stg
    }

    /// The (primary candidate's) state graph.
    pub fn state_graph(&self) -> &StateGraph {
        &self.primary().sg
    }

    /// Number of candidates still in the running.
    pub fn num_candidates(&self) -> usize {
        self.cands.iter().filter(|c| c.is_ok()).count()
    }

    /// The live candidates: each one's complete STG and the ordering
    /// choices that produced it (empty for the eager extreme and for
    /// complete inputs).
    pub fn candidates(&self) -> impl Iterator<Item = (&Stg, &[String])> {
        self.cands
            .iter()
            .filter_map(|c| c.as_ref().ok())
            .map(|c| (&c.stg, c.choices.as_slice()))
    }

    /// Diagnostics recorded so far.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.ctx.diag
    }

    /// Skips the opt-in concurrency-reduction stage.
    pub fn skip_reduce(mut self) -> Reduced {
        self.ctx.opts_hash = mix_reduce(self.ctx.opts_hash, None);
        self.ctx.cand_hash = mix_reduce(self.ctx.cand_hash, None);
        Reduced {
            cands: self.cands,
            ctx: self.ctx,
        }
    }

    /// Runs the Section 4 concurrency-reduction stage on every live
    /// candidate (before CSC resolution, so serializations that
    /// dissolve conflicts are preferred over state-signal insertion).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Reduce`] when the search fails — e.g. the
    /// cycle-time bound excludes every reduction (soft per candidate
    /// while a selection is pending).
    pub fn reduce(mut self, opts: &ReduceOptions) -> Result<Reduced> {
        let t = Instant::now();
        let sp = self.ctx.span.span("stage.reduce");
        self.ctx.opts_hash = mix_reduce(self.ctx.opts_hash, Some(opts));
        self.ctx.cand_hash = mix_reduce(self.ctx.cand_hash, Some(opts));
        self.ctx.delays = (opts.input_delay, opts.gate_delay);
        let outcomes = stage_map(self.cands, |_, c| {
            let r = reshuffle_reduce::reduce_concurrency_from(&c.stg, c.sg, opts)
                .map_err(PipelineError::Reduce)?;
            Ok((
                Candidate {
                    stg: r.stg,
                    sg: r.sg,
                    fp: c.fp,
                    moves: r.steps,
                    known_conflicts: Some(r.csc_conflicts),
                    choices: c.choices,
                    inserted: c.inserted,
                },
                r.scored,
                r.pruned,
            ))
        });
        enforce_live(&outcomes)?;
        let mut scored = 0usize;
        let mut pruned = 0usize;
        let cands: Vec<CandResult> = outcomes
            .into_iter()
            .map(|o| {
                o.map(|(c, s, p)| {
                    scored += s;
                    pruned += p;
                    c
                })
            })
            .collect();
        let counts = cands
            .iter()
            .find_map(|c| c.as_ref().ok())
            .map(|c| SgCounts::of(&c.sg));
        self.ctx.diag.record(
            Stage::Reduce,
            t.elapsed(),
            counts,
            Some(scored),
            Some(pruned),
        );
        sp.end(&[
            ("scored", FieldVal::U64(scored as u64)),
            ("pruned", FieldVal::U64(pruned as u64)),
        ]);
        Ok(Reduced {
            cands,
            ctx: self.ctx,
        })
    }
}

// --- Reduced ---------------------------------------------------------

/// Past the (possibly skipped) concurrency-reduction stage.
#[derive(Debug)]
pub struct Reduced {
    cands: Vec<CandResult>,
    ctx: Ctx,
}

impl Reduced {
    fn primary(&self) -> &Candidate {
        self.cands
            .iter()
            .find_map(|c| c.as_ref().ok())
            .expect("stage invariant: at least one live candidate")
    }

    /// The (primary candidate's) STG after reduction.
    pub fn stg(&self) -> &Stg {
        &self.primary().stg
    }

    /// The (primary candidate's) state graph after reduction.
    pub fn state_graph(&self) -> &StateGraph {
        &self.primary().sg
    }

    /// The serializing moves the reduction applied to the primary
    /// candidate, with per-move statistics (empty when the stage was
    /// skipped or found nothing to improve).
    pub fn moves(&self) -> &[MoveStep] {
        &self.primary().moves
    }

    /// Diagnostics recorded so far.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.ctx.diag
    }

    /// Resolves remaining CSC conflicts by state-signal insertion
    /// (a no-op for candidates that already satisfy CSC).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Synth`] when the insertion search stalls (soft
    /// per candidate while a selection is pending).
    pub fn resolve(mut self, opts: &CscOptions) -> Result<Resolved> {
        let t = Instant::now();
        let sp = self.ctx.span.span("stage.resolve");
        self.ctx.opts_hash = mix_resolve(self.ctx.opts_hash, opts);
        self.ctx.cand_hash = mix_resolve(self.ctx.cand_hash, opts);
        let outcomes = stage_map(self.cands, |_, c| {
            if c.known_conflicts == Some(0) {
                return Ok((c, 0));
            }
            let Candidate {
                stg,
                sg,
                fp,
                choices,
                moves,
                inserted,
                known_conflicts: _,
            } = c;
            // One analysis serves both the conflict check and the
            // resolver; the resolver never re-analyzes a graph it was
            // handed an analysis for.
            let analysis = analyze_csc(&sg);
            if analysis.has_csc() {
                return Ok((
                    Candidate {
                        stg,
                        sg,
                        fp,
                        choices,
                        moves,
                        inserted,
                        known_conflicts: Some(0),
                    },
                    0,
                ));
            }
            let r =
                resolve_csc_analyzed(&stg, sg, &analysis, opts).map_err(PipelineError::Synth)?;
            Ok((
                Candidate {
                    stg: r.stg,
                    sg: r.sg,
                    fp,
                    inserted: r.inserted,
                    choices,
                    moves,
                    known_conflicts: Some(0),
                },
                r.tried,
            ))
        });
        enforce_live(&outcomes)?;
        let mut tried = 0usize;
        let cands: Vec<CandResult> = outcomes
            .into_iter()
            .map(|o| {
                o.map(|(c, t)| {
                    tried += t;
                    c
                })
            })
            .collect();
        let counts = cands
            .iter()
            .find_map(|c| c.as_ref().ok())
            .map(|c| SgCounts::of(&c.sg));
        self.ctx
            .diag
            .record(Stage::Resolve, t.elapsed(), counts, Some(tried), None);
        sp.end(&[("tried", FieldVal::U64(tried as u64))]);
        Ok(Resolved {
            cands,
            ctx: self.ctx,
        })
    }
}

// --- Resolved --------------------------------------------------------

/// CSC satisfied on every live candidate: ready for logic synthesis.
#[derive(Debug)]
pub struct Resolved {
    cands: Vec<CandResult>,
    ctx: Ctx,
}

impl Resolved {
    fn primary(&self) -> &Candidate {
        self.cands
            .iter()
            .find_map(|c| c.as_ref().ok())
            .expect("stage invariant: at least one live candidate")
    }

    /// The (primary candidate's) STG after any CSC insertions.
    pub fn stg(&self) -> &Stg {
        &self.primary().stg
    }

    /// The (primary candidate's) conflict-free state graph.
    pub fn state_graph(&self) -> &StateGraph {
        &self.primary().sg
    }

    /// State signals inserted into the primary candidate to resolve
    /// CSC (empty when the specification already satisfied it).
    pub fn inserted(&self) -> &[String] {
        &self.primary().inserted
    }

    /// Diagnostics recorded so far.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.ctx.diag
    }

    /// Derives, minimizes and maps the next-state logic in the given
    /// style, verifies the netlist against the specification, and — for
    /// partial inputs — commits the ranked candidate selection (state
    /// signals inserted, then literal estimate, then timed cycle).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Synth`] / [`PipelineError::Timing`] from
    /// synthesis, verification or the ranking simulation.
    pub fn synthesize(self, style: ImplStyle) -> Result<Synthesized> {
        self.finish(style, true)
    }

    /// [`Resolved::synthesize`] without the final
    /// implementation-vs-specification check.
    ///
    /// # Errors
    ///
    /// See [`Resolved::synthesize`].
    pub fn synthesize_unverified(self, style: ImplStyle) -> Result<Synthesized> {
        self.finish(style, false)
    }

    fn finish(mut self, style: ImplStyle, verify: bool) -> Result<Synthesized> {
        let t = Instant::now();
        self.ctx.opts_hash = mix_synthesize(self.ctx.opts_hash, style, verify);
        self.ctx.cand_hash = mix_synthesize(self.ctx.cand_hash, style, verify);
        let key = mix(self.ctx.spec_fp, "key", &[self.ctx.opts_hash]);
        if let Some(cache) = &self.ctx.cache {
            let sp = self.ctx.span.span("cache.lookup");
            let t_lookup = Instant::now();
            if let Some(synthesis) = cache.lookup(key) {
                let mut diag = self.ctx.diag;
                diag.cache_hits += 1;
                // The hit path is not free: surface the lookup latency
                // as a pseudo-stage instead of recording nothing.
                diag.record(Stage::CacheHit, t_lookup.elapsed(), None, None, None);
                sp.end(&[("hit", FieldVal::U64(1))]);
                return Ok(Synthesized { synthesis, diag });
            }
            self.ctx.diag.cache_misses += 1;
            sp.end(&[("hit", FieldVal::U64(0))]);
        }
        let sp = self.ctx.span.span("stage.synthesize");
        let selecting = self.ctx.selecting;
        let (input_delay, gate_delay) = self.ctx.delays;
        // With several expansion candidates in flight, each one's
        // synthesis is shared through the attached cache under the key
        // a *standalone* run of that candidate would use (candidate
        // fingerprint x complete-chain trail) — lattice siblings seen
        // before, in this run or any other against the same cache,
        // skip their synthesis entirely.
        let cand_cache = if selecting {
            self.ctx.cand_cache.clone()
        } else {
            None
        };
        let cand_hash = self.ctx.cand_hash;
        let shared_hits = std::sync::atomic::AtomicU64::new(0);
        let outcomes = stage_map(self.cands, |_, c| {
            let cand_key = mix(c.fp, "key", &[cand_hash]);
            let cycle_of = |synthesis: &Synthesis| -> Result<u64> {
                if !selecting {
                    return Ok(0);
                }
                // Only a pending selection needs the timed cycle;
                // score it under the same delay model the reduce
                // stage optimized.
                let delays = DelayModel::uniform(&synthesis.stg, input_delay, gate_delay);
                let run = simulate(&synthesis.stg, &delays, &SimOptions::default())?;
                Ok(run.period.to_bits())
            };
            if let Some(cache) = &cand_cache {
                if let Some(mut synthesis) = cache.lookup_shared(cand_key) {
                    shared_hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    // The cached entry is choice-agnostic (stored as a
                    // standalone run); re-attach this candidate's
                    // ordering choices.
                    synthesis.expansion = c.choices;
                    let cycle_bits = cycle_of(&synthesis)?;
                    return Ok((synthesis, cycle_bits));
                }
            }
            let netlist = match style {
                ImplStyle::ComplexGate => synthesize_complex_gates(&c.sg)?.netlist,
                ImplStyle::GeneralizedC => synthesize_gc(&c.sg)?.netlist,
            };
            if verify {
                verify_against_sg(&c.sg, &netlist)?;
            }
            let synthesis = Synthesis {
                stg: c.stg,
                sg: c.sg,
                netlist,
                inserted: c.inserted,
                moves: c.moves,
                expansion: c.choices,
            };
            let cycle_bits = cycle_of(&synthesis)?;
            if let Some(cache) = &cand_cache {
                // Store choice-agnostic, exactly as a standalone run of
                // this candidate would have produced it.
                let mut stored = synthesis.clone();
                stored.expansion = Vec::new();
                cache.insert(cand_key, stored);
            }
            Ok((synthesis, cycle_bits))
        });
        self.ctx.diag.shared_candidate_hits +=
            shared_hits.load(std::sync::atomic::Ordering::Relaxed);
        enforce_live(&outcomes)?;

        // The ranked selection: (state signals inserted, literal
        // estimate, timed cycle bits, enumeration index), strictly
        // improving so the earliest candidate wins ties.
        let mut best: Option<((usize, u32, u64, usize), usize)> = None;
        for (i, outcome) in outcomes.iter().enumerate() {
            let Ok((s, cycle_bits)) = outcome else {
                continue;
            };
            let score = (s.inserted.len(), literal_estimate(&s.sg), *cycle_bits, i);
            if !matches!(best, Some((b, _)) if b <= score) {
                best = Some((score, i));
            }
        }
        let (_, winner) = best.expect("enforce_live guarantees a live candidate");
        let ranked = outcomes.iter().filter(|o| o.is_ok()).count();
        let (synthesis, _) = outcomes
            .into_iter()
            .nth(winner)
            .expect("winner index in range")
            .expect("winner is live");

        let mut ctx = self.ctx;
        ctx.diag.record(
            Stage::Synthesize,
            t.elapsed(),
            Some(SgCounts::of(&synthesis.sg)),
            Some(ranked),
            None,
        );
        sp.end(&[("ranked", FieldVal::U64(ranked as u64))]);
        if let Some(cache) = &ctx.cache {
            cache.insert(key, synthesis.clone());
        }
        Ok(Synthesized {
            synthesis,
            diag: ctx.diag,
        })
    }
}

// --- Synthesized -----------------------------------------------------

/// The finished pipeline: the winning synthesis and the diagnostics of
/// the run that produced it.
#[derive(Debug)]
pub struct Synthesized {
    pub(crate) synthesis: Synthesis,
    pub(crate) diag: Diagnostics,
}

impl Synthesized {
    /// The mapped, verified netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.synthesis.netlist
    }

    /// Every artifact of the winning candidate.
    pub fn synthesis(&self) -> &Synthesis {
        &self.synthesis
    }

    /// What the run recorded about itself: per-stage wall times and
    /// counters, plus cache activity.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diag
    }

    /// Consumes the stage, returning the synthesis.
    pub fn into_synthesis(self) -> Synthesis {
        self.synthesis
    }

    /// Consumes the stage, returning synthesis and diagnostics.
    pub fn into_parts(self) -> (Synthesis, Diagnostics) {
        (self.synthesis, self.diag)
    }
}
