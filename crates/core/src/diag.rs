//! Per-stage diagnostics of a pipeline run.
//!
//! Every [`Pipeline`](crate::Pipeline) stage transition appends a
//! [`StageReport`] — wall time, resulting state count, live candidate
//! count and pruned/discarded count — to the [`Diagnostics`] record it
//! threads through to [`Synthesized`](crate::Synthesized). Cache
//! activity of [`SynthCache`](crate::SynthCache) is counted per run in
//! [`Diagnostics::cache_hits`] / [`Diagnostics::cache_misses`]: a run
//! served from the cache records a hit plus a [`Stage::CacheHit`]
//! pseudo-stage whose wall time is the lookup latency — the real
//! stages did not execute, but the hit path is not free.

use std::fmt;
use std::time::Duration;

/// One stage of the staged pipeline, as reported in diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// `.g` parsing ([`Pipeline::from_g`](crate::Pipeline::from_g)).
    Parse,
    /// Handshake expansion / completeness gate
    /// ([`Parsed::expand`](crate::Parsed::expand),
    /// [`Parsed::complete`](crate::Parsed::complete)).
    Expand,
    /// Concurrency reduction ([`Expanded::reduce`](crate::Expanded::reduce)).
    Reduce,
    /// CSC resolution ([`Reduced::resolve`](crate::Reduced::resolve)).
    Resolve,
    /// Logic synthesis, verification and — for partial specifications —
    /// the ranked candidate selection
    /// ([`Resolved::synthesize`](crate::Resolved::synthesize)).
    Synthesize,
    /// Pseudo-stage recorded when the run was served from the synthesis
    /// cache: its wall time is the cache lookup latency. Makes hit-path
    /// cost visible in `/stats` and `/metrics` instead of vanishing.
    CacheHit,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Parse => "parse",
            Stage::Expand => "expand",
            Stage::Reduce => "reduce",
            Stage::Resolve => "resolve",
            Stage::Synthesize => "synthesize",
            Stage::CacheHit => "cache_hit",
        })
    }
}

/// What one executed stage did: how long it took and what it counted.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Which stage ran.
    pub stage: Stage,
    /// Wall time the stage transition took.
    pub wall: Duration,
    /// States of the (primary candidate's) state graph after the stage,
    /// when the stage has one.
    pub states: Option<usize>,
    /// Arcs of that state graph.
    pub arcs: Option<usize>,
    /// Distinct interned markings of that state graph (absent for
    /// graphs derived without markings, e.g. after a serializing
    /// rewrite).
    pub interned_markings: Option<usize>,
    /// Peak breadth-first frontier of the stage's state-graph build —
    /// only present when the stage actually explored a net (the
    /// expansion/completeness gate), not when it transformed an
    /// existing graph.
    pub peak_frontier: Option<usize>,
    /// Stage-specific candidate count: reshufflings enumerated
    /// (expand), serializing moves scored (reduce), insertions tried
    /// (resolve), candidates ranked (synthesize).
    pub candidates: Option<usize>,
    /// Stage-specific prune count: lattice points discarded (expand),
    /// symmetry-dominated moves (reduce).
    pub pruned: Option<usize>,
}

/// Everything a pipeline run recorded about itself.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// Reports of the stages that actually executed, in order. A run
    /// served from the cache records only parse and the
    /// [`Stage::CacheHit`] pseudo-stage.
    pub stages: Vec<StageReport>,
    /// Synthesis-cache hits charged to this run (0 or 1).
    pub cache_hits: u64,
    /// Synthesis-cache misses charged to this run (0 or 1; 0 when no
    /// cache was attached).
    pub cache_misses: u64,
    /// Expansion candidates of this run whose synthesis was served from
    /// the shared cache (lattice siblings previously synthesized —
    /// standalone or by another run against the same
    /// [`SynthCache`](crate::SynthCache)). Always 0 for complete
    /// specifications.
    pub shared_candidate_hits: u64,
    /// Places removed by structural pre-reduction before the state
    /// graph was built (0 when the pass was disabled, skipped, or found
    /// nothing).
    pub prereduce_places_removed: u64,
    /// Transitions (series dummies) removed by structural pre-reduction.
    pub prereduce_transitions_removed: u64,
    /// Lattice-realization restriction products served from the
    /// shared-prefix trie instead of being recomputed. Always 0 for
    /// complete specifications (no lattice is realized).
    pub lattice_prefix_hits: u64,
}

impl Diagnostics {
    /// The report of `stage`, if it executed.
    pub fn stage(&self, stage: Stage) -> Option<&StageReport> {
        self.stages.iter().find(|r| r.stage == stage)
    }

    /// Total wall time across all recorded stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|r| r.wall).sum()
    }

    /// One line per stage, e.g. for CLI reporting.
    pub fn summary(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for r in &self.stages {
            let _ = write!(out, "{:<10} {:>9.1?}", r.stage.to_string(), r.wall);
            if let Some(n) = r.states {
                let _ = write!(out, "  states {n}");
            }
            if let Some(n) = r.arcs {
                let _ = write!(out, "  arcs {n}");
            }
            if let Some(n) = r.interned_markings {
                let _ = write!(out, "  markings {n}");
            }
            if let Some(n) = r.peak_frontier {
                let _ = write!(out, "  frontier {n}");
            }
            if let Some(n) = r.candidates {
                let _ = write!(out, "  candidates {n}");
            }
            if let Some(n) = r.pruned {
                let _ = write!(out, "  pruned {n}");
            }
            out.push('\n');
        }
        if self.cache_hits + self.cache_misses > 0 {
            let _ = writeln!(
                out,
                "cache      {} hit{}, {} miss{}",
                self.cache_hits,
                if self.cache_hits == 1 { "" } else { "s" },
                self.cache_misses,
                if self.cache_misses == 1 { "" } else { "es" },
            );
        }
        if self.shared_candidate_hits > 0 {
            let _ = writeln!(
                out,
                "shared     {} candidate synthesis hit{}",
                self.shared_candidate_hits,
                if self.shared_candidate_hits == 1 {
                    ""
                } else {
                    "s"
                },
            );
        }
        if self.prereduce_places_removed + self.prereduce_transitions_removed > 0 {
            let _ = writeln!(
                out,
                "prereduce  {} places, {} transitions removed",
                self.prereduce_places_removed, self.prereduce_transitions_removed,
            );
        }
        if self.lattice_prefix_hits > 0 {
            let _ = writeln!(
                out,
                "prefix     {} lattice restriction products reused",
                self.lattice_prefix_hits,
            );
        }
        out
    }

    pub(crate) fn record(
        &mut self,
        stage: Stage,
        wall: Duration,
        sg: Option<SgCounts>,
        candidates: Option<usize>,
        pruned: Option<usize>,
    ) {
        let sg = sg.unwrap_or_default();
        self.stages.push(StageReport {
            stage,
            wall,
            states: sg.states,
            arcs: sg.arcs,
            interned_markings: sg.interned_markings,
            peak_frontier: sg.peak_frontier,
            candidates,
            pruned,
        });
    }
}

/// State-graph counters one stage reports: size of the (primary
/// candidate's) graph after the stage, plus the build's peak frontier
/// when the stage explored a net.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SgCounts {
    pub states: Option<usize>,
    pub arcs: Option<usize>,
    pub interned_markings: Option<usize>,
    pub peak_frontier: Option<usize>,
}

impl SgCounts {
    /// Counters of an existing graph (no exploration happened).
    pub fn of(sg: &reshuffle_sg::StateGraph) -> SgCounts {
        SgCounts {
            states: Some(sg.num_states()),
            arcs: Some(sg.num_arcs()),
            interned_markings: (sg.num_interned_markings() > 0).then(|| sg.num_interned_markings()),
            peak_frontier: None,
        }
    }

    /// Counters of a fresh build, including its peak frontier.
    pub fn of_build(stats: &reshuffle_sg::BuildStats) -> SgCounts {
        SgCounts {
            states: Some(stats.states),
            arcs: Some(stats.arcs),
            interned_markings: Some(stats.interned_markings),
            peak_frontier: Some(stats.peak_frontier),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_and_lookup() {
        let mut d = Diagnostics::default();
        d.record(Stage::Parse, Duration::from_micros(10), None, None, None);
        d.record(
            Stage::Expand,
            Duration::from_micros(30),
            Some(SgCounts {
                states: Some(6),
                arcs: Some(9),
                interned_markings: Some(5),
                peak_frontier: Some(2),
            }),
            Some(4),
            Some(2),
        );
        let expand = d.stage(Stage::Expand).unwrap();
        assert_eq!(expand.candidates, Some(4));
        assert_eq!(expand.states, Some(6));
        assert_eq!(expand.arcs, Some(9));
        assert_eq!(expand.interned_markings, Some(5));
        assert_eq!(expand.peak_frontier, Some(2));
        assert!(d.stage(Stage::Reduce).is_none());
        assert_eq!(d.total_wall(), Duration::from_micros(40));
        let s = d.summary();
        assert!(s.contains("expand"), "{s}");
        assert!(s.contains("candidates 4"), "{s}");
        assert!(s.contains("arcs 9"), "{s}");
        assert!(s.contains("markings 5"), "{s}");
        assert!(s.contains("frontier 2"), "{s}");
        assert!(!s.contains("cache"), "{s}");
        d.cache_hits = 1;
        assert!(d.summary().contains("cache      1 hit, 0 misses"));
        d.shared_candidate_hits = 2;
        assert!(d.summary().contains("2 candidate synthesis hits"));
    }
}
