//! Persistent storage for [`SynthCache`]: a compact, versioned binary
//! codec plus the [`CacheStore`] trait that abstracts *where* the
//! encoded bytes live.
//!
//! The codec is deliberately dependency-free (the build container has
//! no network, so no serde): little-endian scalars, length-prefixed
//! strings, and structural records for each cached
//! [`Synthesis`](crate::Synthesis) — the STG as canonical `.g` text
//! (the round-trip-pinned writer), the CSR state graph as its raw
//! parts, and the netlist as its node table. Entries are written
//! sorted by cache key and carry their LRU recency stamps, so
//! `save → load → save` is **byte-identical** and the eviction order
//! survives a process restart.
//!
//! A store holds two artifacts:
//!
//! - the **snapshot** — one whole-cache image, replaced atomically by
//!   [`CacheStore::write`];
//! - the **journal** — an append-only sequence of per-entry records
//!   ([`CacheStore::append`]), each made durable before the append
//!   returns, so a process killed at any point loses no completed
//!   synthesis. [`SynthCache::recover`] loads `snapshot + journal
//!   replay`; [`SynthCache::compact_to`] folds the journal into a
//!   fresh snapshot and clears it. Replay is idempotent (a key present
//!   in both the snapshot and the journal resolves to the journal's
//!   record), which is what makes the compaction crash-window safe: a
//!   crash between the snapshot rename and the journal clear merely
//!   replays entries the snapshot already holds.
//!
//! Every header pins a magic plus a format version; decoding rejects
//! foreign or future bytes with [`io::ErrorKind::InvalidData`] instead
//! of misreading them. Journal records additionally carry a checksum:
//! a torn tail (the one partially written record a mid-append crash
//! can leave) is detected and dropped, while corruption anywhere else
//! is an error.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use reshuffle_petri::{
    parse_g, write_g, Marking, PlaceId, Polarity, Signal, SignalEdge, SignalId, SignalKind,
};
use reshuffle_reduce::MoveStep;
use reshuffle_sg::{EventId, EventInfo, State, StateGraph};
use reshuffle_synth::{GateType, Netlist, Node, NodeId};

use crate::{SynthCache, Synthesis};

/// Magic bytes opening every snapshot: `RSHC` ("reshuffle cache").
const MAGIC: &[u8; 4] = b"RSHC";
/// Magic bytes opening every journal record: `RSHJ` ("… journal").
const JOURNAL_MAGIC: &[u8; 4] = b"RSHJ";
/// Current snapshot/journal format version.
const VERSION: u32 = 1;
/// Bytes of journal-record header ahead of the payload:
/// magic (4) + version (4) + payload length (4) + checksum (8).
const JOURNAL_HEADER_BYTES: usize = 20;

/// Where encoded [`SynthCache`] snapshots and journals live.
///
/// A store holds at most one snapshot ([`CacheStore::write`] replaces
/// it atomically, [`CacheStore::read`] returns the last one written,
/// or `None` when nothing was ever saved) plus one append-only
/// journal ([`CacheStore::append`] adds a durable record,
/// [`CacheStore::read_journal`] returns everything appended since the
/// last [`CacheStore::clear_journal`]). The codecs themselves live on
/// [`SynthCache`] ([`save_to`](SynthCache::save_to) /
/// [`load_from`](SynthCache::load_from) /
/// [`recover`](SynthCache::recover) /
/// [`compact_to`](SynthCache::compact_to)); stores only move opaque
/// bytes, so a new backend (a database blob, an object store) is one
/// small impl away.
///
/// # Worked example
///
/// Fill a cache, persist it, and serve a whole run from the reloaded
/// copy — the O(1) replay a synthesis service does after a restart:
///
/// ```
/// use reshuffle::{CacheStore, MemStore, Pipeline, PipelineOptions, SynthCache};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = ".model xyz\n.inputs x\n.outputs y z\n.graph\n\
///            x+ y+\ny+ z+\nz+ x-\nx- y-\ny- z-\nz- x+\n\
///            .marking { <z-,x+> }\n.end\n";
/// let opts = PipelineOptions::default();
///
/// // One real run fills the cache; save the snapshot.
/// let cache = SynthCache::new();
/// let first = Pipeline::from_g(src)?.with_cache(&cache).run(&opts)?;
/// let store = MemStore::new(); // swap in `FileStore` for a real path
/// cache.save_to(&store)?;
/// assert!(store.read()?.is_some());
///
/// // A fresh process loads the snapshot: the identical key hits.
/// let reloaded = SynthCache::load_from(&store)?;
/// assert_eq!(reloaded.len(), 1);
/// let replay = Pipeline::from_g(src)?.with_cache(&reloaded).run(&opts)?;
/// assert_eq!(replay.diagnostics().cache_hits, 1);
/// assert_eq!(
///     first.netlist().describe(),
///     replay.netlist().describe(),
/// );
/// # Ok(())
/// # }
/// ```
pub trait CacheStore {
    /// Persists one encoded snapshot, replacing any previous one.
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O failure.
    fn write(&self, bytes: &[u8]) -> io::Result<()>;

    /// Returns the last persisted snapshot, or `None` when the store
    /// has never been written (a missing file is not an error).
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O failure.
    fn read(&self) -> io::Result<Option<Vec<u8>>>;

    /// Appends one record to the journal, durably: when this returns
    /// `Ok`, the record survives an immediate process kill or power
    /// loss (for [`FileStore`], the data is fsync'd before returning).
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O failure.
    fn append(&self, record: &[u8]) -> io::Result<()>;

    /// Returns every journal byte appended since the last
    /// [`clear_journal`](CacheStore::clear_journal), or `None` when
    /// the journal is empty or was never written.
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O failure.
    fn read_journal(&self) -> io::Result<Option<Vec<u8>>>;

    /// Discards the journal (called after its entries were compacted
    /// into a snapshot). Clearing an absent journal is not an error.
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O failure.
    fn clear_journal(&self) -> io::Result<()>;
}

/// A [`CacheStore`] backed by files on disk: the snapshot at the
/// configured path, the journal at a `.journal` sibling.
///
/// Snapshot writes go to a `.tmp` sibling first (written and fsync'd),
/// are moved into place with an atomic rename, and the parent
/// directory is fsync'd — so a crash or power loss mid-save never
/// corrupts the previous snapshot *and* a completed save cannot
/// vanish. Journal appends fsync the journal file before returning
/// (plus the directory once, when the file is first created). Missing
/// files read as `None`.
#[derive(Debug, Clone)]
pub struct FileStore {
    path: PathBuf,
    /// Whether the parent directory was fsync'd since the journal file
    /// was (re)created; shared across clones so the once-per-creation
    /// directory sync survives handle cloning.
    journal_dir_synced: Arc<AtomicBool>,
}

impl FileStore {
    /// A store persisting to `path` (journal at `path` with a
    /// `.journal` extension).
    pub fn new(path: impl Into<PathBuf>) -> FileStore {
        FileStore {
            path: path.into(),
            journal_dir_synced: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The snapshot path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The journal path: the snapshot path with a `.journal` extension.
    pub fn journal_path(&self) -> PathBuf {
        self.path.with_extension("journal")
    }

    /// Fsyncs the snapshot's parent directory so renames and newly
    /// created files are themselves durable, not just their contents.
    fn sync_dir(&self) -> io::Result<()> {
        let dir = match self.path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        fs::File::open(dir)?.sync_all()
    }
}

impl CacheStore for FileStore {
    fn write(&self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &self.path)?;
        self.sync_dir()
    }

    fn read(&self) -> io::Result<Option<Vec<u8>>> {
        match fs::read(&self.path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&self, record: &[u8]) -> io::Result<()> {
        let mut file = fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.journal_path())?;
        file.write_all(record)?;
        file.sync_all()?;
        if !self.journal_dir_synced.swap(true, Ordering::Relaxed) {
            // First append since creation/clear: make the directory
            // entry itself durable, or the fsync'd file can vanish.
            self.sync_dir()?;
        }
        Ok(())
    }

    fn read_journal(&self) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.journal_path()) {
            Ok(bytes) if bytes.is_empty() => Ok(None),
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn clear_journal(&self) -> io::Result<()> {
        match fs::remove_file(self.journal_path()) {
            Ok(()) => {
                self.journal_dir_synced.store(false, Ordering::Relaxed);
                self.sync_dir()
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// An in-memory [`CacheStore`] for tests and examples.
#[derive(Debug, Default)]
pub struct MemStore {
    slot: Mutex<Option<Vec<u8>>>,
    journal: Mutex<Vec<u8>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl CacheStore for MemStore {
    fn write(&self, bytes: &[u8]) -> io::Result<()> {
        *self.slot.lock().unwrap() = Some(bytes.to_vec());
        Ok(())
    }

    fn read(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.slot.lock().unwrap().clone())
    }

    fn append(&self, record: &[u8]) -> io::Result<()> {
        self.journal.lock().unwrap().extend_from_slice(record);
        Ok(())
    }

    fn read_journal(&self) -> io::Result<Option<Vec<u8>>> {
        let journal = self.journal.lock().unwrap();
        Ok(if journal.is_empty() {
            None
        } else {
            Some(journal.clone())
        })
    }

    fn clear_journal(&self) -> io::Result<()> {
        self.journal.lock().unwrap().clear();
        Ok(())
    }
}

impl SynthCache {
    /// Persists a snapshot of this cache — entries with their LRU
    /// recency stamps plus the lifetime counters — to `store`.
    ///
    /// Entries are written sorted by key, so saving an unchanged cache
    /// produces byte-identical output (the capacity bound is runtime
    /// configuration and is *not* part of the snapshot).
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O failure.
    pub fn save_to(&self, store: &dyn CacheStore) -> io::Result<()> {
        store.write(&self.to_bytes())
    }

    /// Loads the cache last saved to `store`; an empty store yields an
    /// empty cache. The loaded cache is unbounded — re-apply a bound
    /// with [`SynthCache::set_capacity`].
    ///
    /// # Errors
    ///
    /// The store's I/O failure, or [`io::ErrorKind::InvalidData`] when
    /// the bytes are not a valid snapshot (foreign magic, future
    /// version, or a corrupt record).
    pub fn load_from(store: &dyn CacheStore) -> io::Result<SynthCache> {
        match store.read()? {
            None => Ok(SynthCache::new()),
            Some(bytes) => SynthCache::from_bytes(&bytes),
        }
    }

    /// Encodes the cache into the versioned binary snapshot format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let entries = self.export_entries();
        let (hits, misses, shared_hits, evictions) = self.export_counters();
        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u32(VERSION);
        w.u64(hits);
        w.u64(misses);
        w.u64(shared_hits);
        w.u64(evictions);
        w.u64(entries.len() as u64);
        for (key, tick, synthesis) in &entries {
            w.u64(*key);
            w.u64(*tick);
            encode_synthesis(&mut w, synthesis);
        }
        w.out
    }

    /// Decodes a snapshot produced by [`SynthCache::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on any malformed byte.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<SynthCache> {
        let (entries, counters) = decode_snapshot(bytes)?;
        Ok(SynthCache::import(entries, counters))
    }

    /// Loads `snapshot + journal replay` from `store` — the crash-safe
    /// startup path. The snapshot's entries are loaded first, then
    /// every journal record is replayed over them (a key present in
    /// both resolves to the journal's record, so replay after a
    /// crashed compaction is idempotent). A torn final record — the
    /// one partial write a mid-append kill can leave — is detected by
    /// its checksum/length and dropped; its byte count is reported in
    /// [`Recovery::torn_bytes`].
    ///
    /// The recovered cache is unbounded and has no journal attached —
    /// re-apply a bound with [`SynthCache::set_capacity`] and re-arm
    /// journaling with [`SynthCache::attach_journal`].
    ///
    /// # Errors
    ///
    /// The store's I/O failure, or [`io::ErrorKind::InvalidData`] when
    /// the snapshot or a complete journal record is corrupt.
    pub fn recover(store: &dyn CacheStore) -> io::Result<Recovery> {
        let (mut entries, counters) = match store.read()? {
            None => (Vec::new(), (0, 0, 0, 0)),
            Some(bytes) => decode_snapshot(&bytes)?,
        };
        let snapshot_entries = entries.len();
        let (replayed, torn_bytes) = match store.read_journal()? {
            None => (Vec::new(), 0),
            Some(bytes) => decode_journal(&bytes)?,
        };
        let journal_entries = replayed.len();
        entries.extend(replayed);
        Ok(Recovery {
            cache: SynthCache::import(entries, counters),
            snapshot_entries,
            journal_entries,
            torn_bytes,
        })
    }

    /// Compacts this cache into `store`: writes a fresh snapshot (which
    /// by construction holds every journaled entry still resident),
    /// then clears the journal. The snapshot replace is atomic and the
    /// journal is cleared only *after* it lands, so a crash anywhere in
    /// between loses nothing — [`SynthCache::recover`] simply replays
    /// entries the new snapshot already contains.
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O failure.
    pub fn compact_to(&self, store: &dyn CacheStore) -> io::Result<()> {
        store.write(&self.to_bytes())?;
        store.clear_journal()
    }
}

/// What [`SynthCache::recover`] reassembled from a store.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered cache (`snapshot + journal replay`).
    pub cache: SynthCache,
    /// Entries loaded from the snapshot.
    pub snapshot_entries: usize,
    /// Journal records replayed over the snapshot.
    pub journal_entries: usize,
    /// Bytes of torn final journal record dropped (0 after any clean
    /// run; nonzero only when the process died mid-append).
    pub torn_bytes: usize,
}

/// Decoded cache entries: `(key, recency tick, synthesis)` triples.
type Entries = Vec<(u64, u64, Synthesis)>;
/// Lifetime counters `(hits, misses, shared_hits, evictions)`.
type Counters = (u64, u64, u64, u64);

fn decode_snapshot(bytes: &[u8]) -> io::Result<(Entries, Counters)> {
    let mut r = Reader { buf: bytes, at: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(bad("not a reshuffle cache snapshot (bad magic)"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(bad(format!(
            "unsupported snapshot version {version} (this build reads {VERSION})"
        )));
    }
    let counters = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
    let count = r.u64()?;
    let mut entries = Vec::new();
    for _ in 0..count {
        let key = r.u64()?;
        let tick = r.u64()?;
        let synthesis = decode_synthesis(&mut r)?;
        entries.push((key, tick, synthesis));
    }
    if r.at != bytes.len() {
        return Err(bad("trailing bytes after the last entry"));
    }
    Ok((entries, counters))
}

// --- journal records --------------------------------------------------

/// FNV-1a over the record payload: detects a record whose header and
/// length landed but whose payload bytes are garbage.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Encodes one self-delimiting journal record:
/// `RSHJ · version · payload length · payload checksum · payload`,
/// with the payload `key · tick · synthesis` in the snapshot codec.
pub(crate) fn journal_record(key: u64, tick: u64, synthesis: &Synthesis) -> Vec<u8> {
    let mut payload = Writer::default();
    payload.u64(key);
    payload.u64(tick);
    encode_synthesis(&mut payload, synthesis);
    let mut w = Writer::default();
    w.bytes(JOURNAL_MAGIC);
    w.u32(VERSION);
    w.u32(payload.out.len() as u32);
    w.u64(fnv1a(&payload.out));
    w.bytes(&payload.out);
    w.out
}

/// Decodes a journal byte stream into its `(key, tick, synthesis)`
/// records plus the count of torn trailing bytes dropped.
///
/// Appends are fsync'd one record at a time, so the only partial
/// record a crash can leave is the *last* one: a tail shorter than its
/// own header or declared length is silently dropped (and counted),
/// while a complete record that fails its magic, version, checksum, or
/// payload decode is real corruption and errors out.
pub(crate) fn decode_journal(bytes: &[u8]) -> io::Result<(Entries, usize)> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let rest = &bytes[at..];
        if rest.len() < JOURNAL_HEADER_BYTES {
            return Ok((out, rest.len())); // torn header at the tail
        }
        if &rest[..4] != JOURNAL_MAGIC {
            return Err(bad("not a reshuffle journal record (bad magic)"));
        }
        let version = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(bad(format!(
                "unsupported journal version {version} (this build reads {VERSION})"
            )));
        }
        let len = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(rest[12..20].try_into().unwrap());
        let Some(payload) = rest.get(JOURNAL_HEADER_BYTES..JOURNAL_HEADER_BYTES + len) else {
            return Ok((out, rest.len())); // torn payload at the tail
        };
        if fnv1a(payload) != checksum {
            return Err(bad("journal record checksum mismatch"));
        }
        let mut r = Reader {
            buf: payload,
            at: 0,
        };
        let key = r.u64()?;
        let tick = r.u64()?;
        let synthesis = decode_synthesis(&mut r)?;
        if r.at != payload.len() {
            return Err(bad("trailing bytes inside a journal record"));
        }
        out.push((key, tick, synthesis));
        at += JOURNAL_HEADER_BYTES + len;
    }
    Ok((out, 0))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// --- primitive writer/reader ----------------------------------------

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    fn strs(&mut self, items: &[String]) {
        self.u32(items.len() as u32);
        for s in items {
            self.str(s);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| bad("truncated snapshot"))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("non-UTF-8 string"))
    }

    fn strs(&mut self) -> io::Result<Vec<String>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.str()).collect()
    }
}

// --- synthesis record -------------------------------------------------

fn encode_synthesis(w: &mut Writer, s: &Synthesis) {
    // The STG goes through the canonical `.g` writer: the textual
    // round-trip is already pinned by the petri crate's tests, and the
    // cache key is stored alongside, so fingerprints are preserved by
    // construction.
    w.str(&write_g(&s.stg));
    encode_sg(w, &s.sg);
    encode_netlist(w, &s.netlist);
    w.strs(&s.inserted);
    w.u32(s.moves.len() as u32);
    for m in &s.moves {
        w.str(&m.label);
        w.u32(m.literals);
        w.f64(m.cycle);
        w.u64(m.csc_conflicts as u64);
    }
    w.strs(&s.expansion);
}

fn decode_synthesis(r: &mut Reader) -> io::Result<Synthesis> {
    let stg = parse_g(&r.str()?).map_err(|e| bad(format!("embedded STG: {e}")))?;
    let sg = decode_sg(r)?;
    let netlist = decode_netlist(r)?;
    let inserted = r.strs()?;
    let num_moves = r.u32()? as usize;
    let mut moves = Vec::with_capacity(num_moves);
    for _ in 0..num_moves {
        moves.push(MoveStep {
            label: r.str()?,
            literals: r.u32()?,
            cycle: r.f64()?,
            csc_conflicts: r.u64()? as usize,
        });
    }
    let expansion = r.strs()?;
    Ok(Synthesis {
        stg,
        sg,
        netlist,
        inserted,
        moves,
        expansion,
    })
}

// --- signal tables ----------------------------------------------------

fn encode_signals(w: &mut Writer, signals: &[Signal]) {
    w.u32(signals.len() as u32);
    for s in signals {
        w.str(&s.name);
        w.u8(match s.kind {
            SignalKind::Input => 0,
            SignalKind::Output => 1,
            SignalKind::Internal => 2,
        });
    }
}

fn decode_signals(r: &mut Reader) -> io::Result<Vec<Signal>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let kind = match r.u8()? {
            0 => SignalKind::Input,
            1 => SignalKind::Output,
            2 => SignalKind::Internal,
            k => return Err(bad(format!("unknown signal kind tag {k}"))),
        };
        out.push(Signal { name, kind });
    }
    Ok(out)
}

// --- state graph ------------------------------------------------------

fn encode_sg(w: &mut Writer, sg: &StateGraph) {
    w.str(sg.name());
    encode_signals(w, sg.signals());
    w.u32(sg.events().len() as u32);
    for ev in sg.events() {
        w.str(&ev.label);
        match ev.edge {
            None => w.u8(0),
            Some(edge) => {
                w.u8(1);
                w.u32(edge.signal.index() as u32);
                w.u8(match edge.polarity {
                    Polarity::Rise => 0,
                    Polarity::Fall => 1,
                    Polarity::Toggle => 2,
                });
            }
        }
    }
    w.u32(sg.num_states() as u32);
    for s in sg.state_ids() {
        w.u64(sg.code(s));
        let arcs = sg.succ(s);
        w.u32(arcs.len() as u32);
        for (e, t) in arcs {
            w.u32(e.0);
            w.u32(t);
        }
    }
    let any_marking = sg.num_interned_markings() > 0;
    w.u8(any_marking as u8);
    if any_marking {
        for s in sg.state_ids() {
            match sg.marking_of(s) {
                None => w.u8(0),
                Some(m) => {
                    w.u8(1);
                    w.u64(m.num_places() as u64);
                    let places: Vec<PlaceId> = m.iter().collect();
                    w.u32(places.len() as u32);
                    for p in places {
                        w.u32(p.index() as u32);
                    }
                }
            }
        }
    }
    w.u32(sg.initial());
}

fn decode_sg(r: &mut Reader) -> io::Result<StateGraph> {
    let name = r.str()?;
    let signals = decode_signals(r)?;
    let num_events = r.u32()? as usize;
    let mut events = Vec::with_capacity(num_events);
    for _ in 0..num_events {
        let label = r.str()?;
        let edge = match r.u8()? {
            0 => None,
            1 => {
                let signal = SignalId::from_index(r.u32()? as usize);
                let polarity = match r.u8()? {
                    0 => Polarity::Rise,
                    1 => Polarity::Fall,
                    2 => Polarity::Toggle,
                    p => return Err(bad(format!("unknown polarity tag {p}"))),
                };
                Some(SignalEdge { signal, polarity })
            }
            t => return Err(bad(format!("unknown edge tag {t}"))),
        };
        events.push(EventInfo { label, edge });
    }
    let num_states = r.u32()? as usize;
    let mut states = Vec::with_capacity(num_states);
    for _ in 0..num_states {
        let code = r.u64()?;
        let num_arcs = r.u32()? as usize;
        let mut succ = Vec::with_capacity(num_arcs);
        for _ in 0..num_arcs {
            succ.push((EventId(r.u32()?), r.u32()?));
        }
        states.push(State {
            code,
            succ,
            marking: None,
        });
    }
    if r.u8()? == 1 {
        for st in &mut states {
            if r.u8()? == 1 {
                let num_places = r.u64()? as usize;
                let num_marked = r.u32()? as usize;
                let marked: Vec<PlaceId> = (0..num_marked)
                    .map(|_| r.u32().map(|p| PlaceId::from_index(p as usize)))
                    .collect::<io::Result<_>>()?;
                if marked.iter().any(|p| p.index() >= num_places) {
                    return Err(bad("marked place out of range"));
                }
                st.marking = Some(Marking::with_tokens(num_places, &marked));
            }
        }
    }
    let initial = r.u32()?;
    StateGraph::from_parts(name, signals, events, states, initial)
        .map_err(|e| bad(format!("embedded state graph: {e}")))
}

// --- netlist ----------------------------------------------------------

fn encode_netlist(w: &mut Writer, nl: &Netlist) {
    encode_signals(w, nl.signals());
    w.u32(nl.nodes().len() as u32);
    for node in nl.nodes() {
        match node {
            Node::SignalRef(s) => {
                w.u8(0);
                w.u32(s.index() as u32);
            }
            Node::Const(b) => {
                w.u8(1);
                w.u8(*b as u8);
            }
            Node::Gate(g, ins) => {
                w.u8(2);
                w.u8(match g {
                    GateType::Inv => 0,
                    GateType::And2 => 1,
                    GateType::Or2 => 2,
                    GateType::C2 => 3,
                });
                w.u32(ins.len() as u32);
                for n in ins {
                    w.u32(n.0);
                }
            }
            Node::GcLatch { set, reset, holds } => {
                w.u8(3);
                w.u32(set.0);
                w.u32(reset.0);
                w.u32(holds.index() as u32);
            }
        }
    }
    let signals = nl.signals();
    for i in 0..signals.len() {
        match nl.driver(SignalId::from_index(i)) {
            None => w.u8(0),
            Some(n) => {
                w.u8(1);
                w.u32(n.0);
            }
        }
    }
}

fn decode_netlist(r: &mut Reader) -> io::Result<Netlist> {
    let signals = decode_signals(r)?;
    let num_signals = signals.len();
    let mut nl = Netlist::new(signals);
    let num_nodes = r.u32()? as usize;
    for i in 0..num_nodes {
        let node = match r.u8()? {
            0 => {
                let s = r.u32()? as usize;
                if s >= num_signals {
                    return Err(bad("signal reference out of range"));
                }
                Node::SignalRef(SignalId::from_index(s))
            }
            1 => Node::Const(r.u8()? != 0),
            2 => {
                let gate = match r.u8()? {
                    0 => GateType::Inv,
                    1 => GateType::And2,
                    2 => GateType::Or2,
                    3 => GateType::C2,
                    g => return Err(bad(format!("unknown gate tag {g}"))),
                };
                let num_ins = r.u32()? as usize;
                if num_ins != gate.arity() {
                    return Err(bad("gate arity mismatch"));
                }
                let ins: Vec<NodeId> = (0..num_ins)
                    .map(|_| r.u32().map(NodeId))
                    .collect::<io::Result<_>>()?;
                if ins.iter().any(|n| n.0 as usize >= i) {
                    return Err(bad("gate input references a later node"));
                }
                Node::Gate(gate, ins)
            }
            3 => {
                let set = NodeId(r.u32()?);
                let reset = NodeId(r.u32()?);
                let holds = r.u32()? as usize;
                if set.0 as usize >= i || reset.0 as usize >= i || holds >= num_signals {
                    return Err(bad("latch wiring out of range"));
                }
                Node::GcLatch {
                    set,
                    reset,
                    holds: SignalId::from_index(holds),
                }
            }
            t => return Err(bad(format!("unknown node tag {t}"))),
        };
        nl.add(node);
    }
    for s in 0..num_signals {
        if r.u8()? == 1 {
            let n = r.u32()?;
            if n as usize >= num_nodes {
                return Err(bad("driver references a missing node"));
            }
            nl.set_driver(SignalId::from_index(s), NodeId(n))
                .map_err(|e| bad(format!("embedded netlist: {e}")))?;
        }
    }
    Ok(nl)
}
