//! The synthesis cache: fingerprint-keyed memoization of whole
//! pipeline runs.
//!
//! A [`SynthCache`] maps `(canonical STG fingerprint, option trail)`
//! keys to finished [`Synthesis`] results, so re-synthesizing an
//! identical specification under identical options is an O(1) lookup
//! instead of a pipeline run — the ROADMAP's persistent-netlist-cache
//! step toward serving repeated requests. The spec half of the key is
//! [`reshuffle_petri::canonical_fingerprint`] (declaration-order
//! invariant); the option half is accumulated hash-by-hash as the
//! staged builder commits each stage's options, so a [`run`] shortcut
//! and the equivalent manual stage chain produce the same key.
//!
//! The handle is cheaply cloneable and thread-safe; hit/miss totals
//! are cumulative over the cache's lifetime, while per-run counts are
//! surfaced on [`Diagnostics`](crate::Diagnostics).
//!
//! [`run`]: crate::Parsed::run

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use crate::Synthesis;

/// Folds stage-transition parts into an options-trail hash. Every
/// staged transition calls this with a distinct tag plus its options'
/// canonical words, so different chains (or different options) never
/// collide by construction order.
pub(crate) fn mix(seed: u64, tag: &str, parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    tag.hash(&mut h);
    parts.hash(&mut h);
    h.finish()
}

/// A shared, thread-safe cache of finished pipeline runs.
///
/// ```
/// use reshuffle::{Pipeline, PipelineOptions, SynthCache};
///
/// # fn main() -> Result<(), reshuffle::PipelineError> {
/// let src = ".model xyz\n.inputs x\n.outputs y z\n.graph\n\
///            x+ y+\ny+ z+\nz+ x-\nx- y-\ny- z-\nz- x+\n\
///            .marking { <z-,x+> }\n.end\n";
/// let cache = SynthCache::new();
/// let opts = PipelineOptions::default();
///
/// // First run does the work and fills the cache ...
/// let first = Pipeline::from_g(src)?.with_cache(&cache).run(&opts)?;
/// assert_eq!((cache.hits(), cache.misses()), (0, 1));
///
/// // ... the second run on the identical spec is a lookup.
/// let second = Pipeline::from_g(src)?.with_cache(&cache).run(&opts)?;
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// assert_eq!(second.diagnostics().cache_hits, 1);
/// assert_eq!(
///     first.synthesis().netlist.describe(),
///     second.synthesis().netlist.describe(),
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SynthCache {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Synthesis>,
    hits: u64,
    misses: u64,
    shared_hits: u64,
}

impl SynthCache {
    /// Creates an empty cache.
    pub fn new() -> SynthCache {
        SynthCache::default()
    }

    /// Cumulative lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.lock().unwrap().hits
    }

    /// Cumulative lookups that missed (and ran the pipeline).
    pub fn misses(&self) -> u64 {
        self.inner.lock().unwrap().misses
    }

    /// Cumulative *candidate-level* hits: expansion candidates whose
    /// synthesis was shared from this cache during a partial-spec run
    /// (counted separately from the whole-run [`SynthCache::hits`]).
    pub fn shared_hits(&self) -> u64 {
        self.inner.lock().unwrap().shared_hits
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached results (the hit/miss totals stay).
    pub fn clear(&self) {
        self.inner.lock().unwrap().map.clear();
    }

    /// Looks up a finished run, counting a hit or a miss.
    pub(crate) fn lookup(&self, key: u64) -> Option<Synthesis> {
        let mut inner = self.inner.lock().unwrap();
        match inner.map.get(&key).cloned() {
            Some(s) => {
                inner.hits += 1;
                Some(s)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Looks up a shared candidate synthesis without touching the
    /// whole-run hit/miss counters (a candidate miss is not a pipeline
    /// miss — the run itself may still hit or miss on its own key).
    pub(crate) fn lookup_shared(&self, key: u64) -> Option<Synthesis> {
        let mut inner = self.inner.lock().unwrap();
        let found = inner.map.get(&key).cloned();
        if found.is_some() {
            inner.shared_hits += 1;
        }
        found
    }

    /// Stores a finished run under its key.
    pub(crate) fn insert(&self, key: u64, synthesis: Synthesis) {
        self.inner.lock().unwrap().map.insert(key, synthesis);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_separates_tags_and_parts() {
        let a = mix(0, "reduce", &[1, 2]);
        assert_eq!(a, mix(0, "reduce", &[1, 2]), "mix must be deterministic");
        assert_ne!(a, mix(0, "reduce", &[2, 1]));
        assert_ne!(a, mix(0, "resolve", &[1, 2]));
        assert_ne!(a, mix(1, "reduce", &[1, 2]));
        // Part boundaries matter: [1,2] vs [12] style collisions are
        // prevented by hashing the slice (length included).
        assert_ne!(mix(0, "t", &[1, 2]), mix(0, "t", &[1, 2, 0]));
    }
}
