//! The synthesis cache: fingerprint-keyed memoization of whole
//! pipeline runs.
//!
//! A [`SynthCache`] maps `(canonical STG fingerprint, option trail)`
//! keys to finished [`Synthesis`] results, so re-synthesizing an
//! identical specification under identical options is an O(1) lookup
//! instead of a pipeline run — the ROADMAP's persistent-netlist-cache
//! step toward serving repeated requests. The spec half of the key is
//! [`reshuffle_petri::canonical_fingerprint`] (declaration-order
//! invariant); the option half is accumulated hash-by-hash as the
//! staged builder commits each stage's options, so a [`run`] shortcut
//! and the equivalent manual stage chain produce the same key. The
//! key a `run` will use is exposed as
//! [`run_cache_key`](crate::run_cache_key) for callers (like the
//! `reshuffle-server` single-flight registry) that deduplicate work
//! *before* starting a pipeline.
//!
//! The handle is cheaply cloneable and thread-safe; hit/miss totals
//! are cumulative over the cache's lifetime, while per-run counts are
//! surfaced on [`Diagnostics`](crate::Diagnostics). A cache built
//! [`with_capacity`](SynthCache::with_capacity) evicts its least
//! recently used entry when full; caches persist across processes via
//! [`save_to`](SynthCache::save_to) / [`load_from`](SynthCache::load_from)
//! and a [`CacheStore`](crate::CacheStore).
//!
//! [`run`]: crate::Parsed::run

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use crate::store::journal_record;
use crate::{CacheStore, Synthesis};

/// Folds stage-transition parts into an options-trail hash. Every
/// staged transition calls this with a distinct tag plus its options'
/// canonical words, so different chains (or different options) never
/// collide by construction order.
pub(crate) fn mix(seed: u64, tag: &str, parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    tag.hash(&mut h);
    parts.hash(&mut h);
    h.finish()
}

/// A shared, thread-safe cache of finished pipeline runs.
///
/// ```
/// use reshuffle::{Pipeline, PipelineOptions, SynthCache};
///
/// # fn main() -> Result<(), reshuffle::PipelineError> {
/// let src = ".model xyz\n.inputs x\n.outputs y z\n.graph\n\
///            x+ y+\ny+ z+\nz+ x-\nx- y-\ny- z-\nz- x+\n\
///            .marking { <z-,x+> }\n.end\n";
/// let cache = SynthCache::new();
/// let opts = PipelineOptions::default();
///
/// // First run does the work and fills the cache ...
/// let first = Pipeline::from_g(src)?.with_cache(&cache).run(&opts)?;
/// assert_eq!((cache.hits(), cache.misses()), (0, 1));
///
/// // ... the second run on the identical spec is a lookup.
/// let second = Pipeline::from_g(src)?.with_cache(&cache).run(&opts)?;
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// assert_eq!(second.diagnostics().cache_hits, 1);
/// assert_eq!(
///     first.synthesis().netlist.describe(),
///     second.synthesis().netlist.describe(),
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SynthCache {
    inner: Arc<Mutex<Inner>>,
}

/// One cached run plus its last-used tick (the LRU recency stamp).
#[derive(Debug)]
struct Entry {
    synthesis: Synthesis,
    tick: u64,
}

/// An attached journal sink (newtype so `Inner` keeps deriving
/// `Debug` over the un-`Debug`-able trait object).
struct Journal {
    store: Arc<dyn CacheStore + Send + Sync>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Journal(..)")
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    /// Monotonic recency clock: bumped on every lookup hit and insert.
    tick: u64,
    /// `None` = unbounded; `Some(n)` evicts least-recently-used past n.
    capacity: Option<usize>,
    /// When attached, every insert appends a durable journal record.
    journal: Option<Journal>,
    hits: u64,
    misses: u64,
    shared_hits: u64,
    evictions: u64,
    journal_appends: u64,
    journal_errors: u64,
}

impl Inner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts least-recently-used entries until the capacity holds.
    fn evict_to_capacity(&mut self) {
        let Some(cap) = self.capacity else {
            return;
        };
        while self.map.len() > cap {
            let coldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&k, _)| k)
                .expect("map is non-empty while over capacity");
            self.map.remove(&coldest);
            self.evictions += 1;
        }
    }
}

impl SynthCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> SynthCache {
        SynthCache::default()
    }

    /// Creates an empty cache that holds at most `capacity` entries,
    /// evicting the least recently used entry when an insert would
    /// exceed it.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 (use [`SynthCache::new`] for an
    /// unbounded cache).
    pub fn with_capacity(capacity: usize) -> SynthCache {
        let cache = SynthCache::new();
        cache.set_capacity(Some(capacity));
        cache
    }

    /// Changes the entry bound: `None` is unbounded, `Some(n)` evicts
    /// down to the `n` most recently used entries immediately and on
    /// every future insert.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        assert!(capacity != Some(0), "cache capacity must be at least 1");
        let mut inner = self.inner.lock().unwrap();
        inner.capacity = capacity;
        inner.evict_to_capacity();
    }

    /// The current entry bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.inner.lock().unwrap().capacity
    }

    /// Cumulative lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.lock().unwrap().hits
    }

    /// Cumulative lookups that missed (and ran the pipeline).
    pub fn misses(&self) -> u64 {
        self.inner.lock().unwrap().misses
    }

    /// Cumulative *candidate-level* hits: expansion candidates whose
    /// synthesis was shared from this cache during a partial-spec run
    /// (counted separately from the whole-run [`SynthCache::hits`]).
    pub fn shared_hits(&self) -> u64 {
        self.inner.lock().unwrap().shared_hits
    }

    /// Cumulative entries evicted by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().unwrap().evictions
    }

    /// Arms incremental persistence: from now on, every insert encodes
    /// the new entry as a journal record and hands it to
    /// [`CacheStore::append`] *before* the insert returns — with a
    /// durable store (like [`FileStore`](crate::FileStore), which
    /// fsyncs each append), a `kill -9` at any point loses no
    /// completed synthesis. Recover the entries with
    /// [`SynthCache::recover`]; fold the journal back into a snapshot
    /// with [`SynthCache::compact_to`].
    ///
    /// An append failure never fails the insert (the synthesis result
    /// is still correct and cached in memory); it is counted on
    /// [`SynthCache::journal_errors`] instead.
    pub fn attach_journal(&self, store: Arc<dyn CacheStore + Send + Sync>) {
        self.inner.lock().unwrap().journal = Some(Journal { store });
    }

    /// Detaches the journal sink; inserts stop appending.
    pub fn detach_journal(&self) {
        self.inner.lock().unwrap().journal = None;
    }

    /// Cumulative journal records successfully appended.
    pub fn journal_appends(&self) -> u64 {
        self.inner.lock().unwrap().journal_appends
    }

    /// Cumulative journal appends that failed (the entries stayed
    /// cached in memory but are not crash-durable).
    pub fn journal_errors(&self) -> u64 {
        self.inner.lock().unwrap().journal_errors
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached results (the hit/miss totals stay).
    pub fn clear(&self) {
        self.inner.lock().unwrap().map.clear();
    }

    /// Looks up a finished run, counting a hit or a miss.
    pub(crate) fn lookup(&self, key: u64) -> Option<Synthesis> {
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.next_tick();
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.tick = tick;
                let s = e.synthesis.clone();
                inner.hits += 1;
                Some(s)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Looks up a shared candidate synthesis without touching the
    /// whole-run hit/miss counters (a candidate miss is not a pipeline
    /// miss — the run itself may still hit or miss on its own key).
    pub(crate) fn lookup_shared(&self, key: u64) -> Option<Synthesis> {
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.next_tick();
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.tick = tick;
                let s = e.synthesis.clone();
                inner.shared_hits += 1;
                Some(s)
            }
            None => None,
        }
    }

    /// Stores a finished run under its key, evicting the least recently
    /// used entry if the capacity bound would be exceeded. With a
    /// journal attached, the entry is appended durably first — the
    /// lock is held across the append, so the journal's record order
    /// matches the recency-tick order.
    pub(crate) fn insert(&self, key: u64, synthesis: Synthesis) {
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.next_tick();
        if let Some(journal) = &inner.journal {
            match journal.store.append(&journal_record(key, tick, &synthesis)) {
                Ok(()) => inner.journal_appends += 1,
                Err(_) => inner.journal_errors += 1,
            }
        }
        inner.map.insert(key, Entry { synthesis, tick });
        inner.evict_to_capacity();
    }

    /// Snapshot of every entry as `(key, recency tick, synthesis)`,
    /// sorted by key — the deterministic order the binary codec writes.
    pub(crate) fn export_entries(&self) -> Vec<(u64, u64, Synthesis)> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<(u64, u64, Synthesis)> = inner
            .map
            .iter()
            .map(|(&k, e)| (k, e.tick, e.synthesis.clone()))
            .collect();
        out.sort_unstable_by_key(|&(k, _, _)| k);
        out
    }

    /// Snapshot of the lifetime counters
    /// `(hits, misses, shared_hits, evictions)`.
    pub(crate) fn export_counters(&self) -> (u64, u64, u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.hits, inner.misses, inner.shared_hits, inner.evictions)
    }

    /// Rebuilds a cache from decoded entries and counters, restoring
    /// each entry's recency stamp so the LRU order survives a restart.
    /// The capacity is *not* part of a snapshot: the holder re-applies
    /// its own bound via [`SynthCache::set_capacity`].
    pub(crate) fn import(
        entries: Vec<(u64, u64, Synthesis)>,
        counters: (u64, u64, u64, u64),
    ) -> SynthCache {
        let tick = entries.iter().map(|&(_, t, _)| t).max().unwrap_or(0);
        let map = entries
            .into_iter()
            .map(|(k, tick, synthesis)| (k, Entry { synthesis, tick }))
            .collect();
        SynthCache {
            inner: Arc::new(Mutex::new(Inner {
                map,
                tick,
                capacity: None,
                journal: None,
                hits: counters.0,
                misses: counters.1,
                shared_hits: counters.2,
                evictions: counters.3,
                journal_appends: 0,
                journal_errors: 0,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_separates_tags_and_parts() {
        let a = mix(0, "reduce", &[1, 2]);
        assert_eq!(a, mix(0, "reduce", &[1, 2]), "mix must be deterministic");
        assert_ne!(a, mix(0, "reduce", &[2, 1]));
        assert_ne!(a, mix(0, "resolve", &[1, 2]));
        assert_ne!(a, mix(1, "reduce", &[1, 2]));
        // Part boundaries matter: [1,2] vs [12] style collisions are
        // prevented by hashing the slice (length included).
        assert_ne!(mix(0, "t", &[1, 2]), mix(0, "t", &[1, 2, 0]));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        SynthCache::with_capacity(0);
    }
}
