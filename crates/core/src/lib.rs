//! End-to-end facade for the `reshuffle` workspace.
//!
//! This crate ties the member crates of the DAC 1999 reproduction —
//! *Automatic Synthesis and Optimization of Partially Specified
//! Asynchronous Systems* — into one pipeline:
//!
//! 1. parse an astg (`.g`) specification ([`petri`]);
//! 2. if the specification is *partial* (open `.handshake` channels,
//!    two-phase toggle events), expand it: enumerate the reshuffling
//!    lattice (Section 3, [`handshake`]), run every surviving candidate
//!    through the rest of the pipeline, and keep the best by (state
//!    signals inserted, literal estimate, timed cycle);
//! 3. build the binary-encoded state graph ([`sg`]);
//! 4. check speed independence and Complete State Coding ([`sg`]);
//! 5. optionally reduce concurrency (Section 4, [`reduce`]) — run
//!    before CSC resolution so serializations that dissolve conflicts
//!    are preferred over state-signal insertion;
//! 6. resolve remaining CSC conflicts by state-signal insertion
//!    ([`synth`]);
//! 7. derive, minimize, and map next-state logic ([`logic`], [`synth`]);
//! 8. verify the mapped netlist against the specification ([`synth`]).
//!
//! The primary API is the stage-typed [`Pipeline`] builder: each stage
//! (`Parsed -> Expanded -> Reduced -> Resolved -> Synthesized`) exposes
//! its artifacts, each transition takes that stage's options, a
//! [`Diagnostics`] record collects per-stage wall times and counters,
//! and a [`SynthCache`] turns repeated identical runs into O(1)
//! lookups — and, through a [`CacheStore`], persists them across
//! processes. The legacy free functions ([`synthesize`],
//! [`synthesize_with`], [`synthesize_stg`], [`synthesize_stg_from`])
//! are deprecated thin wrappers over [`Parsed::run`].
//!
//! # Example
//!
//! ```
//! use reshuffle::{Pipeline, PipelineOptions};
//!
//! // The xyz example: a 3-signal cycle with distinct state codes.
//! let done = Pipeline::from_g(
//!     ".model xyz\n.inputs x\n.outputs y z\n.graph\n\
//!      x+ y+\ny+ z+\nz+ x-\nx- y-\ny- z-\nz- x+\n\
//!      .marking { <z-,x+> }\n.end\n",
//! )?
//! .run(&PipelineOptions::default())?;
//! assert_eq!(done.netlist().signals().len(), 3);
//! # Ok::<(), reshuffle::PipelineError>(())
//! ```
//!
//! The same run through the builder, inspecting as it goes:
//!
//! ```
//! use reshuffle::{ImplStyle, Pipeline};
//!
//! # fn main() -> Result<(), reshuffle::PipelineError> {
//! # let src = ".model xyz\n.inputs x\n.outputs y z\n.graph\n\
//! #      x+ y+\ny+ z+\nz+ x-\nx- y-\ny- z-\nz- x+\n\
//! #      .marking { <z-,x+> }\n.end\n";
//! let expanded = Pipeline::from_g(src)?.complete()?;
//! assert_eq!(expanded.state_graph().num_states(), 6);
//! let done = expanded
//!     .skip_reduce()
//!     .resolve(&Default::default())?
//!     .synthesize(ImplStyle::ComplexGate)?;
//! assert_eq!(done.netlist().signals().len(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::fmt;

mod cache;
mod diag;
mod pipeline;
mod store;

/// Petri nets, STGs, `.g` parsing ([`reshuffle_petri`]).
pub use reshuffle_petri as petri;

/// Two-level logic and factoring ([`reshuffle_logic`]).
pub use reshuffle_logic as logic;

/// State graphs and coding analyses ([`reshuffle_sg`]).
pub use reshuffle_sg as sg;

/// Logic synthesis back-end ([`reshuffle_synth`]).
pub use reshuffle_synth as synth;

/// Timed simulation and cycle analysis ([`reshuffle_timing`]).
pub use reshuffle_timing as timing;

/// Handshake expansion of partial specifications ([`reshuffle_handshake`]).
pub use reshuffle_handshake as handshake;

/// Concurrency reduction ([`reshuffle_reduce`]).
pub use reshuffle_reduce as reduce;

pub use reshuffle_handshake::{ExpansionOptions, HandshakeError, Reshuffling};
pub use reshuffle_petri::{canonical_fingerprint, parse_g, PetriError, Stg};
pub use reshuffle_reduce::{MoveStep, ReduceError, ReduceOptions};
pub use reshuffle_sg::{build_state_graph, SgError, StateGraph};
pub use reshuffle_synth::{CscOptions, Library, Netlist, SynthError};
pub use reshuffle_timing::{simulate, DelayModel, SimOptions, TimingError};

pub use cache::SynthCache;
pub use diag::{Diagnostics, Stage, StageReport};
pub use pipeline::{
    run_cache_key, source_cache_key, Expanded, Parsed, Pipeline, Reduced, Resolved, Synthesized,
};
pub use store::{CacheStore, FileStore, MemStore, Recovery};

/// Errors from the end-to-end pipeline, tagged by the failing stage.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The `.g` source failed to parse or violated the token game.
    Parse(PetriError),
    /// Handshake expansion failed, or a partial specification reached
    /// the pipeline without the expansion stage enabled.
    Expand(HandshakeError),
    /// State-graph construction failed (inconsistent coding, budget, …).
    StateGraph(SgError),
    /// The specification is not speed-independent (determinism,
    /// commutativity, or output persistency is violated).
    NotSpeedIndependent {
        /// Total number of violation witnesses found.
        violations: usize,
    },
    /// The opt-in concurrency-reduction stage failed (e.g. the
    /// cycle-time bound excluded every reduction).
    Reduce(ReduceError),
    /// Logic synthesis or CSC resolution failed.
    Synth(SynthError),
    /// Timed analysis failed.
    Timing(TimingError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse: {e}"),
            PipelineError::Expand(e) => write!(f, "expansion: {e}"),
            PipelineError::StateGraph(e) => write!(f, "state graph: {e}"),
            PipelineError::NotSpeedIndependent { violations } => write!(
                f,
                "specification is not speed-independent ({violations} violations)"
            ),
            PipelineError::Reduce(e) => write!(f, "reduction: {e}"),
            PipelineError::Synth(e) => write!(f, "synthesis: {e}"),
            PipelineError::Timing(e) => write!(f, "timing: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Parse(e) => Some(e),
            PipelineError::Expand(e) => Some(e),
            PipelineError::StateGraph(e) => Some(e),
            PipelineError::NotSpeedIndependent { .. } => None,
            PipelineError::Reduce(e) => Some(e),
            PipelineError::Synth(e) => Some(e),
            PipelineError::Timing(e) => Some(e),
        }
    }
}

impl From<ReduceError> for PipelineError {
    fn from(e: ReduceError) -> Self {
        PipelineError::Reduce(e)
    }
}

impl From<HandshakeError> for PipelineError {
    fn from(e: HandshakeError) -> Self {
        PipelineError::Expand(e)
    }
}

impl From<PetriError> for PipelineError {
    fn from(e: PetriError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<SgError> for PipelineError {
    fn from(e: SgError) -> Self {
        PipelineError::StateGraph(e)
    }
}

impl From<SynthError> for PipelineError {
    fn from(e: SynthError) -> Self {
        PipelineError::Synth(e)
    }
}

impl From<TimingError> for PipelineError {
    fn from(e: TimingError) -> Self {
        PipelineError::Timing(e)
    }
}

/// Convenient result alias for the pipeline.
pub type Result<T> = std::result::Result<T, PipelineError>;

/// Implementation style for the synthesized logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImplStyle {
    /// One atomic complex gate per signal (the paper's Fig. 3(d)).
    #[default]
    ComplexGate,
    /// Generalized C-element with set/reset networks (Fig. 3(c)).
    GeneralizedC,
}

/// The whole-run option record driving [`Parsed::run`]: a composition
/// of the per-stage option structs ([`ExpansionOptions`],
/// [`ReduceOptions`], [`CscOptions`]) plus the style and verification
/// switches, so the one-shot run, the staged chain, and the
/// `reshuffle-server` request schema share one option vocabulary.
///
/// The struct is `#[non_exhaustive]`: build it with
/// [`PipelineOptions::new`] (or `default()`) and the `with_*` setters,
/// which keeps adding a stage a non-breaking change.
///
/// ```
/// use reshuffle::{ExpansionOptions, PipelineOptions, ReduceOptions};
///
/// let opts = PipelineOptions::new()
///     .with_expand(ExpansionOptions::default())
///     .with_reduce(ReduceOptions::default());
/// assert!(opts.expand.is_some() && opts.reduce.is_some());
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PipelineOptions {
    /// Implementation style (complex gate by default).
    pub style: ImplStyle,
    /// Structural pre-reduction of complete specifications at the
    /// parse boundary (on by default): duplicate/shortcut/self-loop
    /// place elimination and series-dummy merging shrink the net before
    /// its state graph is ever built. Partial specifications are never
    /// touched. See [`petri::structural::prereduce`].
    pub prereduce: bool,
    /// Cap on explored states per state-graph build
    /// ([`petri::DEFAULT_STATE_BUDGET`] by default). Not part of the
    /// cache key: it bounds work, it does not change the artifact.
    pub state_budget: usize,
    /// Opt-in handshake-expansion stage (Section 3) for *partial*
    /// specifications: enumerate the reshuffling lattice, synthesize
    /// every surviving candidate (composing with the `reduce` stage if
    /// enabled) and keep the best by (state signals inserted, literal
    /// estimate, timed cycle). `None` (the default) rejects partial
    /// specifications with [`PipelineError::Expand`]; complete
    /// specifications pass through the stage untouched.
    pub expand: Option<ExpansionOptions>,
    /// Opt-in concurrency-reduction stage (Section 4), run *before* CSC
    /// resolution so reductions that dissolve conflicts are preferred
    /// over state-signal insertion. `None` (the default) skips it.
    pub reduce: Option<ReduceOptions>,
    /// CSC-resolution search parameters.
    pub csc: CscOptions,
    /// Skip the final implementation-vs-specification check.
    pub skip_verify: bool,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            style: ImplStyle::default(),
            prereduce: true,
            state_budget: petri::DEFAULT_STATE_BUDGET,
            expand: None,
            reduce: None,
            csc: CscOptions::default(),
            skip_verify: false,
        }
    }
}

impl PipelineOptions {
    /// The default pipeline: no expansion, no reduction, default CSC
    /// search, complex-gate style, pre-reduction and verification on.
    pub fn new() -> PipelineOptions {
        PipelineOptions::default()
    }

    /// Enables or disables structural pre-reduction (on by default).
    pub fn with_prereduce(mut self, enabled: bool) -> PipelineOptions {
        self.prereduce = enabled;
        self
    }

    /// Replaces the per-build explored-state cap.
    pub fn with_state_budget(mut self, budget: usize) -> PipelineOptions {
        self.state_budget = budget;
        self
    }

    /// Selects the implementation style.
    pub fn with_style(mut self, style: ImplStyle) -> PipelineOptions {
        self.style = style;
        self
    }

    /// Enables the handshake-expansion stage with `opts`.
    pub fn with_expand(mut self, opts: ExpansionOptions) -> PipelineOptions {
        self.expand = Some(opts);
        self
    }

    /// Enables the concurrency-reduction stage with `opts`.
    pub fn with_reduce(mut self, opts: ReduceOptions) -> PipelineOptions {
        self.reduce = Some(opts);
        self
    }

    /// Replaces the CSC-resolution search parameters.
    pub fn with_csc(mut self, opts: CscOptions) -> PipelineOptions {
        self.csc = opts;
        self
    }

    /// Skips (or re-enables) the final verification check.
    pub fn with_skip_verify(mut self, skip: bool) -> PipelineOptions {
        self.skip_verify = skip;
        self
    }
}

/// Everything the pipeline produced, for callers that want more than
/// the netlist.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The STG actually synthesized (after any CSC insertions).
    pub stg: Stg,
    /// Its state graph.
    pub sg: StateGraph,
    /// The mapped implementation.
    pub netlist: Netlist,
    /// Names of state signals inserted to resolve CSC.
    pub inserted: Vec<String>,
    /// Serializing moves applied by the concurrency-reduction stage, in
    /// order, each carrying its label and post-move statistics (empty
    /// when the stage was skipped or found nothing to improve).
    pub moves: Vec<MoveStep>,
    /// Ordering choices of the winning reshuffling when the
    /// handshake-expansion stage ran on a partial specification
    /// (empty for the eager extreme, complete inputs, or when the
    /// stage was disabled).
    pub expansion: Vec<String>,
}

impl Synthesis {
    /// The labels of the applied serializing moves, in order.
    pub fn move_labels(&self) -> impl Iterator<Item = &str> {
        self.moves.iter().map(|m| m.label.as_str())
    }
}

/// Runs the full pipeline on `.g` source text and returns the mapped
/// netlist.
///
/// Thin wrapper over the [`Pipeline`] builder (prefer it for new code:
/// it exposes per-stage artifacts, [`Diagnostics`] and [`SynthCache`]
/// reuse). Equivalent to [`synthesize_with`] under
/// [`PipelineOptions::default`].
///
/// # Errors
///
/// Any stage failure, tagged by [`PipelineError`] variant.
#[deprecated(since = "0.1.0", note = "use Pipeline")]
pub fn synthesize(g_source: &str) -> Result<Netlist> {
    #[allow(deprecated)]
    synthesize_with(g_source, &PipelineOptions::default()).map(|s| s.netlist)
}

/// Runs the full pipeline with explicit options, returning every
/// intermediate artifact.
///
/// Thin wrapper over [`Pipeline::from_g`] + [`Parsed::run`]; prefer
/// the builder for new code.
///
/// # Errors
///
/// Any stage failure, tagged by [`PipelineError`] variant.
#[deprecated(since = "0.1.0", note = "use Pipeline")]
pub fn synthesize_with(g_source: &str, opts: &PipelineOptions) -> Result<Synthesis> {
    Pipeline::from_g(g_source)?
        .run(opts)
        .map(Synthesized::into_synthesis)
}

/// Runs the pipeline on an already-parsed STG.
///
/// Thin wrapper over [`Pipeline::from_stg`] + [`Parsed::run`]; prefer
/// the builder for new code.
///
/// Partial specifications (declared `.handshake` channels or toggle
/// events) are routed through the handshake-expansion stage when
/// [`PipelineOptions::expand`] is set, and rejected with
/// [`PipelineError::Expand`] otherwise.
///
/// # Errors
///
/// Any stage failure, tagged by [`PipelineError`] variant.
#[deprecated(since = "0.1.0", note = "use Pipeline")]
pub fn synthesize_stg(spec: &Stg, opts: &PipelineOptions) -> Result<Synthesis> {
    Pipeline::from_stg(spec)
        .run(opts)
        .map(Synthesized::into_synthesis)
}

/// [`synthesize_stg`] for callers that already built the
/// specification's state graph (`sg0` must be the state graph of
/// `spec`); avoids rebuilding the most expensive artifact. Rejects
/// partial specifications (their candidates carry their own graphs).
///
/// Thin wrapper over [`Pipeline::from_parts`] and the staged chain;
/// prefer the builder for new code.
///
/// # Errors
///
/// Any stage failure, tagged by [`PipelineError`] variant.
#[deprecated(since = "0.1.0", note = "use Pipeline")]
pub fn synthesize_stg_from(
    spec: &Stg,
    sg0: StateGraph,
    opts: &PipelineOptions,
) -> Result<Synthesis> {
    let expanded = Pipeline::from_parts(spec.clone(), sg0).complete()?;
    let reduced = match &opts.reduce {
        Some(ropts) => expanded.reduce(ropts)?,
        None => expanded.skip_reduce(),
    };
    let resolved = reduced.resolve(&opts.csc)?;
    let done = if opts.skip_verify {
        resolved.synthesize_unverified(opts.style)?
    } else {
        resolved.synthesize(opts.style)?
    };
    Ok(done.into_synthesis())
}

#[cfg(test)]
#[allow(deprecated)] // the suite pins the legacy wrappers' behavior
mod tests {
    use super::*;

    const TOGGLE_G: &str = "\
.model toggle
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    const XYZ_G: &str = "\
.model xyz
.inputs x
.outputs y z
.graph
x+ y+
y+ z+
z+ x-
x- y-
y- z-
z- x+
.marking { <z-,x+> }
.end
";

    const FIG1_G: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn toggle_synthesizes_to_wire() {
        let netlist = synthesize(TOGGLE_G).unwrap();
        let b = netlist.signal_by_name("b").unwrap();
        assert!(netlist.is_wire(b));
    }

    #[test]
    fn xyz_full_pipeline() {
        let s = synthesize_with(XYZ_G, &PipelineOptions::default()).unwrap();
        assert_eq!(s.sg.num_states(), 6);
        assert!(s.inserted.is_empty());
        assert_eq!(s.netlist.signals().len(), 3);
    }

    #[test]
    fn gc_style_also_verifies() {
        let opts = PipelineOptions {
            style: ImplStyle::GeneralizedC,
            ..Default::default()
        };
        let s = synthesize_with(XYZ_G, &opts).unwrap();
        assert_eq!(s.netlist.signals().len(), 3);
    }

    #[test]
    fn csc_conflict_is_resolved_or_reported() {
        // Fig. 1 violates CSC; the pipeline must either insert a state
        // signal and verify, or report the stalled resolution — never
        // silently synthesize conflicted logic.
        match synthesize_with(FIG1_G, &PipelineOptions::default()) {
            Ok(s) => assert!(!s.inserted.is_empty()),
            Err(PipelineError::Synth(SynthError::CscResolutionFailed { .. })) => {}
            Err(e) => panic!("unexpected pipeline error: {e}"),
        }
    }

    /// Mirror of Fig. 1 (`Req` is the output): its CSC conflict cannot
    /// be fixed by state-signal insertion, only by serializing `Req+`
    /// after `Ack-`.
    const MFIG1_G: &str = "\
.model mfig1
.inputs Ack
.outputs Req
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn reduce_stage_rescues_insertion_stalls() {
        // Without reduction the pipeline stalls on mfig1 …
        let default_run = synthesize_with(MFIG1_G, &PipelineOptions::default());
        assert!(matches!(
            default_run,
            Err(PipelineError::Synth(SynthError::CscResolutionFailed { .. }))
        ));
        // … with the opt-in stage it synthesizes with zero state signals.
        let opts = PipelineOptions {
            reduce: Some(ReduceOptions::default()),
            ..Default::default()
        };
        let s = synthesize_with(MFIG1_G, &opts).unwrap();
        // The typed move list carries label and per-move statistics.
        assert_eq!(s.move_labels().collect::<Vec<_>>(), ["Ack- -> Req+"]);
        assert_eq!(s.moves.len(), 1);
        assert_eq!(s.moves[0].csc_conflicts, 0);
        assert!(s.inserted.is_empty());
        assert_eq!(s.sg.num_states(), 4);
    }

    #[test]
    fn reduce_stage_is_identity_on_sequential_specs() {
        let opts = PipelineOptions {
            reduce: Some(ReduceOptions::default()),
            ..Default::default()
        };
        let s = synthesize_with(XYZ_G, &opts).unwrap();
        assert!(s.moves.is_empty());
        assert_eq!(s.sg.num_states(), 6);
    }

    #[test]
    fn reduce_stage_reports_infeasible_bounds() {
        let opts = PipelineOptions {
            reduce: Some(ReduceOptions {
                max_cycle_time: Some(0.5),
                ..Default::default()
            }),
            ..Default::default()
        };
        match synthesize_with(XYZ_G, &opts) {
            Err(PipelineError::Reduce(ReduceError::NoFeasibleReduction)) => {}
            other => panic!("expected infeasible-reduction error, got {other:?}"),
        }
    }

    /// Partial request/acknowledge controller with a committed Go
    /// pulse: the channel's return-to-zero edges are free to reshuffle
    /// around the pulse.
    const PCREQ_G: &str = "\
.model pcreq
.inputs Ack
.outputs Req Go
.handshake Req Ack
.graph
Req~ Ack~
Ack~ Go+
Go+ Go-
Go- Req~
.marking { <Go-,Req~> }
.end
";

    #[test]
    fn partial_specs_require_the_expand_stage() {
        match synthesize(PCREQ_G) {
            Err(PipelineError::Expand(HandshakeError::NotExpanded)) => {}
            other => panic!("expected NotExpanded, got {other:?}"),
        }
    }

    #[test]
    fn expand_stage_selects_a_reshuffling() {
        let opts = PipelineOptions {
            expand: Some(ExpansionOptions::default()),
            ..Default::default()
        };
        let s = synthesize_with(PCREQ_G, &opts).unwrap();
        // The winner serializes Req- behind Go+ and Ack- behind Go-:
        // one state signal and 6 literals, against the eager extreme's
        // two signals and 16 literals.
        assert_eq!(
            s.expansion,
            vec!["Go+ -> Req-".to_string(), "Go- -> Ack-".to_string()]
        );
        assert_eq!(s.inserted, vec!["csc0".to_string()]);
        assert!(!s.stg.is_partial());
        assert_eq!(s.netlist.signals().len(), 4);
    }

    #[test]
    fn expand_stage_is_identity_on_complete_specs() {
        let opts = PipelineOptions {
            expand: Some(ExpansionOptions::default()),
            ..Default::default()
        };
        let s = synthesize_with(XYZ_G, &opts).unwrap();
        assert!(s.expansion.is_empty());
        assert_eq!(s.sg.num_states(), 6);
    }

    #[test]
    fn expand_stage_composes_with_reduce() {
        let opts = PipelineOptions {
            expand: Some(ExpansionOptions::default()),
            reduce: Some(ReduceOptions::default()),
            ..Default::default()
        };
        let s = synthesize_with(PCREQ_G, &opts).unwrap();
        // With the reduce stage composed per candidate, serializing
        // moves dissolve every conflict: no state signal at all beats
        // the expansion-only winner.
        assert!(s.inserted.is_empty());
        assert!(!s.moves.is_empty());
        assert_eq!(s.netlist.signals().len(), 3);
    }

    #[test]
    fn non_speed_independent_spec_is_rejected() {
        // A choice place where input a+ disables output b+: output
        // persistency is violated, so the paper's flow must refuse it.
        let nsi = ".model nsi\n.inputs a\n.outputs b\n.graph\n\
             p0 a+ b+\na+ p1\nb+ p2\n.marking { p0 }\n.end\n";
        match synthesize(nsi) {
            Err(PipelineError::NotSpeedIndependent { violations }) => assert!(violations > 0),
            other => panic!("expected SI rejection, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_tagged() {
        match synthesize(".model broken\n.end\n") {
            Err(PipelineError::Parse(_)) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    // --- builder-specific behaviour ---------------------------------

    #[test]
    fn staged_chain_exposes_artifacts_and_diagnostics() {
        let parsed = Pipeline::from_g(XYZ_G).unwrap();
        assert!(!parsed.is_partial());
        assert_eq!(parsed.stg().num_signals(), 3);
        assert!(parsed.diagnostics().stage(Stage::Parse).is_some());

        let expanded = parsed.complete().unwrap();
        assert_eq!(expanded.state_graph().num_states(), 6);
        assert_eq!(expanded.num_candidates(), 1);

        let reduced = expanded.reduce(&ReduceOptions::default()).unwrap();
        assert!(reduced.moves().is_empty());

        let resolved = reduced.resolve(&CscOptions::default()).unwrap();
        assert!(resolved.inserted().is_empty());
        assert_eq!(resolved.state_graph().num_states(), 6);

        let done = resolved.synthesize(ImplStyle::ComplexGate).unwrap();
        assert_eq!(done.netlist().signals().len(), 3);
        let diag = done.diagnostics();
        for stage in [
            Stage::Parse,
            Stage::Expand,
            Stage::Reduce,
            Stage::Resolve,
            Stage::Synthesize,
        ] {
            assert!(diag.stage(stage).is_some(), "missing report for {stage}");
        }
        assert_eq!(diag.stage(Stage::Expand).unwrap().states, Some(6));
        assert_eq!(diag.stage(Stage::Synthesize).unwrap().candidates, Some(1));
        assert!(!diag.summary().is_empty());
    }

    #[test]
    fn complete_rejects_partial_specs() {
        let parsed = Pipeline::from_g(PCREQ_G).unwrap();
        assert!(parsed.is_partial());
        match parsed.complete() {
            Err(PipelineError::Expand(HandshakeError::NotExpanded)) => {}
            other => panic!("expected NotExpanded, got {other:?}"),
        }
    }

    #[test]
    fn expanded_candidates_are_inspectable() {
        let expanded = Pipeline::from_g(PCREQ_G)
            .unwrap()
            .expand(&ExpansionOptions::default())
            .unwrap();
        assert!(expanded.num_candidates() >= 2);
        let diag_report = expanded.diagnostics().stage(Stage::Expand).unwrap();
        assert_eq!(diag_report.candidates, Some(expanded.num_candidates()));
        // Eager extreme first: no ordering commitments.
        let (stg, choices) = expanded.candidates().next().unwrap();
        assert!(choices.is_empty());
        assert!(!stg.is_partial());
    }

    #[test]
    fn second_run_is_served_from_the_cache() {
        let cache = SynthCache::new();
        let opts = PipelineOptions::default();
        let first = Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&cache)
            .run(&opts)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert_eq!(first.diagnostics().cache_misses, 1);
        assert!(first.diagnostics().stage(Stage::Synthesize).is_some());

        let second = Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&cache)
            .run(&opts)
            .unwrap();
        // Hit counter = 1, and no re-synthesis timing recorded: only
        // the parse stage ran.
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(second.diagnostics().cache_hits, 1);
        assert!(second.diagnostics().stage(Stage::Synthesize).is_none());
        assert!(second.diagnostics().stage(Stage::Expand).is_none());
        // The hit path is not invisible: its lookup latency is recorded
        // as the cache_hit pseudo-stage (the miss run records none).
        assert!(second.diagnostics().stage(Stage::CacheHit).is_some());
        assert!(first.diagnostics().stage(Stage::CacheHit).is_none());
        assert_eq!(
            first.netlist().describe(),
            second.netlist().describe(),
            "cached netlist drifted"
        );
    }

    #[test]
    fn traced_run_emits_stage_spans_under_one_trace_id() {
        use reshuffle_obs::{RingSink, Sink, SinkHandle, TraceId, Tracer};
        use std::sync::Arc;

        let ring = Arc::new(RingSink::new(256));
        let tracer = Tracer::new(2, SinkHandle::new(ring.clone() as Arc<dyn Sink>));
        let trace = TraceId::derive(0x5eed, 17);
        let traced = Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_trace(tracer.root(trace))
            .run(&PipelineOptions::default())
            .unwrap();
        let plain = Pipeline::from_g(XYZ_G)
            .unwrap()
            .run(&PipelineOptions::default())
            .unwrap();
        assert_eq!(
            traced.netlist().describe(),
            plain.netlist().describe(),
            "tracing must not change the synthesis"
        );

        let lines = ring.lines();
        let hex = trace.to_string();
        assert!(!lines.is_empty());
        for line in &lines {
            assert!(line.contains(&format!("\"trace\":\"{hex}\"")), "{line}");
        }
        let has = |name: &str| {
            lines
                .iter()
                .any(|l| l.contains(&format!("\"name\":\"{name}\"")))
        };
        for name in [
            "stage.expand",
            "stage.resolve",
            "stage.synthesize",
            "bfs.markings",
            "bfs.encode",
        ] {
            assert!(has(name), "missing span {name} in {lines:#?}");
        }

        // A cache hit under tracing emits the lookup span.
        let cache = SynthCache::new();
        let _ = Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&cache)
            .run(&PipelineOptions::default())
            .unwrap();
        let before = ring.lines().len();
        let hit = Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&cache)
            .with_trace(tracer.root(TraceId::derive(0x5eed, 18)))
            .run(&PipelineOptions::default())
            .unwrap();
        assert_eq!(hit.diagnostics().cache_hits, 1);
        let lines = ring.lines();
        assert!(lines.len() > before);
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"name\":\"cache.lookup\"") && l.contains("\"hit\":1")),
            "{lines:#?}"
        );
    }

    #[test]
    fn cache_distinguishes_options_and_specs() {
        let cache = SynthCache::new();
        let base = PipelineOptions::default();
        let gc = PipelineOptions {
            style: ImplStyle::GeneralizedC,
            ..Default::default()
        };
        for opts in [&base, &gc] {
            Pipeline::from_g(XYZ_G)
                .unwrap()
                .with_cache(&cache)
                .run(opts)
                .unwrap();
        }
        Pipeline::from_g(TOGGLE_G)
            .unwrap()
            .with_cache(&cache)
            .run(&base)
            .unwrap();
        // Three distinct keys, no false hits.
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
        assert_eq!(cache.len(), 3);
        // Same spec parsed from equivalent text still hits.
        let reparsed = petri::write_g(&parse_g(XYZ_G).unwrap());
        Pipeline::from_g(&reparsed)
            .unwrap()
            .with_cache(&cache)
            .run(&base)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
    }

    #[test]
    fn expansion_candidates_share_the_cache() {
        // A lattice sibling synthesized standalone seeds the cache; the
        // partial-spec selection run then reuses it per candidate
        // instead of re-deriving from scratch — and stores the
        // remaining candidates for future runs.
        let cache = SynthCache::new();
        let spec = parse_g(PCREQ_G).unwrap();
        let cands = handshake::expand_handshakes(&spec, &ExpansionOptions::default()).unwrap();
        let standalone = Pipeline::from_parts(cands[0].stg.clone(), cands[0].sg.clone())
            .with_cache(&cache)
            .run(&PipelineOptions::default())
            .unwrap();
        assert_eq!(cache.shared_hits(), 0);
        let entries_before = cache.len();

        let opts = PipelineOptions {
            expand: Some(ExpansionOptions::default()),
            ..Default::default()
        };
        let done = Pipeline::from_g(PCREQ_G)
            .unwrap()
            .with_cache(&cache)
            .run(&opts)
            .unwrap();
        assert!(cache.shared_hits() >= 1, "eager sibling was not shared");
        assert_eq!(
            done.diagnostics().shared_candidate_hits,
            cache.shared_hits(),
            "per-run counter drifted from the cache's total"
        );
        assert!(
            cache.len() > entries_before,
            "surviving candidates were not stored for future sharing"
        );
        // Sharing must not change the outcome: same winner as an
        // uncached selection run.
        let uncached = synthesize_with(PCREQ_G, &opts).unwrap();
        assert_eq!(
            done.synthesis().netlist.describe(),
            uncached.netlist.describe()
        );
        assert_eq!(done.synthesis().expansion, uncached.expansion);
        // The candidate-level entry round-trips as a standalone run:
        // running the eager extreme again is a whole-run cache hit.
        let again = Pipeline::from_parts(cands[0].stg.clone(), cands[0].sg.clone())
            .with_cache(&cache)
            .run(&PipelineOptions::default())
            .unwrap();
        assert_eq!(again.diagnostics().cache_hits, 1);
        assert_eq!(standalone.netlist().describe(), again.netlist().describe());
        assert!(again.synthesis().expansion.is_empty());
    }

    #[test]
    fn staged_chain_hits_the_cache_a_run_filled() {
        // The staged chain accumulates the same key run() precomputes.
        let cache = SynthCache::new();
        let opts = PipelineOptions {
            reduce: Some(ReduceOptions::default()),
            ..Default::default()
        };
        Pipeline::from_g(MFIG1_G)
            .unwrap()
            .with_cache(&cache)
            .run(&opts)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let done = Pipeline::from_g(MFIG1_G)
            .unwrap()
            .with_cache(&cache)
            .complete()
            .unwrap()
            .reduce(&ReduceOptions::default())
            .unwrap()
            .resolve(&CscOptions::default())
            .unwrap()
            .synthesize(ImplStyle::ComplexGate)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(done.diagnostics().cache_hits, 1);
        assert_eq!(
            done.synthesis().move_labels().collect::<Vec<_>>(),
            ["Ack- -> Req+"]
        );
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = SynthCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let base = PipelineOptions::default();
        let run = |src: &str, opts: &PipelineOptions| {
            Pipeline::from_g(src)
                .unwrap()
                .with_cache(&cache)
                .run(opts)
                .unwrap();
        };
        // Three distinct keys into a 2-entry cache: the coldest goes.
        run(TOGGLE_G, &base);
        run(XYZ_G, &base);
        run(TOGGLE_G, &base); // refresh toggle: xyz is now coldest
        run(MFIG1_G, &base.clone().with_reduce(ReduceOptions::default()));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // toggle survived its refresh; xyz was the victim.
        run(TOGGLE_G, &base);
        assert_eq!(cache.evictions(), 1, "refreshed entry was evicted");
        run(XYZ_G, &base);
        assert_eq!(cache.evictions(), 2, "evicted entry still resident");
        // Tightening the bound evicts immediately.
        cache.set_capacity(Some(1));
        assert_eq!((cache.len(), cache.evictions()), (1, 3));
    }

    #[test]
    fn cache_persists_across_a_store_round_trip() {
        let store = MemStore::new();
        let opts = PipelineOptions::default();
        let cache = SynthCache::new();
        let first = Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&cache)
            .run(&opts)
            .unwrap();
        cache.save_to(&store).unwrap();

        // A fresh handle loaded from the store hits on the same key.
        let reloaded = SynthCache::load_from(&store).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.misses(), 1, "counters were not persisted");
        let replay = Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&reloaded)
            .run(&opts)
            .unwrap();
        assert_eq!(replay.diagnostics().cache_hits, 1);
        assert_eq!(
            first.netlist().describe(),
            replay.netlist().describe(),
            "reloaded synthesis drifted"
        );
        // Save → load → save is byte-identical.
        let bytes = cache.to_bytes();
        assert_eq!(
            bytes,
            SynthCache::from_bytes(&bytes).unwrap().to_bytes(),
            "codec round-trip not byte-identical"
        );
        // An empty store loads as an empty cache; corrupt bytes error.
        assert!(SynthCache::load_from(&MemStore::new()).unwrap().is_empty());
        assert!(SynthCache::from_bytes(b"not a snapshot").is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xFF;
        assert!(SynthCache::from_bytes(&wrong_version).is_err());
        let mut truncated = bytes.clone();
        truncated.pop();
        assert!(SynthCache::from_bytes(&truncated).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(SynthCache::from_bytes(&trailing).is_err());
    }

    #[test]
    fn journal_replay_recovers_a_crashed_cache() {
        use std::sync::Arc;

        let store = Arc::new(MemStore::new());
        let opts = PipelineOptions::default();
        let cache = SynthCache::new();
        cache.attach_journal(store.clone());

        // Two real executions, each journaled durably at insert time.
        let first = Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&cache)
            .run(&opts)
            .unwrap();
        Pipeline::from_g(TOGGLE_G)
            .unwrap()
            .with_cache(&cache)
            .run(&opts)
            .unwrap();
        assert_eq!(cache.journal_appends(), 2);
        assert_eq!(cache.journal_errors(), 0);
        // Simulated kill -9: the cache handle is dropped without ever
        // writing a snapshot. The journal alone must carry both runs.
        drop(cache);
        assert!(store.read().unwrap().is_none(), "no snapshot expected");

        let recovery = SynthCache::recover(&*store).unwrap();
        assert_eq!(recovery.snapshot_entries, 0);
        assert_eq!(recovery.journal_entries, 2);
        assert_eq!(recovery.torn_bytes, 0);
        let recovered = recovery.cache;
        assert_eq!(recovered.len(), 2);
        let replay = Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&recovered)
            .run(&opts)
            .unwrap();
        assert_eq!(replay.diagnostics().cache_hits, 1, "replay re-executed");
        assert_eq!(
            first.netlist().describe(),
            replay.netlist().describe(),
            "journaled synthesis drifted"
        );

        // Compaction folds the journal into a snapshot and clears it.
        recovered.compact_to(&*store).unwrap();
        assert!(store.read().unwrap().is_some());
        assert!(store.read_journal().unwrap().is_none());
        let recompacted = SynthCache::recover(&*store).unwrap();
        assert_eq!(recompacted.snapshot_entries, 2);
        assert_eq!(recompacted.journal_entries, 0);
    }

    #[test]
    fn replay_is_idempotent_across_the_compaction_crash_window() {
        use std::sync::Arc;

        // A crash *between* the snapshot rename and the journal clear
        // leaves the same entry in both artifacts; recovery must merge,
        // not duplicate or fail.
        let store = Arc::new(MemStore::new());
        let cache = SynthCache::new();
        cache.attach_journal(store.clone());
        Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&cache)
            .run(&PipelineOptions::default())
            .unwrap();
        cache.save_to(&*store).unwrap(); // snapshot landed, journal did not clear
        let recovery = SynthCache::recover(&*store).unwrap();
        assert_eq!(recovery.snapshot_entries, 1);
        assert_eq!(recovery.journal_entries, 1);
        assert_eq!(recovery.cache.len(), 1, "replay duplicated an entry");
    }

    #[test]
    fn torn_journal_tail_is_dropped_but_corruption_errors() {
        use std::sync::Arc;

        let store = Arc::new(MemStore::new());
        let cache = SynthCache::new();
        cache.attach_journal(store.clone());
        Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&cache)
            .run(&PipelineOptions::default())
            .unwrap();
        let record = store.read_journal().unwrap().unwrap();

        // One complete record followed by a torn tail (the partial
        // write a mid-append kill leaves): replayed and counted.
        let torn = MemStore::new();
        torn.append(&record).unwrap();
        torn.append(&record[..10]).unwrap();
        let recovery = SynthCache::recover(&torn).unwrap();
        assert_eq!(recovery.journal_entries, 1);
        assert_eq!(recovery.torn_bytes, 10);

        // A complete record whose payload was flipped is corruption,
        // not a torn tail: the checksum rejects it loudly.
        let corrupt = MemStore::new();
        let mut bytes = record.clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        corrupt.append(&bytes).unwrap();
        let err = SynthCache::recover(&corrupt).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Foreign magic is rejected too.
        let foreign = MemStore::new();
        let mut bytes = record.clone();
        bytes[0] = b'X';
        foreign.append(&bytes).unwrap();
        assert!(SynthCache::recover(&foreign).is_err());
    }

    #[test]
    fn journal_append_failure_is_counted_not_fatal() {
        use std::sync::Arc;

        // A FileStore pointed into a directory that does not exist
        // cannot append; the insert must still succeed in memory, with
        // the failure surfaced on the error counter.
        let missing = std::env::temp_dir()
            .join(format!("reshuffle-no-such-dir-{}", std::process::id()))
            .join("cache");
        let store = FileStore::new(&missing);
        assert!(store.write(b"snapshot").is_err(), "write path error lost");
        let cache = SynthCache::new();
        cache.attach_journal(Arc::new(store));
        Pipeline::from_g(XYZ_G)
            .unwrap()
            .with_cache(&cache)
            .run(&PipelineOptions::default())
            .unwrap();
        assert_eq!(cache.len(), 1, "insert must survive a journal failure");
        assert_eq!(cache.journal_appends(), 0);
        assert_eq!(cache.journal_errors(), 1);
    }

    #[test]
    fn file_store_journal_lifecycle() {
        let path = std::env::temp_dir().join(format!(
            "reshuffle-core-journal-{}.cache",
            std::process::id()
        ));
        let store = FileStore::new(&path);
        let _ = store.clear_journal();
        assert!(store.read_journal().unwrap().is_none());
        store.append(b"abc").unwrap();
        store.append(b"def").unwrap();
        assert!(store.journal_path().exists());
        assert_eq!(store.read_journal().unwrap().unwrap(), b"abcdef");
        store.clear_journal().unwrap();
        assert!(!store.journal_path().exists());
        assert!(store.read_journal().unwrap().is_none());
        store.clear_journal().unwrap(); // clearing an absent journal is fine
        let _ = std::fs::remove_file(&path);
    }

    /// Replica of the cache-key option trail. `DefaultHasher` is not
    /// stable across Rust releases, so the pin replays the *sequence*
    /// (tags and canonical words, in stage order) rather than
    /// hard-coding hash values: if a refactor reorders the trail or
    /// drops a word, this fails while `BENCH_tables.json` keys and
    /// persisted caches silently move.
    #[test]
    fn option_trail_hash_is_pinned() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        fn replay_mix(seed: u64, tag: &str, parts: &[u64]) -> u64 {
            let mut h = DefaultHasher::new();
            seed.hash(&mut h);
            tag.hash(&mut h);
            parts.hash(&mut h);
            h.finish()
        }

        let spec = parse_g(XYZ_G).unwrap();
        let fp = canonical_fingerprint(&spec);

        // Default options: prereduce → complete → skip_reduce →
        // resolve → synthesize.
        let mut h = 0u64;
        h = replay_mix(h, "prereduce", &[1]);
        h = replay_mix(h, "complete", &[]);
        h = replay_mix(h, "skip_reduce", &[]);
        h = replay_mix(h, "resolve", &[4, 12]);
        h = replay_mix(h, "synthesize", &[0, 1]);
        assert_eq!(
            run_cache_key(&spec, &PipelineOptions::default()),
            replay_mix(fp, "key", &[h]),
            "default option trail drifted"
        );

        // Both opt-in stages enabled, with their default parameters.
        let full = PipelineOptions::new()
            .with_expand(ExpansionOptions::default())
            .with_reduce(ReduceOptions::default());
        let mut h = 0u64;
        h = replay_mix(h, "prereduce", &[1]);
        h = replay_mix(h, "expand", &[64]);
        h = replay_mix(
            h,
            "reduce",
            &[0, 0, 16, 128, 2.0f64.to_bits(), 1.0f64.to_bits()],
        );
        h = replay_mix(h, "resolve", &[4, 12]);
        h = replay_mix(h, "synthesize", &[0, 1]);
        assert_eq!(
            run_cache_key(&spec, &full),
            replay_mix(fp, "key", &[h]),
            "expand+reduce option trail drifted"
        );

        // Every switch lands in the key — including the prereduce flag
        // (a pipeline that rebuilt a different net must not collide
        // with one that synthesized the verbatim input).
        let keys = [
            run_cache_key(&spec, &PipelineOptions::default()),
            run_cache_key(&spec, &full),
            run_cache_key(
                &spec,
                &PipelineOptions::new().with_style(ImplStyle::GeneralizedC),
            ),
            run_cache_key(&spec, &PipelineOptions::new().with_skip_verify(true)),
            run_cache_key(&spec, &PipelineOptions::new().with_prereduce(false)),
        ];
        // The state budget bounds work without changing the artifact,
        // so it must NOT move the key.
        assert_eq!(
            keys[0],
            run_cache_key(&spec, &PipelineOptions::new().with_state_budget(7)),
            "state budget leaked into the cache key"
        );
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "distinct options collided");
            }
        }
    }

    #[test]
    fn source_cache_key_agrees_with_run_cache_key() {
        let opts = PipelineOptions::new().with_style(ImplStyle::GeneralizedC);
        let spec = parse_g(XYZ_G).unwrap();
        assert_eq!(
            source_cache_key(XYZ_G, &opts).unwrap(),
            run_cache_key(&spec, &opts),
            "router-side key must match the pipeline-side key"
        );
        assert!(matches!(
            source_cache_key("not a spec", &opts),
            Err(PipelineError::Parse(_))
        ));
    }
}
