//! End-to-end facade for the `reshuffle` workspace.
//!
//! This crate ties the member crates of the DAC 1999 reproduction —
//! *Automatic Synthesis and Optimization of Partially Specified
//! Asynchronous Systems* — into one pipeline:
//!
//! 1. parse an astg (`.g`) specification ([`petri`]);
//! 2. if the specification is *partial* (open `.handshake` channels,
//!    two-phase toggle events), expand it: enumerate the reshuffling
//!    lattice (Section 3, [`handshake`]), run every surviving candidate
//!    through the rest of the pipeline in parallel, and keep the best
//!    by (state signals inserted, literal estimate, timed cycle);
//! 3. build the binary-encoded state graph ([`sg`]);
//! 4. check speed independence and Complete State Coding ([`sg`]);
//! 5. optionally reduce concurrency (Section 4, [`reduce`]) — run
//!    before CSC resolution so serializations that dissolve conflicts
//!    are preferred over state-signal insertion;
//! 6. resolve remaining CSC conflicts by state-signal insertion
//!    ([`synth`]);
//! 7. derive, minimize, and map next-state logic ([`logic`], [`synth`]);
//! 8. verify the mapped netlist against the specification ([`synth`]).
//!
//! The one-call entry point is [`synthesize`]; [`synthesize_with`]
//! exposes the intermediate artifacts and the knobs.
//!
//! # Example
//!
//! ```
//! // The xyz example: a 3-signal cycle with distinct state codes.
//! let netlist = reshuffle::synthesize(
//!     ".model xyz\n.inputs x\n.outputs y z\n.graph\n\
//!      x+ y+\ny+ z+\nz+ x-\nx- y-\ny- z-\nz- x+\n\
//!      .marking { <z-,x+> }\n.end\n",
//! )?;
//! assert_eq!(netlist.signals().len(), 3);
//! # Ok::<(), reshuffle::PipelineError>(())
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Petri nets, STGs, `.g` parsing ([`reshuffle_petri`]).
pub use reshuffle_petri as petri;

/// Two-level logic and factoring ([`reshuffle_logic`]).
pub use reshuffle_logic as logic;

/// State graphs and coding analyses ([`reshuffle_sg`]).
pub use reshuffle_sg as sg;

/// Logic synthesis back-end ([`reshuffle_synth`]).
pub use reshuffle_synth as synth;

/// Timed simulation and cycle analysis ([`reshuffle_timing`]).
pub use reshuffle_timing as timing;

/// Handshake expansion of partial specifications ([`reshuffle_handshake`]).
pub use reshuffle_handshake as handshake;

/// Concurrency reduction ([`reshuffle_reduce`]).
pub use reshuffle_reduce as reduce;

pub use reshuffle_handshake::{ExpansionOptions, HandshakeError, Reshuffling};
pub use reshuffle_petri::{parse_g, PetriError, Stg};
pub use reshuffle_reduce::{MoveStep, ReduceError, ReduceOptions};
pub use reshuffle_sg::{build_state_graph, SgError, StateGraph};
pub use reshuffle_synth::{CscOptions, Library, Netlist, SynthError};
pub use reshuffle_timing::{simulate, DelayModel, SimOptions, TimingError};

/// Errors from the end-to-end pipeline, tagged by the failing stage.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The `.g` source failed to parse or violated the token game.
    Parse(PetriError),
    /// Handshake expansion failed, or a partial specification reached
    /// the pipeline without the expansion stage enabled.
    Expand(HandshakeError),
    /// State-graph construction failed (inconsistent coding, budget, …).
    StateGraph(SgError),
    /// The specification is not speed-independent (determinism,
    /// commutativity, or output persistency is violated).
    NotSpeedIndependent {
        /// Total number of violation witnesses found.
        violations: usize,
    },
    /// The opt-in concurrency-reduction stage failed (e.g. the
    /// cycle-time bound excluded every reduction).
    Reduce(ReduceError),
    /// Logic synthesis or CSC resolution failed.
    Synth(SynthError),
    /// Timed analysis failed.
    Timing(TimingError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse: {e}"),
            PipelineError::Expand(e) => write!(f, "expansion: {e}"),
            PipelineError::StateGraph(e) => write!(f, "state graph: {e}"),
            PipelineError::NotSpeedIndependent { violations } => write!(
                f,
                "specification is not speed-independent ({violations} violations)"
            ),
            PipelineError::Reduce(e) => write!(f, "reduction: {e}"),
            PipelineError::Synth(e) => write!(f, "synthesis: {e}"),
            PipelineError::Timing(e) => write!(f, "timing: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Parse(e) => Some(e),
            PipelineError::Expand(e) => Some(e),
            PipelineError::StateGraph(e) => Some(e),
            PipelineError::NotSpeedIndependent { .. } => None,
            PipelineError::Reduce(e) => Some(e),
            PipelineError::Synth(e) => Some(e),
            PipelineError::Timing(e) => Some(e),
        }
    }
}

impl From<ReduceError> for PipelineError {
    fn from(e: ReduceError) -> Self {
        PipelineError::Reduce(e)
    }
}

impl From<HandshakeError> for PipelineError {
    fn from(e: HandshakeError) -> Self {
        PipelineError::Expand(e)
    }
}

impl From<PetriError> for PipelineError {
    fn from(e: PetriError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<SgError> for PipelineError {
    fn from(e: SgError) -> Self {
        PipelineError::StateGraph(e)
    }
}

impl From<SynthError> for PipelineError {
    fn from(e: SynthError) -> Self {
        PipelineError::Synth(e)
    }
}

impl From<TimingError> for PipelineError {
    fn from(e: TimingError) -> Self {
        PipelineError::Timing(e)
    }
}

/// Convenient result alias for the pipeline.
pub type Result<T> = std::result::Result<T, PipelineError>;

/// Implementation style for the synthesized logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImplStyle {
    /// One atomic complex gate per signal (the paper's Fig. 3(d)).
    #[default]
    ComplexGate,
    /// Generalized C-element with set/reset networks (Fig. 3(c)).
    GeneralizedC,
}

/// Knobs for [`synthesize_with`].
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// Implementation style (complex gate by default).
    pub style: ImplStyle,
    /// Opt-in handshake-expansion stage (Section 3) for *partial*
    /// specifications: enumerate the reshuffling lattice, synthesize
    /// every surviving candidate (composing with the `reduce` stage if
    /// enabled) and keep the best by (state signals inserted, literal
    /// estimate, timed cycle). `None` (the default) rejects partial
    /// specifications with [`PipelineError::Expand`]; complete
    /// specifications pass through the stage untouched.
    pub expand: Option<ExpansionOptions>,
    /// Opt-in concurrency-reduction stage (Section 4), run *before* CSC
    /// resolution so reductions that dissolve conflicts are preferred
    /// over state-signal insertion. `None` (the default) skips it.
    pub reduce: Option<ReduceOptions>,
    /// CSC-resolution search parameters.
    pub csc: CscOptions,
    /// Skip the final implementation-vs-specification check.
    pub skip_verify: bool,
}

/// Everything the pipeline produced, for callers that want more than
/// the netlist.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The STG actually synthesized (after any CSC insertions).
    pub stg: Stg,
    /// Its state graph.
    pub sg: StateGraph,
    /// The mapped implementation.
    pub netlist: Netlist,
    /// Names of state signals inserted to resolve CSC.
    pub inserted: Vec<String>,
    /// Serializing moves applied by the concurrency-reduction stage
    /// (empty when the stage was skipped or found nothing to improve).
    pub moves: Vec<String>,
    /// The reduction's winning path with per-move statistics (parallel
    /// to `moves`; what `tables --moves` renders as deltas).
    pub move_steps: Vec<MoveStep>,
    /// Ordering choices of the winning reshuffling when the
    /// handshake-expansion stage ran on a partial specification
    /// (empty for the eager extreme, complete inputs, or when the
    /// stage was disabled).
    pub expansion: Vec<String>,
}

/// Runs the full pipeline on `.g` source text and returns the mapped
/// netlist.
///
/// Equivalent to [`synthesize_with`] under [`PipelineOptions::default`].
///
/// # Errors
///
/// Any stage failure, tagged by [`PipelineError`] variant.
pub fn synthesize(g_source: &str) -> Result<Netlist> {
    synthesize_with(g_source, &PipelineOptions::default()).map(|s| s.netlist)
}

/// Runs the full pipeline with explicit options, returning every
/// intermediate artifact.
///
/// # Errors
///
/// Any stage failure, tagged by [`PipelineError`] variant.
pub fn synthesize_with(g_source: &str, opts: &PipelineOptions) -> Result<Synthesis> {
    synthesize_stg(&parse_g(g_source)?, opts)
}

/// Runs the pipeline on an already-parsed STG.
///
/// Partial specifications (declared `.handshake` channels or toggle
/// events) are routed through the handshake-expansion stage when
/// [`PipelineOptions::expand`] is set, and rejected with
/// [`PipelineError::Expand`] otherwise.
///
/// # Errors
///
/// Any stage failure, tagged by [`PipelineError`] variant.
pub fn synthesize_stg(spec: &Stg, opts: &PipelineOptions) -> Result<Synthesis> {
    if spec.is_partial() {
        let Some(eopts) = &opts.expand else {
            return Err(PipelineError::Expand(HandshakeError::NotExpanded));
        };
        return expand_and_select(spec, eopts, opts);
    }
    let sg0 = build_state_graph(spec)?;
    synthesize_stg_from(spec, sg0, opts)
}

/// Search priority of a candidate reshuffling: state signals inserted
/// (the cost of resolving CSC), then the literal estimate, then the
/// timed cycle (as order-preserving bits), then enumeration order —
/// the same lexicographic shape the reduce stage optimizes.
type ExpandScore = (usize, u32, u64, usize);

/// The Section 3 selection loop: synthesize every enumerated
/// reshuffling (each composes with the reduce stage if enabled) and
/// keep the lexicographically best. Candidates are independent, so they
/// are evaluated in parallel by a scoped worker pool bounded at the
/// machine's parallelism (a thread per candidate would oversubscribe on
/// large lattices).
fn expand_and_select(
    spec: &Stg,
    eopts: &ExpansionOptions,
    opts: &PipelineOptions,
) -> Result<Synthesis> {
    let candidates = reshuffle_handshake::expand_handshakes(spec, eopts)?;
    let inner = PipelineOptions {
        expand: None,
        ..opts.clone()
    };
    // Score cycles under the same delay model the reduce stage uses.
    let (input_delay, gate_delay) = match &opts.reduce {
        Some(r) => (r.input_delay, r.gate_delay),
        None => (2.0, 1.0),
    };
    let evaluate = |c: &Reshuffling| -> Result<(Synthesis, f64)> {
        let s = synthesize_stg_from(&c.stg, c.sg.clone(), &inner)?;
        let delays = DelayModel::uniform(&s.stg, input_delay, gate_delay);
        let run = simulate(&s.stg, &delays, &SimOptions::default())?;
        Ok((s, run.period))
    };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(candidates.len())
        .max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut outcomes: Vec<Option<Result<(Synthesis, f64)>>> =
        (0..candidates.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(c) = candidates.get(i) else { break };
                        local.push((i, evaluate(c)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("reshuffling evaluation panicked") {
                outcomes[i] = Some(r);
            }
        }
    });
    let outcomes: Vec<Result<(Synthesis, f64)>> = outcomes
        .into_iter()
        .map(|o| o.expect("every candidate evaluated"))
        .collect();

    let mut best: Option<(ExpandScore, usize)> = None;
    for (i, outcome) in outcomes.iter().enumerate() {
        let Ok((s, cycle)) = outcome else { continue };
        let score: ExpandScore = (
            s.inserted.len(),
            reshuffle_synth::literal_estimate(&s.sg),
            cycle.to_bits(),
            i,
        );
        if !matches!(best, Some((b, _)) if b <= score) {
            best = Some((score, i));
        }
    }
    match best {
        Some((_, i)) => {
            let (mut s, _) = outcomes.into_iter().nth(i).unwrap().unwrap();
            s.expansion = candidates[i].choices.clone();
            Ok(s)
        }
        // Every reshuffling failed synthesis; surface the eager
        // extreme's error as the representative one.
        None => Err(outcomes
            .into_iter()
            .find_map(|o| o.err())
            .unwrap_or(PipelineError::Expand(HandshakeError::NoFeasibleReshuffling))),
    }
}

/// [`synthesize_stg`] for callers that already built the
/// specification's state graph (`sg0` must be the state graph of
/// `spec`); avoids rebuilding the most expensive artifact.
///
/// # Errors
///
/// Any stage failure, tagged by [`PipelineError`] variant.
pub fn synthesize_stg_from(
    spec: &Stg,
    sg0: StateGraph,
    opts: &PipelineOptions,
) -> Result<Synthesis> {
    if spec.is_partial() {
        return Err(PipelineError::Expand(HandshakeError::NotExpanded));
    }
    let si = reshuffle_sg::props::speed_independence(&sg0);
    if !si.is_speed_independent() {
        return Err(PipelineError::NotSpeedIndependent {
            violations: si.nondeterminism.len()
                + si.noncommutativity.len()
                + si.nonpersistency.len(),
        });
    }

    // Opt-in concurrency reduction runs before CSC resolution, so
    // reductions that dissolve conflicts win over state-signal
    // insertion. The reducer preserves speed independence by
    // construction, so the gate above still covers the reduced graph;
    // it also reports the reduced graph's conflict count, which lets a
    // conflict-free reduction skip the coding analysis below entirely.
    let (spec, sg0, moves, move_steps, known_conflicts) = match &opts.reduce {
        None => (spec.clone(), sg0, Vec::new(), Vec::new(), None),
        Some(ropts) => {
            let r = reshuffle_reduce::reduce_concurrency_from(spec, sg0, ropts)?;
            (r.stg, r.sg, r.moves, r.steps, Some(r.csc_conflicts))
        }
    };

    // `analyze_csc` runs at most once per graph in this pipeline: one
    // analysis serves both the conflict check and the resolver.
    let (stg, sg, inserted) = if known_conflicts == Some(0) {
        (spec, sg0, Vec::new())
    } else {
        let analysis = reshuffle_sg::csc::analyze_csc(&sg0);
        if analysis.has_csc() {
            (spec, sg0, Vec::new())
        } else {
            // Hand the already-built graph and its analysis to the
            // resolver rather than letting it rebuild either.
            let r = reshuffle_synth::resolve_csc_analyzed(&spec, sg0, &analysis, &opts.csc)?;
            (r.stg, r.sg, r.inserted)
        }
    };

    let netlist = match opts.style {
        ImplStyle::ComplexGate => reshuffle_synth::synthesize_complex_gates(&sg)?.netlist,
        ImplStyle::GeneralizedC => reshuffle_synth::synthesize_gc(&sg)?.netlist,
    };
    if !opts.skip_verify {
        reshuffle_synth::verify_against_sg(&sg, &netlist)?;
    }
    Ok(Synthesis {
        stg,
        sg,
        netlist,
        inserted,
        moves,
        move_steps,
        expansion: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE_G: &str = "\
.model toggle
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    const XYZ_G: &str = "\
.model xyz
.inputs x
.outputs y z
.graph
x+ y+
y+ z+
z+ x-
x- y-
y- z-
z- x+
.marking { <z-,x+> }
.end
";

    const FIG1_G: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn toggle_synthesizes_to_wire() {
        let netlist = synthesize(TOGGLE_G).unwrap();
        let b = netlist.signal_by_name("b").unwrap();
        assert!(netlist.is_wire(b));
    }

    #[test]
    fn xyz_full_pipeline() {
        let s = synthesize_with(XYZ_G, &PipelineOptions::default()).unwrap();
        assert_eq!(s.sg.num_states(), 6);
        assert!(s.inserted.is_empty());
        assert_eq!(s.netlist.signals().len(), 3);
    }

    #[test]
    fn gc_style_also_verifies() {
        let opts = PipelineOptions {
            style: ImplStyle::GeneralizedC,
            ..Default::default()
        };
        let s = synthesize_with(XYZ_G, &opts).unwrap();
        assert_eq!(s.netlist.signals().len(), 3);
    }

    #[test]
    fn csc_conflict_is_resolved_or_reported() {
        // Fig. 1 violates CSC; the pipeline must either insert a state
        // signal and verify, or report the stalled resolution — never
        // silently synthesize conflicted logic.
        match synthesize_with(FIG1_G, &PipelineOptions::default()) {
            Ok(s) => assert!(!s.inserted.is_empty()),
            Err(PipelineError::Synth(SynthError::CscResolutionFailed { .. })) => {}
            Err(e) => panic!("unexpected pipeline error: {e}"),
        }
    }

    /// Mirror of Fig. 1 (`Req` is the output): its CSC conflict cannot
    /// be fixed by state-signal insertion, only by serializing `Req+`
    /// after `Ack-`.
    const MFIG1_G: &str = "\
.model mfig1
.inputs Ack
.outputs Req
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn reduce_stage_rescues_insertion_stalls() {
        // Without reduction the pipeline stalls on mfig1 …
        let default_run = synthesize_with(MFIG1_G, &PipelineOptions::default());
        assert!(matches!(
            default_run,
            Err(PipelineError::Synth(SynthError::CscResolutionFailed { .. }))
        ));
        // … with the opt-in stage it synthesizes with zero state signals.
        let opts = PipelineOptions {
            reduce: Some(ReduceOptions::default()),
            ..Default::default()
        };
        let s = synthesize_with(MFIG1_G, &opts).unwrap();
        assert_eq!(s.moves, vec!["Ack- -> Req+".to_string()]);
        // The per-move trajectory rides along for reporting.
        assert_eq!(s.move_steps.len(), 1);
        assert_eq!(s.move_steps[0].label, s.moves[0]);
        assert!(s.inserted.is_empty());
        assert_eq!(s.sg.num_states(), 4);
    }

    #[test]
    fn reduce_stage_is_identity_on_sequential_specs() {
        let opts = PipelineOptions {
            reduce: Some(ReduceOptions::default()),
            ..Default::default()
        };
        let s = synthesize_with(XYZ_G, &opts).unwrap();
        assert!(s.moves.is_empty());
        assert_eq!(s.sg.num_states(), 6);
    }

    #[test]
    fn reduce_stage_reports_infeasible_bounds() {
        let opts = PipelineOptions {
            reduce: Some(ReduceOptions {
                max_cycle_time: Some(0.5),
                ..Default::default()
            }),
            ..Default::default()
        };
        match synthesize_with(XYZ_G, &opts) {
            Err(PipelineError::Reduce(ReduceError::NoFeasibleReduction)) => {}
            other => panic!("expected infeasible-reduction error, got {other:?}"),
        }
    }

    /// Partial request/acknowledge controller with a committed Go
    /// pulse: the channel's return-to-zero edges are free to reshuffle
    /// around the pulse.
    const PCREQ_G: &str = "\
.model pcreq
.inputs Ack
.outputs Req Go
.handshake Req Ack
.graph
Req~ Ack~
Ack~ Go+
Go+ Go-
Go- Req~
.marking { <Go-,Req~> }
.end
";

    #[test]
    fn partial_specs_require_the_expand_stage() {
        match synthesize(PCREQ_G) {
            Err(PipelineError::Expand(HandshakeError::NotExpanded)) => {}
            other => panic!("expected NotExpanded, got {other:?}"),
        }
    }

    #[test]
    fn expand_stage_selects_a_reshuffling() {
        let opts = PipelineOptions {
            expand: Some(ExpansionOptions::default()),
            ..Default::default()
        };
        let s = synthesize_with(PCREQ_G, &opts).unwrap();
        // The winner serializes Req- behind Go+ and Ack- behind Go-:
        // one state signal and 6 literals, against the eager extreme's
        // two signals and 16 literals.
        assert_eq!(
            s.expansion,
            vec!["Go+ -> Req-".to_string(), "Go- -> Ack-".to_string()]
        );
        assert_eq!(s.inserted, vec!["csc0".to_string()]);
        assert!(!s.stg.is_partial());
        assert_eq!(s.netlist.signals().len(), 4);
    }

    #[test]
    fn expand_stage_is_identity_on_complete_specs() {
        let opts = PipelineOptions {
            expand: Some(ExpansionOptions::default()),
            ..Default::default()
        };
        let s = synthesize_with(XYZ_G, &opts).unwrap();
        assert!(s.expansion.is_empty());
        assert_eq!(s.sg.num_states(), 6);
    }

    #[test]
    fn expand_stage_composes_with_reduce() {
        let opts = PipelineOptions {
            expand: Some(ExpansionOptions::default()),
            reduce: Some(ReduceOptions::default()),
            ..Default::default()
        };
        let s = synthesize_with(PCREQ_G, &opts).unwrap();
        // With the reduce stage composed per candidate, serializing
        // moves dissolve every conflict: no state signal at all beats
        // the expansion-only winner.
        assert!(s.inserted.is_empty());
        assert!(!s.moves.is_empty());
        assert_eq!(s.netlist.signals().len(), 3);
    }

    #[test]
    fn non_speed_independent_spec_is_rejected() {
        // A choice place where input a+ disables output b+: output
        // persistency is violated, so the paper's flow must refuse it.
        let nsi = ".model nsi\n.inputs a\n.outputs b\n.graph\n\
             p0 a+ b+\na+ p1\nb+ p2\n.marking { p0 }\n.end\n";
        match synthesize(nsi) {
            Err(PipelineError::NotSpeedIndependent { violations }) => assert!(violations > 0),
            other => panic!("expected SI rejection, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_tagged() {
        match synthesize(".model broken\n.end\n") {
            Err(PipelineError::Parse(_)) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
