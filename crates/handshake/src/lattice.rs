//! The reshuffling lattice of a partial specification.
//!
//! After the base expansion, each return-to-zero (RTZ) transition `t`
//! is concurrent with a set of *anchor* events — the other events of
//! the specification it could be ordered after. A lattice point picks,
//! for every RTZ transition, the subset of its anchors that must
//! precede it; the empty choice everywhere is the *eager* extreme (RTZ
//! fires as soon as the protocol allows), the full choice everywhere is
//! the *lazy* extreme (RTZ is deferred behind everything it was
//! concurrent with). Points are ordered by inclusion, so the choice
//! sets form a genuine lattice: product of per-transition subset
//! lattices.
//!
//! RTZ-to-RTZ ordering is deliberately left out of the choice sets —
//! mutual constraints between two concurrent RTZ transitions would
//! deadlock, and their relative order is already pinned transitively by
//! the anchors they individually wait for.

use reshuffle_petri::TransitionId;
use reshuffle_sg::conc::concurrent;
use reshuffle_sg::props::{all_events_fire, speed_independence};
use reshuffle_sg::restrict::restrict_with_place;
use reshuffle_sg::EventId;

use crate::expand::BaseExpansion;

/// Hard cap on raw lattice points enumerated before pruning; beyond it
/// the per-transition choice sets degrade from full subsets to prefix
/// chains, and finally to the two extremes only.
const RAW_CAP: usize = 4096;

/// One point of the lattice: per RTZ transition (in `BaseExpansion::rtz`
/// order), a bitmask over its anchor list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LatticePoint {
    pub masks: Vec<u64>,
}

impl LatticePoint {
    /// The ordering constraints `(anchor, rtz)` this point commits to.
    pub fn constraints(
        &self,
        rtz: &[TransitionId],
        anchors: &[Vec<TransitionId>],
    ) -> Vec<(TransitionId, TransitionId)> {
        let mut out = Vec::new();
        for (i, &t) in rtz.iter().enumerate() {
            for (j, &a) in anchors[i].iter().enumerate() {
                if self.masks[i] >> j & 1 == 1 {
                    out.push((a, t));
                }
            }
        }
        out
    }
}

/// Per RTZ transition, the anchor events it may be ordered after: every
/// single-instance, non-RTZ signal edge concurrent with it in the base
/// state graph *whose individual serialization is feasible* — the
/// ordering place stays 1-safe and the graph stays deadlock-free, live
/// and speed-independent. The safety prefilter is what bounds the
/// reshuffling window at the channel's next occurrence: an event of the
/// following cycle would refill the ordering place before the RTZ
/// transition consumes it. Sorted by transition id.
pub(crate) fn anchors(base: &BaseExpansion) -> Vec<Vec<TransitionId>> {
    base.rtz
        .iter()
        .map(|&t| {
            let te = base.stg.edge_of(t).expect("RTZ transitions carry edges");
            base.stg
                .transitions()
                .filter(|&u| {
                    let Some(ue) = base.stg.edge_of(u) else {
                        return false; // dummies cannot anchor
                    };
                    !base.rtz.contains(&u)
                        && base.stg.transitions_of_edge(ue).len() == 1
                        && concurrent(&base.sg, te, ue)
                        && feasible_alone(base, u, t)
                })
                .take(63) // LatticePoint masks are u64 bitmasks
                .collect()
        })
        .collect()
}

/// True if serializing `rtz` after `anchor` is feasible on its own.
fn feasible_alone(base: &BaseExpansion, anchor: TransitionId, rtz: TransitionId) -> bool {
    let Ok(sg) = restrict_with_place(&base.sg, &[EventId(anchor.0)], &[EventId(rtz.0)]) else {
        return false; // the ordering place would be unsafe
    };
    sg.deadlock_states().is_empty()
        && all_events_fire(&sg)
        && speed_independence(&sg).is_speed_independent()
}

/// Enumerates lattice points, *eager first, lazy second*, then the
/// intermediate points in deterministic mixed-radix order — so a
/// truncation that keeps a prefix always keeps both extremes.
pub(crate) fn enumerate_points(anchors: &[Vec<TransitionId>]) -> Vec<LatticePoint> {
    // Choose the per-transition mask menus, degrading until the product
    // fits the cap. Menu *lengths* are computed arithmetically — the
    // full-subset tier would otherwise materialize 2^k masks just to
    // decide it does not fit. `anchors()` caps k at 63, so the shifts
    // are in range.
    let sizes: Vec<usize> = anchors.iter().map(|a| a.len()).collect();
    let product_of = |len_of: &dyn Fn(usize) -> u128| {
        sizes
            .iter()
            .map(|&k| len_of(k))
            .fold(1u128, |p, n| p.saturating_mul(n))
    };
    let full_len = |k: usize| 1u128 << k;
    let prefix_len = |k: usize| (k + 1) as u128;
    let full_menu = |k: usize| -> Vec<u64> { (0..1u64 << k).collect() };
    let prefix_menu = |k: usize| -> Vec<u64> { (0..=k as u64).map(|j| (1u64 << j) - 1).collect() };
    let extremes_menu = |k: usize| -> Vec<u64> {
        if k == 0 {
            vec![0]
        } else {
            vec![0, (1u64 << k) - 1]
        }
    };
    let menus: Vec<Vec<u64>> = if product_of(&full_len) <= RAW_CAP as u128 {
        sizes.iter().map(|&k| full_menu(k)).collect()
    } else if product_of(&prefix_len) <= RAW_CAP as u128 {
        sizes.iter().map(|&k| prefix_menu(k)).collect()
    } else {
        sizes.iter().map(|&k| extremes_menu(k)).collect()
    };

    // Mixed-radix counter over the menus; index 0 is all-zero (eager),
    // the lazy extreme is every menu's last entry. The extremes tier can
    // still exceed the cap (2^#rtz points), so middles are truncated —
    // the extremes always survive because they are emitted first.
    let total = menus
        .iter()
        .fold(1u128, |p, m| p.saturating_mul(m.len() as u128));
    let point_at = |mut idx: usize| -> LatticePoint {
        let mut masks = Vec::with_capacity(menus.len());
        for menu in &menus {
            masks.push(menu[idx % menu.len()]);
            idx /= menu.len();
        }
        LatticePoint { masks }
    };
    let mut out = Vec::new();
    out.push(point_at(0));
    if total > 1 {
        out.push(LatticePoint {
            masks: menus.iter().map(|m| *m.last().unwrap()).collect(),
        });
        let middles = (total - 1).min(RAW_CAP as u128) as usize;
        out.extend((1..middles).map(point_at));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::four_phase_base;
    use reshuffle_petri::parse_g;

    /// Channel r/a plus an independent output pulse x+ x-: the RTZ
    /// edges are concurrent with x+ and x-.
    fn base_with_pulse() -> BaseExpansion {
        let spec = parse_g(
            ".model m\n.inputs a\n.outputs r x\n.handshake r a\n.graph\n\
             r~ a~\na~ x+\nx+ x-\nx- r~\n.marking { <x-,r~> }\n.end\n",
        )
        .unwrap();
        four_phase_base(&spec).unwrap()
    }

    #[test]
    fn anchors_are_the_concurrent_spec_events() {
        let base = base_with_pulse();
        let anc = anchors(&base);
        assert_eq!(anc.len(), 2); // r-, a-
        let names = |ts: &[reshuffle_petri::TransitionId]| -> Vec<String> {
            ts.iter()
                .map(|&t| base.stg.transition_name(t).to_string())
                .collect()
        };
        assert_eq!(names(&anc[0]), vec!["x+", "x-"]);
        assert_eq!(names(&anc[1]), vec!["x+", "x-"]);
    }

    #[test]
    fn points_start_eager_and_then_lazy() {
        let base = base_with_pulse();
        let anc = anchors(&base);
        let points = enumerate_points(&anc);
        assert_eq!(points.len(), 16); // 2 RTZ x 4 subsets
        assert!(points[0].masks.iter().all(|&m| m == 0), "eager first");
        assert_eq!(points[1].masks, vec![0b11, 0b11], "lazy second");
        assert!(points[0].constraints(&base.rtz, &anc).is_empty());
        assert_eq!(points[1].constraints(&base.rtz, &anc).len(), 4);
    }

    #[test]
    fn oversized_lattices_degrade_gracefully() {
        // 13 anchors for one transition would be 8192 subsets; the
        // prefix menu caps it at 14 points.
        let anc: Vec<Vec<TransitionId>> =
            vec![(0..13u32).map(reshuffle_petri::TransitionId).collect()];
        let points = enumerate_points(&anc);
        assert_eq!(points.len(), 14);
        assert_eq!(points[0].masks, vec![0]);
        assert_eq!(points[1].masks, vec![(1 << 13) - 1]);
    }
}
