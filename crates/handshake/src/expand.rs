//! Two-phase → four-phase expansion: the *base* (maximally concurrent)
//! expansion of a partial specification.
//!
//! Every declared channel's toggles are rewritten to the four-phase
//! protocol by [`reshuffle_petri::structural::expand_channel_four_phase`];
//! the return-to-zero transitions are constrained only by the protocol
//! arcs, so the base expansion is the top of the reshuffling lattice —
//! everything else is a serialization of it.

use reshuffle_petri::structural::expand_channel_four_phase;
use reshuffle_petri::{Polarity, Stg, TransitionId};
use reshuffle_sg::{build_state_graph, StateGraph};

use crate::{HandshakeError, Result};

/// The base expansion of a partial specification.
#[derive(Debug)]
pub(crate) struct BaseExpansion {
    /// The expanded STG (no channels, no toggles left).
    pub stg: Stg,
    /// Its state graph.
    pub sg: StateGraph,
    /// The return-to-zero transitions of every channel, in channel
    /// order (`req-`, `ack-` per channel).
    pub rtz: Vec<TransitionId>,
}

/// Expands every declared channel of `spec` to four phases with
/// maximally concurrent return-to-zero edges.
///
/// # Errors
///
/// * [`HandshakeError::MalformedChannel`] if a channel's signals do not
///   carry exactly one toggle transition each;
/// * [`HandshakeError::UnboundToggle`] if a toggle remains that belongs
///   to no declared channel;
/// * [`HandshakeError::Sg`] if the expanded net has no state graph
///   (e.g. a mid-handshake initial marking makes it unsafe).
pub(crate) fn four_phase_base(spec: &Stg) -> Result<BaseExpansion> {
    let mut stg = spec.clone();
    let mut rtz = Vec::new();
    while !stg.handshakes().is_empty() {
        let channel = stg.handshakes()[0];
        let exp = expand_channel_four_phase(&mut stg, 0).map_err(|e| {
            HandshakeError::MalformedChannel {
                channel: format!(
                    "{}/{}",
                    spec.signal(channel.req).name,
                    spec.signal(channel.ack).name
                ),
                message: e.to_string(),
            }
        })?;
        rtz.push(exp.req_fall);
        rtz.push(exp.ack_fall);
    }
    if let Some(t) = stg
        .transitions()
        .find(|&t| stg.edge_of(t).map(|e| e.polarity) == Some(Polarity::Toggle))
    {
        let signal = stg.edge_of(t).unwrap().signal;
        return Err(HandshakeError::UnboundToggle {
            signal: stg.signal(signal).name.clone(),
        });
    }
    stg.validate()
        .map_err(|e| HandshakeError::MalformedChannel {
            channel: "-".into(),
            message: e.to_string(),
        })?;
    let sg = build_state_graph(&stg)?;
    Ok(BaseExpansion { stg, sg, rtz })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::parse_g;

    #[test]
    fn base_expansion_of_a_single_channel() {
        let spec = parse_g(
            ".model hs\n.inputs a\n.outputs r\n.handshake r a\n.graph\n\
             r~ a~\na~ r~\n.marking { <a~,r~> }\n.end\n",
        )
        .unwrap();
        let base = four_phase_base(&spec).unwrap();
        assert!(!base.stg.is_partial());
        assert_eq!(base.rtz.len(), 2);
        // Pure protocol cycle: r+ a+ r- a-, sequential -> 4 states.
        assert_eq!(base.sg.num_states(), 4);
    }

    #[test]
    fn unbound_toggles_are_reported() {
        let spec = parse_g(
            ".model t2\n.inputs a\n.outputs b\n.graph\na~ b~\nb~ a~\n\
             .marking { <b~,a~> }\n.end\n",
        )
        .unwrap();
        let e = four_phase_base(&spec).unwrap_err();
        assert!(
            matches!(e, HandshakeError::UnboundToggle { ref signal } if signal == "a"),
            "{e:?}"
        );
    }

    #[test]
    fn malformed_channels_are_reported() {
        // The channel's ack also has rise/fall events.
        let spec = parse_g(
            ".model m\n.inputs a\n.outputs r\n.handshake r a\n.graph\n\
             r~ a+\na+ a-\na- r~\n.marking { <a-,r~> }\n.end\n",
        )
        .unwrap();
        let e = four_phase_base(&spec).unwrap_err();
        assert!(
            matches!(e, HandshakeError::MalformedChannel { .. }),
            "{e:?}"
        );
    }
}
