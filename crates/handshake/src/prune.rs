//! Pruning of enumerated reshufflings.
//!
//! A lattice point survives only if its serialized state graph is still
//! 1-safe (the incremental product construction rejects unsafe
//! rewrites), deadlock-free, live (every event still fires) and
//! speed-independent, and only if no earlier candidate was the same
//! graph (implied orderings collapse points) or a mirror image of it
//! under a signal automorphism of the base expansion (symmetric
//! channels are dominated: a reshuffling and its mirror synthesize to
//! relabelled copies of the same circuit).
//!
//! Realization shares work across lattice points through a
//! [`PrefixCache`]: points are constraint *sequences* in a fixed
//! canonical order (RTZ transitions in `BaseExpansion::rtz` order, each
//! one's anchors in its anchor-list order), so any two points agreeing
//! on their first `k` constraints pass through the same intermediate
//! state graph. The cache memoizes every intermediate restriction
//! product — including failed ones, which prune all extensions of the
//! failing prefix without re-running the product.

use std::collections::HashMap;

use reshuffle_petri::structural::{insert_causal_place, map_transition};
use reshuffle_petri::{SignalId, Stg, TransitionId};
use reshuffle_sg::props::{all_events_fire, speed_independence};
use reshuffle_sg::restrict::restrict_with_place;
use reshuffle_sg::{EventId, StateGraph};

use crate::expand::BaseExpansion;
use crate::Reshuffling;

/// Cap on memoized prefixes: beyond it the cache stops inserting (but
/// keeps serving hits), bounding memory on degenerate lattices.
const MAX_PREFIX_ENTRIES: usize = 4096;

/// Shared-prefix memo over lattice constraint sequences: maps a
/// canonical constraint prefix to the state graph after restricting the
/// base by exactly those constraints, or `None` when the restriction
/// failed (the ordering place went unsafe), which prunes every
/// extension of that prefix for free.
#[derive(Debug, Default)]
pub(crate) struct PrefixCache {
    memo: HashMap<Vec<(TransitionId, TransitionId)>, Option<StateGraph>>,
    /// Restriction products served from the memo instead of recomputed.
    pub hits: u64,
    /// Restriction products actually executed.
    pub products: u64,
    /// Products the per-point chained realization would have executed
    /// (invariant: `chained_products == products + hits`).
    pub chained_products: u64,
}

impl PrefixCache {
    fn insert(&mut self, key: &[(TransitionId, TransitionId)], sg: Option<StateGraph>) {
        if self.memo.len() < MAX_PREFIX_ENTRIES {
            self.memo.insert(key.to_vec(), sg);
        }
    }
}

/// Applies one lattice point's constraints to the base expansion and
/// runs the semantic gates, reusing the longest memoized constraint
/// prefix from `cache`. `None` means the point is pruned.
pub(crate) fn realize(
    base: &BaseExpansion,
    constraints: &[(TransitionId, TransitionId)],
    cache: &mut PrefixCache,
) -> Option<Reshuffling> {
    // Longest memoized prefix: the chained path would have re-executed
    // those products (or, for a memoized failure, executed the failing
    // prefix before bailing) — count them as hits either way.
    let mut start = constraints.len();
    let mut sg = loop {
        if start == 0 {
            break base.sg.clone();
        }
        match cache.memo.get(&constraints[..start]) {
            Some(Some(g)) => {
                cache.hits += start as u64;
                cache.chained_products += start as u64;
                break g.clone();
            }
            Some(None) => {
                cache.hits += start as u64;
                cache.chained_products += start as u64;
                return None;
            }
            None => start -= 1,
        }
    };
    for i in start..constraints.len() {
        let (before, rtz) = constraints[i];
        cache.products += 1;
        cache.chained_products += 1;
        match restrict_with_place(&sg, &[EventId(before.0)], &[EventId(rtz.0)]) {
            Ok(next) => {
                cache.insert(&constraints[..=i], Some(next.clone()));
                sg = next;
            }
            Err(_) => {
                cache.insert(&constraints[..=i], None);
                return None;
            }
        }
    }
    if !sg.deadlock_states().is_empty() || !all_events_fire(&sg) {
        return None;
    }
    if !speed_independence(&sg).is_speed_independent() {
        return None;
    }
    let mut stg = base.stg.clone();
    let mut choices = Vec::with_capacity(constraints.len());
    for &(before, rtz) in constraints {
        insert_causal_place(&mut stg, before, rtz).ok()?;
        choices.push(format!(
            "{} -> {}",
            base.stg.transition_name(before),
            base.stg.transition_name(rtz)
        ));
    }
    Some(Reshuffling { stg, sg, choices })
}

/// A canonical key for a constraint set modulo the base expansion's
/// signal automorphisms: the lexicographically least rendering over the
/// identity and every automorphism. Two mirror-image reshufflings share
/// a key; the first one enumerated wins.
pub(crate) fn canonical_choice_key(
    stg: &Stg,
    constraints: &[(TransitionId, TransitionId)],
    autos: &[Vec<SignalId>],
) -> String {
    let render = |map: Option<&Vec<SignalId>>| -> Option<String> {
        let mut labels = Vec::with_capacity(constraints.len());
        for &(before, rtz) in constraints {
            let (b, r) = match map {
                None => (before, rtz),
                Some(p) => (
                    map_transition(stg, before, p)?,
                    map_transition(stg, rtz, p)?,
                ),
            };
            labels.push(format!(
                "{} -> {}",
                stg.transition_name(b),
                stg.transition_name(r)
            ));
        }
        labels.sort_unstable();
        Some(labels.join("; "))
    };
    let mut best = render(None).expect("identity rendering cannot fail");
    for p in autos {
        if let Some(alt) = render(Some(p)) {
            if alt < best {
                best = alt;
            }
        }
    }
    best
}
