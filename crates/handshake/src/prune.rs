//! Pruning of enumerated reshufflings.
//!
//! A lattice point survives only if its serialized state graph is still
//! 1-safe (the incremental product construction rejects unsafe
//! rewrites), deadlock-free, live (every event still fires) and
//! speed-independent, and only if no earlier candidate was the same
//! graph (implied orderings collapse points) or a mirror image of it
//! under a signal automorphism of the base expansion (symmetric
//! channels are dominated: a reshuffling and its mirror synthesize to
//! relabelled copies of the same circuit).

use reshuffle_petri::structural::{insert_causal_place, map_transition};
use reshuffle_petri::{SignalId, Stg, TransitionId};
use reshuffle_sg::props::{all_events_fire, speed_independence};
use reshuffle_sg::restrict::restrict_with_place;
use reshuffle_sg::EventId;

use crate::expand::BaseExpansion;
use crate::Reshuffling;

/// Applies one lattice point's constraints to the base expansion and
/// runs the semantic gates. `None` means the point is pruned.
pub(crate) fn realize(
    base: &BaseExpansion,
    constraints: &[(TransitionId, TransitionId)],
) -> Option<Reshuffling> {
    let mut sg = base.sg.clone();
    for &(before, rtz) in constraints {
        sg = restrict_with_place(&sg, &[EventId(before.0)], &[EventId(rtz.0)]).ok()?;
    }
    if !sg.deadlock_states().is_empty() || !all_events_fire(&sg) {
        return None;
    }
    if !speed_independence(&sg).is_speed_independent() {
        return None;
    }
    let mut stg = base.stg.clone();
    let mut choices = Vec::with_capacity(constraints.len());
    for &(before, rtz) in constraints {
        insert_causal_place(&mut stg, before, rtz).ok()?;
        choices.push(format!(
            "{} -> {}",
            base.stg.transition_name(before),
            base.stg.transition_name(rtz)
        ));
    }
    Some(Reshuffling { stg, sg, choices })
}

/// A canonical key for a constraint set modulo the base expansion's
/// signal automorphisms: the lexicographically least rendering over the
/// identity and every automorphism. Two mirror-image reshufflings share
/// a key; the first one enumerated wins.
pub(crate) fn canonical_choice_key(
    stg: &Stg,
    constraints: &[(TransitionId, TransitionId)],
    autos: &[Vec<SignalId>],
) -> String {
    let render = |map: Option<&Vec<SignalId>>| -> Option<String> {
        let mut labels = Vec::with_capacity(constraints.len());
        for &(before, rtz) in constraints {
            let (b, r) = match map {
                None => (before, rtz),
                Some(p) => (
                    map_transition(stg, before, p)?,
                    map_transition(stg, rtz, p)?,
                ),
            };
            labels.push(format!(
                "{} -> {}",
                stg.transition_name(b),
                stg.transition_name(r)
            ));
        }
        labels.sort_unstable();
        Some(labels.join("; "))
    };
    let mut best = render(None).expect("identity rendering cannot fail");
    for p in autos {
        if let Some(alt) = render(Some(p)) {
            if alt < best {
                best = alt;
            }
        }
    }
    best
}
