//! Handshake expansion of partially specified STGs (DAC 1999, Sec. 3).
//!
//! A *partial specification* leaves the ordering between some handshake
//! phases open: channels declared with `.handshake req ack` appear in
//! the graph as two-phase toggle events (`req~`, `ack~`), and the
//! position of the four-phase return-to-zero edges (`req-`, `ack-`) is
//! not committed. Handshake expansion:
//!
//! 1. rewrites every channel to the four-phase protocol with maximally
//!    concurrent return-to-zero edges ([`expand`](crate) internals, via
//!    [`reshuffle_petri::structural::expand_channel_four_phase`]);
//! 2. enumerates the *reshuffling lattice* — per return-to-zero
//!    transition, the subset of concurrent anchor events it is ordered
//!    after, from the *eager* extreme (empty subsets: RTZ fires as soon
//!    as the protocol allows) to the *lazy* extreme (full subsets: RTZ
//!    deferred behind everything);
//! 3. prunes points whose serialized state graph loses 1-safety,
//!    liveness or speed independence, collapses points that imply the
//!    same graph, and drops mirror images under signal automorphisms
//!    (symmetric channels are dominated).
//!
//! The surviving [`Reshuffling`]s are complete STGs; the `reshuffle`
//! facade synthesizes each one and picks the best by (state signals
//! inserted, literal estimate, timed cycle).

#![warn(missing_docs)]

mod expand;
mod lattice;
mod prune;

use std::collections::HashSet;
use std::fmt;

use reshuffle_petri::structural::signal_automorphisms;
use reshuffle_petri::Stg;
use reshuffle_sg::{SgError, StateGraph};

/// Errors from handshake expansion.
#[derive(Debug, Clone, PartialEq)]
pub enum HandshakeError {
    /// The specification is not partial (nothing to expand).
    NotPartial,
    /// A partial specification reached a synthesis stage that requires
    /// a complete STG; run handshake expansion first (the facade's
    /// `expand` stage).
    NotExpanded,
    /// A toggle event belongs to no declared `.handshake` channel.
    UnboundToggle {
        /// The signal whose toggle is unbound.
        signal: String,
    },
    /// A declared channel cannot be expanded (wrong event shape).
    MalformedChannel {
        /// The channel, as `req/ack`.
        channel: String,
        /// What was wrong with it.
        message: String,
    },
    /// Every enumerated reshuffling was pruned (no live, 1-safe,
    /// speed-independent refinement exists within the search bounds).
    NoFeasibleReshuffling,
    /// The base expansion has no state graph (unsafe or inconsistent).
    Sg(SgError),
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::NotPartial => {
                write!(f, "specification is complete; nothing to expand")
            }
            HandshakeError::NotExpanded => write!(
                f,
                "specification is partial; run handshake expansion before synthesis"
            ),
            HandshakeError::UnboundToggle { signal } => write!(
                f,
                "toggle events of `{signal}` belong to no declared .handshake channel"
            ),
            HandshakeError::MalformedChannel { channel, message } => {
                write!(f, "channel {channel}: {message}")
            }
            HandshakeError::NoFeasibleReshuffling => write!(
                f,
                "no reshuffling survives the liveness/safety/speed-independence gates"
            ),
            HandshakeError::Sg(e) => write!(f, "handshake expansion: {e}"),
        }
    }
}

impl std::error::Error for HandshakeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HandshakeError::Sg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SgError> for HandshakeError {
    fn from(e: SgError) -> Self {
        HandshakeError::Sg(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, HandshakeError>;

/// Limits on the reshuffling enumeration.
#[derive(Debug, Clone)]
pub struct ExpansionOptions {
    /// Maximum number of reshufflings to return. The eager and lazy
    /// extremes are realized first, so any budget of at least 2 keeps
    /// both ends of the lattice.
    pub max_reshufflings: usize,
}

impl Default for ExpansionOptions {
    fn default() -> Self {
        ExpansionOptions {
            max_reshufflings: 64,
        }
    }
}

/// Counters from one enumeration of the reshuffling lattice — what the
/// facade's per-stage diagnostics report for the expansion stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpansionStats {
    /// Lattice points considered (cut short by the enumeration budget).
    pub points: usize,
    /// Points pruned because serialization lost 1-safety, liveness or
    /// speed independence.
    pub infeasible: usize,
    /// Points collapsed because their implied state graph was already
    /// realized by an earlier point.
    pub deduped_graphs: usize,
    /// Points dropped as mirror images of an earlier point under a
    /// signal automorphism (symmetric channels).
    pub deduped_symmetry: usize,
    /// Restriction products served from the shared-prefix cache instead
    /// of being recomputed (lattice points agreeing on a constraint
    /// prefix share the intermediate state graph).
    pub prefix_hits: u64,
    /// Restriction products actually executed during realization.
    pub restriction_products: u64,
    /// Products a per-point chained realization would have executed —
    /// always `restriction_products + prefix_hits`.
    pub chained_products: u64,
}

impl ExpansionStats {
    /// Total points discarded by pruning and deduplication.
    pub fn pruned(&self) -> usize {
        self.infeasible + self.deduped_graphs + self.deduped_symmetry
    }
}

/// The result of [`expand_handshakes_stats`]: the surviving
/// reshufflings together with the enumeration counters.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// Surviving reshufflings, eager extreme first, lazy extreme last.
    pub reshufflings: Vec<Reshuffling>,
    /// What the enumeration considered and discarded.
    pub stats: ExpansionStats,
}

/// One complete refinement of a partial specification.
#[derive(Debug, Clone)]
pub struct Reshuffling {
    /// The expanded, fully specified STG.
    pub stg: Stg,
    /// Its state graph (derived incrementally from the base expansion).
    pub sg: StateGraph,
    /// The ordering choices made, as `anchor -> rtz` strings (empty for
    /// the eager extreme).
    pub choices: Vec<String>,
}

/// Enumerates the legal handshake reshufflings of a partial
/// specification, eager extreme first, lazy extreme last.
///
/// # Worked example
///
/// A partial request/acknowledge controller: the `Req`/`Ack` channel is
/// declared open, and the only committed behaviour is that a `Go` pulse
/// follows each acknowledged request. Expansion enumerates where the
/// return-to-zero edges `Req-`/`Ack-` may sit relative to the pulse —
/// from eager (concurrent with `Go+`/`Go-`) to lazy (after `Go-`):
///
/// ```
/// use reshuffle_handshake::{expand_handshakes, ExpansionOptions};
/// use reshuffle_petri::parse_g;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let partial = parse_g(
///     ".model pcreq\n.inputs Ack\n.outputs Req Go\n.handshake Req Ack\n\
///      .graph\nReq~ Ack~\nAck~ Go+\nGo+ Go-\nGo- Req~\n\
///      .marking { <Go-,Req~> }\n.end\n",
/// )?;
/// assert!(partial.is_partial());
///
/// let reshufflings = expand_handshakes(&partial, &ExpansionOptions::default())?;
/// assert!(reshufflings.len() >= 2);
/// // The eager extreme commits no extra ordering ...
/// assert!(reshufflings[0].choices.is_empty());
/// // ... the lazy extreme defers every return-to-zero edge.
/// let lazy = reshufflings.last().unwrap();
/// assert!(lazy.choices.iter().any(|c| c == "Go- -> Req-"));
/// // Every reshuffling is a complete STG, ready for synthesis.
/// assert!(reshufflings.iter().all(|r| !r.stg.is_partial()));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`HandshakeError::NotPartial`] for complete inputs;
/// * [`HandshakeError::UnboundToggle`] / [`HandshakeError::MalformedChannel`]
///   for ill-formed partial syntax;
/// * [`HandshakeError::Sg`] if the base expansion has no state graph;
/// * [`HandshakeError::NoFeasibleReshuffling`] if pruning rejects every
///   lattice point.
pub fn expand_handshakes(stg: &Stg, opts: &ExpansionOptions) -> Result<Vec<Reshuffling>> {
    expand_handshakes_stats(stg, opts).map(|e| e.reshufflings)
}

/// [`expand_handshakes`], also reporting the enumeration counters
/// (points considered, infeasible prunes, graph and symmetry dedups)
/// that the facade surfaces as expansion-stage diagnostics.
///
/// # Errors
///
/// See [`expand_handshakes`].
pub fn expand_handshakes_stats(stg: &Stg, opts: &ExpansionOptions) -> Result<Expansion> {
    if !stg.is_partial() {
        return Err(HandshakeError::NotPartial);
    }
    let base = expand::four_phase_base(stg)?;
    let anchors = lattice::anchors(&base);
    let points = lattice::enumerate_points(&anchors);
    let autos = signal_automorphisms(&base.stg);

    let mut stats = ExpansionStats::default();
    let mut out: Vec<Reshuffling> = Vec::new();
    let mut seen_graphs: HashSet<u64> = HashSet::new();
    let mut seen_keys: HashSet<String> = HashSet::new();
    let mut prefixes = prune::PrefixCache::default();
    for point in &points {
        if out.len() >= opts.max_reshufflings {
            break;
        }
        stats.points += 1;
        let constraints = point.constraints(&base.rtz, &anchors);
        let Some(r) = prune::realize(&base, &constraints, &mut prefixes) else {
            stats.infeasible += 1;
            continue;
        };
        if !seen_graphs.insert(r.sg.fingerprint()) {
            stats.deduped_graphs += 1;
            continue; // implied orderings: same graph as an earlier point
        }
        if !seen_keys.insert(prune::canonical_choice_key(&base.stg, &constraints, &autos)) {
            stats.deduped_symmetry += 1;
            continue; // mirror image of an earlier point
        }
        out.push(r);
    }
    stats.prefix_hits = prefixes.hits;
    stats.restriction_products = prefixes.products;
    stats.chained_products = prefixes.chained_products;
    if out.is_empty() {
        return Err(HandshakeError::NoFeasibleReshuffling);
    }
    // Present eager -> lazy: fewer ordering commitments first.
    out.sort_by(|a, b| (a.choices.len(), &a.choices).cmp(&(b.choices.len(), &b.choices)));
    Ok(Expansion {
        reshufflings: out,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::parse_g;
    use reshuffle_sg::props::speed_independence;
    use reshuffle_sg::{build_state_graph, conc::concurrent_pairs};

    const COMPLETE_G: &str = ".model t\n.inputs a\n.outputs b\n.graph\n\
         a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n";

    const PULSE_G: &str = ".model m\n.inputs a\n.outputs r x\n.handshake r a\n.graph\n\
         r~ a~\na~ x+\nx+ x-\nx- r~\n.marking { <x-,r~> }\n.end\n";

    /// Two symmetric channels forked by `go`.
    const SYMMETRIC_G: &str = ".model hspar\n.inputs go a1 a2\n.outputs r1 r2\n\
         .handshake r1 a1\n.handshake r2 a2\n.graph\n\
         go+ r1~ r2~\nr1~ a1~\nr2~ a2~\na1~ go-\na2~ go-\ngo- go+\n\
         .marking { <go-,go+> }\n.end\n";

    #[test]
    fn complete_specs_are_not_partial() {
        let stg = parse_g(COMPLETE_G).unwrap();
        let err = expand_handshakes(&stg, &ExpansionOptions::default()).unwrap_err();
        assert_eq!(err, HandshakeError::NotPartial);
        assert!(err.to_string().contains("complete"));
    }

    #[test]
    fn bare_channel_has_one_reshuffling() {
        // Nothing runs beside the channel: the lattice is a point.
        let stg = parse_g(
            ".model hs\n.inputs a\n.outputs r\n.handshake r a\n.graph\n\
             r~ a~\na~ r~\n.marking { <a~,r~> }\n.end\n",
        )
        .unwrap();
        let rs = expand_handshakes(&stg, &ExpansionOptions::default()).unwrap();
        assert_eq!(rs.len(), 1);
        assert!(rs[0].choices.is_empty());
        assert_eq!(rs[0].sg.num_states(), 4);
    }

    #[test]
    fn pulse_channel_enumerates_a_lattice() {
        let stg = parse_g(PULSE_G).unwrap();
        let rs = expand_handshakes(&stg, &ExpansionOptions::default()).unwrap();
        assert!(rs.len() >= 2, "got {}", rs.len());
        assert!(rs[0].choices.is_empty(), "eager extreme first");
        // Every survivor is live, speed-independent and rebuilds to the
        // incrementally derived graph.
        for r in &rs {
            assert!(r.sg.deadlock_states().is_empty());
            assert!(speed_independence(&r.sg).is_speed_independent());
            let rebuilt = build_state_graph(&r.stg).unwrap();
            assert_eq!(rebuilt.fingerprint(), r.sg.fingerprint());
        }
        // The lazy extreme is present: some reshuffling leaves the
        // channel's edges concurrent with nothing.
        fn touches(r: &Reshuffling, name: &str) -> bool {
            let sig = r.stg.signal_by_name(name).unwrap();
            concurrent_pairs(&r.sg)
                .iter()
                .any(|&(a, b)| a.signal == sig || b.signal == sig)
        }
        assert!(
            rs.iter().any(|r| !touches(r, "r") && !touches(r, "a")),
            "lazy extreme missing"
        );
    }

    /// The shared-prefix realization is an optimization, not a
    /// semantics change: for every lattice point, the trie path and a
    /// freshly chained `restrict_with_place` sequence must agree — same
    /// feasibility verdict, byte-identical state-graph fingerprint —
    /// while the trie executes strictly fewer restriction products.
    #[test]
    fn trie_realization_matches_chained_for_every_point() {
        use reshuffle_sg::props::all_events_fire;
        use reshuffle_sg::restrict::restrict_with_place;
        use reshuffle_sg::EventId;
        for src in [PULSE_G, SYMMETRIC_G] {
            let stg = parse_g(src).unwrap();
            let base = expand::four_phase_base(&stg).unwrap();
            let anchors = lattice::anchors(&base);
            let points = lattice::enumerate_points(&anchors);
            let mut cache = prune::PrefixCache::default();
            for point in &points {
                let constraints = point.constraints(&base.rtz, &anchors);
                // Reference: the chained path, gated exactly as realize.
                let mut sg = Some(base.sg.clone());
                for &(b, r) in &constraints {
                    sg = sg.and_then(|g| {
                        restrict_with_place(&g, &[EventId(b.0)], &[EventId(r.0)]).ok()
                    });
                }
                let chained = sg.filter(|g| {
                    g.deadlock_states().is_empty()
                        && all_events_fire(g)
                        && speed_independence(g).is_speed_independent()
                });
                let trie = prune::realize(&base, &constraints, &mut cache);
                match (&chained, &trie) {
                    (None, None) => {}
                    (Some(g), Some(r)) => assert_eq!(
                        g.fingerprint(),
                        r.sg.fingerprint(),
                        "{src}: point {constraints:?} drifted"
                    ),
                    _ => panic!(
                        "{src}: feasibility disagrees at {constraints:?}: \
                         chained={} trie={}",
                        chained.is_some(),
                        trie.is_some()
                    ),
                }
            }
            assert_eq!(
                cache.chained_products,
                cache.products + cache.hits,
                "{src}: product accounting broken"
            );
            assert!(
                cache.products < cache.chained_products,
                "{src}: trie saved nothing ({} executed, {} chained)",
                cache.products,
                cache.chained_products
            );
        }
    }

    #[test]
    fn stats_account_for_every_point() {
        let stg = parse_g(PULSE_G).unwrap();
        let e = expand_handshakes_stats(&stg, &ExpansionOptions::default()).unwrap();
        // Every considered point is either kept or counted in exactly
        // one discard bucket.
        assert_eq!(
            e.stats.points,
            e.reshufflings.len() + e.stats.pruned(),
            "{:?}",
            e.stats
        );
        assert!(e.stats.points >= 2, "degenerate lattice");
        // The symmetric two-channel spec exercises the symmetry bucket.
        let sym = parse_g(SYMMETRIC_G).unwrap();
        let e = expand_handshakes_stats(
            &sym,
            &ExpansionOptions {
                max_reshufflings: 256,
            },
        )
        .unwrap();
        assert!(e.stats.deduped_symmetry > 0, "{:?}", e.stats);
        assert_eq!(e.stats.points, e.reshufflings.len() + e.stats.pruned());
    }

    #[test]
    fn budget_keeps_both_extremes() {
        let stg = parse_g(PULSE_G).unwrap();
        let rs = expand_handshakes(
            &stg,
            &ExpansionOptions {
                max_reshufflings: 2,
            },
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        assert!(rs[0].choices.is_empty(), "eager kept");
        assert!(
            rs[1].choices.len() >= rs[0].choices.len(),
            "lazy extreme kept"
        );
    }

    #[test]
    fn symmetric_channels_are_deduplicated() {
        let stg = parse_g(SYMMETRIC_G).unwrap();
        let rs = expand_handshakes(
            &stg,
            &ExpansionOptions {
                max_reshufflings: 256,
            },
        )
        .unwrap();
        assert!(rs.len() >= 2);
        // Mirroring a candidate's choices through the 1<->2 swap must
        // not produce another candidate's choice set.
        let mirror =
            |c: &str| -> String { c.replace('1', "#").replace('2', "1").replace('#', "2") };
        let sets: Vec<Vec<String>> = rs
            .iter()
            .map(|r| {
                let mut v = r.choices.clone();
                v.sort();
                v
            })
            .collect();
        for (i, s) in sets.iter().enumerate() {
            let mut m: Vec<String> = s.iter().map(|c| mirror(c)).collect();
            m.sort();
            if m == *s {
                continue; // self-symmetric point
            }
            assert!(
                !sets.iter().enumerate().any(|(j, t)| j != i && *t == m),
                "mirror pair survived: {s:?} / {m:?}"
            );
        }
    }

    #[test]
    fn unbound_toggle_and_malformed_channel_errors_surface() {
        let stg = parse_g(
            ".model t2\n.inputs a\n.outputs b\n.graph\na~ b~\nb~ a~\n\
             .marking { <b~,a~> }\n.end\n",
        )
        .unwrap();
        assert!(matches!(
            expand_handshakes(&stg, &ExpansionOptions::default()),
            Err(HandshakeError::UnboundToggle { .. })
        ));
    }
}
