//! Handshake expansion of partially specified STGs (DAC 1999, Sec. 3).
//!
//! A *partial specification* leaves the ordering between some handshake
//! phases open (the paper's `a~` "toggle" events and unordered
//! req/ack pairs). Handshake expansion enumerates the legal
//! *reshufflings* — complete STGs that refine the partial order — so
//! that the synthesis flow can pick the one with the best logic or
//! cycle time.
//!
//! This crate is the typed skeleton for that search: the entry points
//! and result shapes are final, the algorithms return
//! [`HandshakeError::Unimplemented`] until a later PR lands them.

#![warn(missing_docs)]

use std::fmt;

use reshuffle_petri::Stg;

/// Errors from handshake expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// The requested feature is not implemented yet.
    Unimplemented {
        /// The missing feature, for error messages.
        feature: &'static str,
    },
    /// The specification is not partial (nothing to expand).
    NotPartial,
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::Unimplemented { feature } => {
                write!(f, "handshake expansion: `{feature}` is not implemented yet")
            }
            HandshakeError::NotPartial => {
                write!(f, "specification is complete; nothing to expand")
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, HandshakeError>;

/// Limits on the reshuffling enumeration.
#[derive(Debug, Clone)]
pub struct ExpansionOptions {
    /// Maximum number of reshufflings to enumerate before truncating.
    pub max_reshufflings: usize,
}

impl Default for ExpansionOptions {
    fn default() -> Self {
        ExpansionOptions {
            max_reshufflings: 64,
        }
    }
}

/// One complete refinement of a partial specification.
#[derive(Debug, Clone)]
pub struct Reshuffling {
    /// The expanded, fully specified STG.
    pub stg: Stg,
    /// Human-readable description of the ordering choices made.
    pub choices: Vec<String>,
}

/// Enumerates the legal handshake reshufflings of a partial
/// specification.
///
/// # Errors
///
/// Currently always [`HandshakeError::Unimplemented`]; later PRs will
/// return [`HandshakeError::NotPartial`] for complete inputs.
pub fn expand_handshakes(_stg: &Stg, _opts: &ExpansionOptions) -> Result<Vec<Reshuffling>> {
    Err(HandshakeError::Unimplemented {
        feature: "reshuffling enumeration",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::parse_g;

    #[test]
    fn expansion_is_honestly_unimplemented() {
        let stg = parse_g(
            ".model t\n.inputs a\n.outputs b\n.graph\n\
             a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let err = expand_handshakes(&stg, &ExpansionOptions::default()).unwrap_err();
        assert!(matches!(err, HandshakeError::Unimplemented { .. }));
        assert!(err.to_string().contains("not implemented"));
    }
}
