//! Fixed log2-bucketed latency histograms.
//!
//! Values are durations in integer microseconds. Bucket `i` (for
//! `i < FINITE_BUCKETS`) counts values `v` with `v <= 2^i` µs that did not
//! fit an earlier bucket, i.e. the upper bounds run 1µs, 2µs, 4µs, …,
//! 2^26µs (~67s). Everything larger lands in the final `+Inf` bucket.
//!
//! Recording is lock-free: a [`Histogram`] holds a small number of shards
//! of atomic counters and each recording thread picks a shard once (via a
//! thread-local round-robin assignment), so concurrent workers rarely
//! contend on the same cache lines. Reading merges all shards into a
//! [`HistSnapshot`], which supports further merging (associative and
//! commutative) and quantile extraction.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of finite buckets: upper bounds `2^0 ..= 2^(FINITE_BUCKETS-1)` µs.
pub const FINITE_BUCKETS: usize = 27;
/// Total bucket count including the trailing `+Inf` bucket.
pub const NUM_BUCKETS: usize = FINITE_BUCKETS + 1;

/// Upper bound of finite bucket `i`, in microseconds.
#[inline]
pub fn bucket_bound_micros(i: usize) -> u64 {
    debug_assert!(i < FINITE_BUCKETS);
    1u64 << i
}

/// Bucket index for a value in microseconds.
#[inline]
pub fn bucket_index(micros: u64) -> usize {
    if micros <= 1 {
        return 0;
    }
    let i = 64 - (micros - 1).leading_zeros() as usize;
    i.min(FINITE_BUCKETS)
}

struct Shard {
    counts: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A concurrent log2-bucketed histogram of microsecond durations.
pub struct Histogram {
    shards: Box<[Shard]>,
}

/// How many atomic shards each histogram carries. Small and fixed: enough
/// to spread a handful of server workers, cheap enough to merge on read.
const NUM_SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread records into one shard, assigned round-robin on first use.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Record one observation, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let shard = &self.shards[MY_SHARD.with(|s| *s)];
        shard.counts[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(micros, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Record one observation from a [`Duration`] (saturating to u64 µs).
    pub fn record(&self, d: Duration) {
        self.record_micros(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Merge all shards into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot::default();
        for shard in self.shards.iter() {
            for (i, c) in shard.counts.iter().enumerate() {
                snap.counts[i] += c.load(Ordering::Relaxed);
            }
            snap.sum_micros += shard.sum.load(Ordering::Relaxed);
            snap.count += shard.count.load(Ordering::Relaxed);
            snap.max_micros = snap.max_micros.max(shard.max.load(Ordering::Relaxed));
        }
        snap
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable merged view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts; index [`FINITE_BUCKETS`] is the `+Inf` bucket.
    pub counts: [u64; NUM_BUCKETS],
    /// Sum of all observations, in microseconds.
    pub sum_micros: u64,
    /// Number of observations.
    pub count: u64,
    /// Largest single observation, in microseconds.
    pub max_micros: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            counts: [0; NUM_BUCKETS],
            sum_micros: 0,
            count: 0,
            max_micros: 0,
        }
    }
}

impl HistSnapshot {
    /// Fold another snapshot into this one. Merging is associative and
    /// commutative, so snapshots from any partition of recorders agree.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.sum_micros += other.sum_micros;
        self.count += other.count;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) in microseconds by linear
    /// interpolation inside the owning bucket. The `+Inf` bucket reports the
    /// recorded maximum (the histogram has no upper bound to interpolate
    /// toward). Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if i >= FINITE_BUCKETS {
                    return self.max_micros;
                }
                let lo = if i == 0 {
                    0
                } else {
                    bucket_bound_micros(i - 1)
                } as f64;
                let hi = (bucket_bound_micros(i) as f64)
                    .min(self.max_micros as f64)
                    .max(lo);
                let into = (rank - seen) as f64 / c as f64;
                return (lo + (hi - lo) * into).round() as u64;
            }
            seen += c;
        }
        self.max_micros
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        // v <= 2^i goes to the first such bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        for i in 0..FINITE_BUCKETS {
            let bound = bucket_bound_micros(i);
            assert_eq!(
                bucket_index(bound),
                i,
                "bound {bound} must be inside bucket {i}"
            );
            assert_eq!(
                bucket_index(bound + 1),
                (i + 1).min(FINITE_BUCKETS),
                "bound+1 must spill to the next bucket"
            );
        }
    }

    #[test]
    fn top_bucket_saturates() {
        let h = Histogram::new();
        h.record_micros(u64::MAX);
        h.record_micros(bucket_bound_micros(FINITE_BUCKETS - 1) + 1);
        let s = h.snapshot();
        assert_eq!(s.counts[FINITE_BUCKETS], 2);
        assert_eq!(s.count, 2);
        assert_eq!(s.max_micros, u64::MAX);
        // Quantiles from the +Inf bucket report the recorded max rather
        // than inventing an upper bound.
        assert_eq!(s.quantile(0.99), u64::MAX);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record_micros(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 9]);
        let b = mk(&[100, 2000]);
        let c = mk(&[70_000_000, 3]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        let mut c_ba = c.clone();
        c_ba.merge(&b);
        c_ba.merge(&a);

        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, c_ba);
        assert_eq!(ab_c.count, 7);
        assert_eq!(ab_c.sum_micros, 1 + 5 + 9 + 100 + 2000 + 70_000_000 + 3);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::new();
        // 100 observations: 1..=100 µs.
        for v in 1..=100 {
            h.record_micros(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.quantile(0.50);
        let p90 = s.quantile(0.90);
        let p99 = s.quantile(0.99);
        // Log buckets interpolate, so allow bucket-level tolerance:
        // p50's true value is 50, inside bucket (32, 64].
        assert!((33..=64).contains(&p50), "p50={p50}");
        assert!((65..=100).contains(&p90), "p90={p90}");
        assert!((65..=100).contains(&p99), "p99={p99}");
        assert!(p50 <= p90 && p90 <= p99, "monotone quantiles");
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.max_micros, 100);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_micros(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.max_micros, 7999);
    }
}
