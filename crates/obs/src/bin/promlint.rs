//! Validate a Prometheus text exposition document read from stdin.
//!
//! Usage: `promlint [--require FAMILY]...`
//!
//! Exits 0 and prints a one-line summary when the document parses and all
//! required metric families are present; exits 1 with the reason otherwise.

use std::io::Read as _;

fn main() {
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => match args.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("promlint: --require needs a metric family name");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: promlint [--require FAMILY]... < exposition.txt");
                return;
            }
            other => {
                eprintln!("promlint: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        eprintln!("promlint: reading stdin: {e}");
        std::process::exit(1);
    }

    match reshuffle_obs::validate(&text) {
        Ok(summary) => {
            for name in &required {
                if !summary.has_family(name) {
                    eprintln!("promlint: required metric family missing: {name}");
                    std::process::exit(1);
                }
            }
            println!(
                "promlint: ok ({} families, {} samples)",
                summary.families.len(),
                summary.samples
            );
        }
        Err(e) => {
            eprintln!("promlint: invalid exposition: {e}");
            std::process::exit(1);
        }
    }
}
