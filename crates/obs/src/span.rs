//! Hierarchical spans with monotonic timestamps and pluggable sinks.
//!
//! A [`Tracer`] owns the clock epoch, the span-id allocator, the output
//! [`Sink`], and the enable/verbosity gates. A [`SpanCtx`] is the cheap,
//! cloneable handle threaded through the pipeline: it carries the tracer,
//! the request's [`TraceId`], and the parent span id. Opening a span on a
//! disabled context is a single branch (an `Option` check plus one
//! `AtomicBool` load), so instrumented code costs nothing when tracing is
//! off.
//!
//! Each finished span is emitted as one JSON object per line:
//!
//! ```json
//! {"trace":"<32 hex>","span":3,"parent":1,"name":"stage.expand",
//!  "t_us":120,"dur_us":4731,"states":1024}
//! ```
//!
//! `t_us` is the span start relative to the tracer epoch, `dur_us` the
//! span duration, both in microseconds; any extra fields are supplied at
//! `end()`.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A 128-bit request trace identifier, rendered as 32 lowercase hex chars.
///
/// The high half identifies *what* is being synthesized (the fingerprint ×
/// option-trail cache key); the low half is a per-request nonce, so two
/// requests for the same spec remain distinguishable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId {
    /// High 64 bits: the run cache key (fingerprint × option trail).
    pub hi: u64,
    /// Low 64 bits: a mixed per-request nonce.
    pub lo: u64,
}

/// splitmix64 finalizer: spreads sequential nonces over the full word.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TraceId {
    /// Derive a trace id from a cache key and a nonce (connection/request
    /// sequence number). The nonce is mixed so ids don't look sequential.
    pub fn derive(key: u64, nonce: u64) -> TraceId {
        TraceId {
            hi: key,
            lo: mix64(nonce) | 1, // never all-zero, even for key 0
        }
    }

    /// Parse 32 hex characters (as produced by [`fmt::Display`]).
    pub fn parse(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(TraceId { hi, lo })
    }

    /// True for the all-zero (absent) id.
    pub fn is_zero(&self) -> bool {
        self.hi == 0 && self.lo == 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Where emitted span lines go. Implementations must tolerate concurrent
/// `emit` calls.
pub trait Sink: Send + Sync {
    /// Write one complete JSON line (no trailing newline in `line`).
    fn emit(&self, line: &str);
}

/// Sink that writes each line to stderr.
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, line: &str) {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
    }
}

/// Sink that appends each line to a file.
pub struct FileSink {
    file: Mutex<File>,
}

impl FileSink {
    /// Create (or truncate) `path` for span output.
    pub fn create(path: &Path) -> std::io::Result<FileSink> {
        Ok(FileSink {
            file: Mutex::new(File::create(path)?),
        })
    }
}

impl Sink for FileSink {
    fn emit(&self, line: &str) {
        if let Ok(mut f) = self.file.lock() {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// Bounded in-memory sink for tests: keeps the most recent `cap` lines.
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<String>>,
}

impl RingSink {
    /// A ring buffer holding at most `cap` lines.
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot of the retained lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.buf
            .lock()
            .map(|b| b.iter().cloned().collect())
            .unwrap_or_default()
    }
}

impl Sink for RingSink {
    fn emit(&self, line: &str) {
        if let Ok(mut buf) = self.buf.lock() {
            if buf.len() == self.cap {
                buf.pop_front();
            }
            buf.push_back(line.to_string());
        }
    }
}

/// Shared, cloneable handle to a [`Sink`].
#[derive(Clone)]
pub struct SinkHandle(Arc<dyn Sink>);

impl SinkHandle {
    /// Wrap an arbitrary sink.
    pub fn new(sink: Arc<dyn Sink>) -> SinkHandle {
        SinkHandle(sink)
    }

    /// Stderr sink.
    pub fn stderr() -> SinkHandle {
        SinkHandle(Arc::new(StderrSink))
    }

    /// File sink (created/truncated at `path`).
    pub fn file(path: &Path) -> std::io::Result<SinkHandle> {
        Ok(SinkHandle(Arc::new(FileSink::create(path)?)))
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

struct TracerInner {
    enabled: AtomicBool,
    level: AtomicU8,
    epoch: Instant,
    sink: SinkHandle,
    next_span: AtomicU64,
}

/// Owns the trace clock, span-id allocation, verbosity gate, and sink.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer(level={})", self.level())
    }
}

impl Tracer {
    /// A tracer emitting to `sink` at `level` (0 disables emission).
    ///
    /// Verbosity levels: `1` traces requests and pipeline stages, `2`
    /// additionally traces per-shard BFS work.
    pub fn new(level: u8, sink: SinkHandle) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(level > 0),
                level: AtomicU8::new(level),
                epoch: Instant::now(),
                sink,
                next_span: AtomicU64::new(1),
            }),
        }
    }

    /// Change the verbosity at runtime (0 disables).
    pub fn set_level(&self, level: u8) {
        self.inner.level.store(level, Ordering::Relaxed);
        self.inner.enabled.store(level > 0, Ordering::Relaxed);
    }

    /// Current verbosity level.
    pub fn level(&self) -> u8 {
        self.inner.level.load(Ordering::Relaxed)
    }

    /// Open a root context for one request.
    pub fn root(&self, trace: TraceId) -> SpanCtx {
        SpanCtx {
            tracer: Some(self.clone()),
            trace,
            parent: 0,
        }
    }
}

/// Cheap cloneable span context: tracer + trace id + parent span id.
///
/// `SpanCtx::default()` is permanently disabled, so library code can take a
/// `SpanCtx` unconditionally and uninstrumented callers pay one branch.
#[derive(Debug, Clone, Default)]
pub struct SpanCtx {
    tracer: Option<Tracer>,
    trace: TraceId,
    parent: u64,
}

impl SpanCtx {
    /// Is tracing live at `level` on this context? One `Option` check and
    /// one relaxed atomic load — the entire cost of the disabled path.
    #[inline]
    pub fn enabled_at(&self, level: u8) -> bool {
        match &self.tracer {
            None => false,
            Some(t) => {
                t.inner.enabled.load(Ordering::Relaxed)
                    && t.inner.level.load(Ordering::Relaxed) >= level
            }
        }
    }

    /// The trace id carried by this context (zero when disabled).
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// Open a level-1 child span.
    pub fn span(&self, name: &'static str) -> ActiveSpan {
        self.span_at(1, name)
    }

    /// Open a child span gated at `level`; inert if the tracer is off or
    /// less verbose than `level`.
    pub fn span_at(&self, level: u8, name: &'static str) -> ActiveSpan {
        if !self.enabled_at(level) {
            return ActiveSpan { live: None };
        }
        let tracer = self.tracer.clone().expect("enabled implies tracer");
        let id = tracer.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let t_us = u64::try_from(tracer.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        ActiveSpan {
            live: Some(Live {
                tracer,
                trace: self.trace,
                id,
                parent: self.parent,
                name,
                t_us,
                start: Instant::now(),
            }),
        }
    }
}

struct Live {
    tracer: Tracer,
    trace: TraceId,
    id: u64,
    parent: u64,
    name: &'static str,
    t_us: u64,
    start: Instant,
}

/// A field value attachable to a span at `end`.
#[derive(Debug, Clone, Copy)]
pub enum FieldVal<'a> {
    /// Unsigned integer field.
    U64(u64),
    /// String field (JSON-escaped on emission).
    Str(&'a str),
}

impl From<u64> for FieldVal<'_> {
    fn from(v: u64) -> Self {
        FieldVal::U64(v)
    }
}

impl From<usize> for FieldVal<'_> {
    fn from(v: usize) -> Self {
        FieldVal::U64(v as u64)
    }
}

impl<'a> From<&'a str> for FieldVal<'a> {
    fn from(v: &'a str) -> Self {
        FieldVal::Str(v)
    }
}

/// An open span. Finish it with [`ActiveSpan::end`] to attach fields;
/// dropping it unfinished emits the span with no extra fields.
pub struct ActiveSpan {
    live: Option<Live>,
}

impl ActiveSpan {
    /// Is this span actually recording?
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// A child context whose spans will point at this span as parent.
    /// Inert spans hand out a disabled context.
    pub fn ctx(&self) -> SpanCtx {
        match &self.live {
            None => SpanCtx::default(),
            Some(l) => SpanCtx {
                tracer: Some(l.tracer.clone()),
                trace: l.trace,
                parent: l.id,
            },
        }
    }

    /// Close the span, emitting one JSON line with the given extra fields.
    pub fn end(mut self, fields: &[(&str, FieldVal<'_>)]) {
        if let Some(live) = self.live.take() {
            emit_span(&live, fields);
        }
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            emit_span(&live, &[]);
        }
    }
}

fn emit_span(live: &Live, fields: &[(&str, FieldVal<'_>)]) {
    let dur_us = u64::try_from(live.start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let mut line = String::with_capacity(128);
    line.push_str("{\"trace\":\"");
    use fmt::Write as _;
    let _ = write!(line, "{}", live.trace);
    let _ = write!(
        line,
        "\",\"span\":{},\"parent\":{},\"name\":",
        live.id, live.parent
    );
    push_json_str(&mut line, live.name);
    let _ = write!(line, ",\"t_us\":{},\"dur_us\":{}", live.t_us, dur_us);
    for (k, v) in fields {
        line.push(',');
        push_json_str(&mut line, k);
        line.push(':');
        match v {
            FieldVal::U64(n) => {
                let _ = write!(line, "{n}");
            }
            FieldVal::Str(s) => push_json_str(&mut line, s),
        }
    }
    line.push('}');
    live.tracer.inner.sink.0.emit(&line);
}

/// Append `s` as a JSON string literal (with escaping) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_tracer(level: u8) -> (Tracer, Arc<RingSink>) {
        let ring = Arc::new(RingSink::new(64));
        let tracer = Tracer::new(level, SinkHandle::new(ring.clone() as Arc<dyn Sink>));
        (tracer, ring)
    }

    #[test]
    fn trace_id_round_trips_through_hex() {
        let id = TraceId::derive(0xdead_beef_1234_5678, 42);
        let s = id.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(TraceId::parse(&s), Some(id));
        assert!(TraceId::parse("not-a-trace").is_none());
        assert!(TraceId::parse(&s[..31]).is_none());
        assert!(!id.is_zero());
    }

    #[test]
    fn nonces_spread_and_never_zero() {
        let a = TraceId::derive(0, 0);
        let b = TraceId::derive(0, 1);
        assert_ne!(a.lo, b.lo);
        assert!(a.lo != 0 && b.lo != 0);
    }

    #[test]
    fn disabled_context_emits_nothing_and_is_cheap() {
        let ctx = SpanCtx::default();
        assert!(!ctx.enabled_at(1));
        let span = ctx.span("noop");
        assert!(!span.is_live());
        let child = span.ctx();
        assert!(!child.enabled_at(1));
        span.end(&[("k", FieldVal::U64(1))]);
    }

    #[test]
    fn spans_nest_and_share_the_trace_id() {
        let (tracer, ring) = ring_tracer(2);
        let trace = TraceId::derive(7, 9);
        let root = tracer.root(trace);
        let req = root.span("request");
        let stage = req.ctx().span("stage.expand");
        stage.end(&[("states", FieldVal::U64(10))]);
        req.end(&[
            ("status", FieldVal::U64(200)),
            ("path", FieldVal::Str("/x")),
        ]);

        let lines = ring.lines();
        assert_eq!(lines.len(), 2);
        let hex = trace.to_string();
        for line in &lines {
            assert!(line.contains(&format!("\"trace\":\"{hex}\"")), "{line}");
        }
        // Child closed first; its parent is the request span's id.
        assert!(
            lines[0].contains("\"name\":\"stage.expand\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"states\":10"), "{}", lines[0]);
        assert!(lines[1].contains("\"name\":\"request\""), "{}", lines[1]);
        assert!(lines[1].contains("\"parent\":0"), "{}", lines[1]);
        assert!(lines[1].contains("\"path\":\"/x\""), "{}", lines[1]);
    }

    #[test]
    fn level_gates_verbose_spans() {
        let (tracer, ring) = ring_tracer(1);
        let root = tracer.root(TraceId::derive(1, 1));
        let shard = root.span_at(2, "bfs.shard");
        assert!(!shard.is_live());
        drop(shard);
        assert!(ring.lines().is_empty());
        tracer.set_level(2);
        root.span_at(2, "bfs.shard").end(&[]);
        assert_eq!(ring.lines().len(), 1);
        tracer.set_level(0);
        assert!(!root.enabled_at(1));
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_lines() {
        let ring = RingSink::new(2);
        ring.emit("a");
        ring.emit("b");
        ring.emit("c");
        assert_eq!(ring.lines(), vec!["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn dropped_span_still_emits() {
        let (tracer, ring) = ring_tracer(1);
        let root = tracer.root(TraceId::derive(3, 3));
        drop(root.span("forgotten"));
        assert_eq!(ring.lines().len(), 1);
        assert!(ring.lines()[0].contains("\"name\":\"forgotten\""));
    }
}
