//! Observability primitives for the reshuffle synthesis service.
//!
//! Three pieces, all dependency-free:
//!
//! * [`span`] — hierarchical spans with monotonic timestamps and a
//!   per-request [`TraceId`], emitted as JSON lines to a pluggable
//!   [`Sink`]. Disabled tracing costs one branch on an `AtomicBool`.
//! * [`hist`] — fixed log2-bucketed latency [`Histogram`]s with
//!   per-thread shards merged on read and quantile extraction.
//! * [`prom`] — Prometheus text exposition (0.0.4) rendering plus a
//!   strict validating parser (also exposed as the `promlint` binary).

#![warn(missing_docs)]

pub mod hist;
pub mod prom;
pub mod span;

pub use hist::{HistSnapshot, Histogram};
pub use prom::{parse, validate, PromDoc, PromFamily, PromSample, PromSummary, PromWriter};
pub use span::{
    ActiveSpan, FieldVal, FileSink, RingSink, Sink, SinkHandle, SpanCtx, StderrSink, TraceId,
    Tracer,
};
