//! Prometheus text exposition format (version 0.0.4): a writer for
//! counters, gauges and histograms, and a strict validating parser used by
//! tests, the `promlint` CI binary, and the router tier's `/metrics`
//! rollup (which [`parse`]s each backend's scrape into a [`PromDoc`],
//! rebuilds [`HistSnapshot`]s with
//! [`PromFamily::histogram_snapshots`], and merges them).
//!
//! Histograms are rendered from [`HistSnapshot`]s with `le` bounds in
//! **seconds** (converted from the histogram's microsecond buckets), with
//! cumulative `_bucket` counts, a `_sum` in seconds, and a `_count`, as the
//! format requires.

use crate::hist::{bucket_bound_micros, HistSnapshot, FINITE_BUCKETS, NUM_BUCKETS};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// Builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

/// A `name="value"` label pair.
pub type Label<'a> = (&'a str, &'a str);

impl PromWriter {
    /// Start an empty document.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    fn header(&mut self, name: &str, help: &str, ty: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {ty}");
    }

    fn labels(&mut self, labels: &[Label<'_>]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{k}=\"");
            for c in v.chars() {
                match c {
                    '\\' => self.out.push_str("\\\\"),
                    '"' => self.out.push_str("\\\""),
                    '\n' => self.out.push_str("\\n"),
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }
        self.out.push('}');
    }

    /// One unlabeled counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A counter family: one sample per label set.
    pub fn counter_family(&mut self, name: &str, help: &str, series: &[(&[Label<'_>], u64)]) {
        self.header(name, help, "counter");
        for (labels, value) in series {
            self.out.push_str(name);
            self.labels(labels);
            let _ = writeln!(self.out, " {value}");
        }
    }

    /// One unlabeled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A gauge family: one sample per label set (e.g. per-backend
    /// `reshuffle_backend_up{backend="…"}` health gauges).
    pub fn gauge_family(&mut self, name: &str, help: &str, series: &[(&[Label<'_>], f64)]) {
        self.header(name, help, "gauge");
        for (labels, value) in series {
            self.out.push_str(name);
            self.labels(labels);
            let _ = writeln!(self.out, " {value}");
        }
    }

    /// A histogram family rendered from snapshots, one series per label set.
    /// Bucket bounds and `_sum` are converted from microseconds to seconds.
    pub fn histogram_family(
        &mut self,
        name: &str,
        help: &str,
        series: &[(&[Label<'_>], &HistSnapshot)],
    ) {
        self.header(name, help, "histogram");
        for (labels, snap) in series {
            let mut cumulative = 0u64;
            for i in 0..FINITE_BUCKETS {
                cumulative += snap.counts[i];
                let le = bucket_bound_micros(i) as f64 / 1e6;
                let _ = write!(self.out, "{name}_bucket");
                let mut with_le: Vec<Label<'_>> = labels.to_vec();
                let le_s = format!("{le}");
                with_le.push(("le", &le_s));
                self.labels(&with_le);
                let _ = writeln!(self.out, " {cumulative}");
            }
            let _ = write!(self.out, "{name}_bucket");
            let mut with_le: Vec<Label<'_>> = labels.to_vec();
            with_le.push(("le", "+Inf"));
            self.labels(&with_le);
            let _ = writeln!(self.out, " {}", snap.count);
            let _ = write!(self.out, "{name}_sum");
            self.labels(labels);
            let _ = writeln!(self.out, " {}", snap.sum_micros as f64 / 1e6);
            let _ = write!(self.out, "{name}_count");
            self.labels(labels);
            let _ = writeln!(self.out, " {}", snap.count);
        }
    }

    /// An unlabeled histogram.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistSnapshot) {
        self.histogram_family(name, help, &[(&[], snap)]);
    }

    /// The finished document (ends with a newline).
    pub fn finish(self) -> String {
        self.out
    }
}

/// Summary of a successfully validated document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromSummary {
    /// Families seen, in order of their `# TYPE` line: `(name, type)`.
    pub families: Vec<(String, String)>,
    /// Total number of sample lines.
    pub samples: usize,
}

impl PromSummary {
    /// Does the document define a family with this name?
    pub fn has_family(&self, name: &str) -> bool {
        self.families.iter().any(|(n, _)| n == name)
    }
}

/// One sample from a parsed document.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The full sample name as written (histogram samples keep their
    /// `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs, in document order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Label pairs as owned strings, in document order.
pub type OwnedLabels = Vec<(String, String)>;

/// One metric family from a parsed document.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    /// The family name (for histograms, the base name without suffix).
    pub name: String,
    /// The declared type (`counter`, `gauge`, `histogram`, …).
    pub ty: String,
    /// The `# HELP` text, empty when the document carried none.
    pub help: String,
    /// Every sample belonging to this family, in document order.
    pub samples: Vec<PromSample>,
}

impl PromFamily {
    /// Rebuilds one [`HistSnapshot`] per label set (excluding `le`)
    /// from this histogram family's `_bucket`/`_sum`/`_count` samples,
    /// in order of first appearance — the read side of
    /// [`PromWriter::histogram_family`], so a scrape of one process's
    /// histograms can be [`merge`](HistSnapshot::merge)d with
    /// another's.
    ///
    /// The exposition format does not carry the recorded maximum;
    /// `max_micros` is approximated by the upper bound of the highest
    /// occupied finite bucket (or by `sum_micros` when the `+Inf`
    /// bucket is occupied, a safe overestimate).
    ///
    /// # Errors
    ///
    /// When the family is not a histogram, or its finite bucket bounds
    /// are not this crate's log2 grid (foreign scrapes cannot be
    /// folded into a [`HistSnapshot`] losslessly).
    pub fn histogram_snapshots(&self) -> Result<Vec<(OwnedLabels, HistSnapshot)>, String> {
        if self.ty != "histogram" {
            return Err(format!("{} is a {}, not a histogram", self.name, self.ty));
        }
        // Group label set (minus le) -> (buckets, sum, count), keeping
        // first-appearance order.
        let mut order: Vec<Vec<(String, String)>> = Vec::new();
        type Group = (Vec<(f64, f64)>, f64, f64);
        let mut groups: HashMap<String, Group> = HashMap::new();
        for sample in &self.samples {
            let labels: Vec<(String, String)> = sample
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            let key = format!("{labels:?}");
            if !groups.contains_key(&key) {
                order.push(labels.clone());
                groups.insert(key.clone(), (Vec::new(), 0.0, 0.0));
            }
            let entry = groups.get_mut(&key).expect("just inserted");
            if sample.name.ends_with("_bucket") {
                let le = sample
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("{}: _bucket without le", self.name))?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("{}: unparseable le {le:?}", self.name))?
                };
                entry.0.push((bound, sample.value));
            } else if sample.name.ends_with("_sum") {
                entry.1 = sample.value;
            } else if sample.name.ends_with("_count") {
                entry.2 = sample.value;
            }
        }
        let mut out = Vec::new();
        for labels in order {
            let key = format!("{labels:?}");
            let (mut buckets, sum, count) = groups.remove(&key).expect("grouped above");
            buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are not NaN"));
            let mut snap = HistSnapshot {
                counts: [0; NUM_BUCKETS],
                sum_micros: (sum * 1e6).round() as u64,
                count: count.round() as u64,
                max_micros: 0,
            };
            let mut prev = 0.0;
            let mut next_grid = 0usize;
            for (bound, cumulative) in &buckets {
                let in_bucket = (cumulative - prev).round() as u64;
                prev = *cumulative;
                let idx = if bound.is_infinite() {
                    FINITE_BUCKETS
                } else {
                    let micros = (bound * 1e6).round() as u64;
                    let idx = (next_grid..FINITE_BUCKETS)
                        .find(|&i| bucket_bound_micros(i) as f64 / 1e6 == *bound)
                        .ok_or_else(|| {
                            format!("{}: bucket bound {micros}µs off the log2 grid", self.name)
                        })?;
                    next_grid = idx + 1;
                    idx
                };
                snap.counts[idx] = in_bucket;
                if in_bucket > 0 {
                    snap.max_micros = if idx >= FINITE_BUCKETS {
                        snap.sum_micros
                    } else {
                        bucket_bound_micros(idx)
                    };
                }
            }
            out.push((labels, snap));
        }
        Ok(out)
    }
}

/// A fully parsed exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct PromDoc {
    /// Families in order of their `# TYPE` declaration.
    pub families: Vec<PromFamily>,
}

impl PromDoc {
    /// Looks a family up by name.
    pub fn family(&self, name: &str) -> Option<&PromFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// The [`PromSummary`] view of this document.
    pub fn summary(&self) -> PromSummary {
        PromSummary {
            families: self
                .families
                .iter()
                .map(|f| (f.name.clone(), f.ty.clone()))
                .collect(),
            samples: self.families.iter().map(|f| f.samples.len()).sum(),
        }
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Strip a histogram sample suffix, returning the base family name.
fn histogram_base(name: &str) -> Option<(&str, &str)> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return Some((base, suffix));
        }
    }
    None
}

struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}: {line:?}");
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b':')
    {
        i += 1;
    }
    let name = &line[..i];
    if !valid_metric_name(name) {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    let rest = &line[i..];
    let rest = if let Some(stripped) = rest.strip_prefix('{') {
        let close = stripped
            .find('}')
            .ok_or_else(|| err("unterminated label set"))?;
        let (body, after) = stripped.split_at(close);
        let mut s = body;
        while !s.is_empty() {
            let eq = s.find('=').ok_or_else(|| err("label without ="))?;
            let lname = &s[..eq];
            if !valid_label_name(lname) {
                return Err(err("invalid label name"));
            }
            let mut rest_v = s[eq + 1..].chars();
            if rest_v.next() != Some('"') {
                return Err(err("label value not quoted"));
            }
            let mut value = String::new();
            let mut closed = false;
            while let Some(c) = rest_v.next() {
                match c {
                    '\\' => match rest_v.next() {
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('n') => value.push('\n'),
                        _ => return Err(err("bad escape in label value")),
                    },
                    '"' => {
                        closed = true;
                        break;
                    }
                    c => value.push(c),
                }
            }
            if !closed {
                return Err(err("unterminated label value"));
            }
            labels.push((lname.to_string(), value));
            s = rest_v.as_str();
            if let Some(stripped_comma) = s.strip_prefix(',') {
                s = stripped_comma;
            } else if !s.is_empty() {
                return Err(err("junk between labels"));
            }
        }
        &after[1..]
    } else {
        rest
    };
    let rest = rest.trim_start();
    let mut parts = rest.split_ascii_whitespace();
    let value_s = parts.next().ok_or_else(|| err("missing sample value"))?;
    let value = match value_s {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| err("unparseable sample value"))?,
    };
    if let Some(ts) = parts.next() {
        // Optional timestamp: must be an integer (milliseconds).
        ts.parse::<i64>()
            .map_err(|_| err("unparseable timestamp"))?;
    }
    if parts.next().is_some() {
        return Err(err("trailing junk after sample"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parse a text exposition document against the 0.0.4 grammar, plus
/// structural rules our scrapes rely on:
///
/// * every `#` line is a well-formed `HELP` or `TYPE` comment;
/// * every sample belongs to a family declared by a preceding `# TYPE`;
/// * no exact series (name + label set) repeats;
/// * every histogram family has, per label set: monotone cumulative
///   `_bucket` counts, a `+Inf` bucket, and `_sum`/`_count` samples with
///   `_count` equal to the `+Inf` bucket.
///
/// Returns the full [`PromDoc`] on success; [`validate`] is the
/// summary-only view.
pub fn parse(text: &str) -> Result<PromDoc, String> {
    if text.is_empty() {
        return Err("empty exposition document".into());
    }
    if !text.ends_with('\n') {
        return Err("document must end with a newline".into());
    }
    let mut types: HashMap<String, String> = HashMap::new();
    let mut families: Vec<PromFamily> = Vec::new();
    let mut family_index: HashMap<String, usize> = HashMap::new();
    let mut helps: HashMap<String, String> = HashMap::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    // histogram family -> (labels-without-le key) -> collected pieces
    type HistGroup = (Vec<(f64, f64)>, Option<f64>, Option<f64>);
    let mut hists: HashMap<String, BTreeMap<String, HistGroup>> = HashMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.strip_prefix(' ').unwrap_or(comment);
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_ascii_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: HELP with invalid metric name"));
                }
                let help = rest[name.len()..].trim_start().to_string();
                if let Some(&i) = family_index.get(name) {
                    families[i].help = help;
                } else {
                    helps.insert(name.to_string(), help);
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_ascii_whitespace();
                let name = parts.next().unwrap_or("");
                let ty = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: TYPE with invalid metric name"));
                }
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown TYPE {ty:?}"));
                }
                if types.insert(name.to_string(), ty.to_string()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
                family_index.insert(name.to_string(), families.len());
                families.push(PromFamily {
                    name: name.to_string(),
                    ty: ty.to_string(),
                    help: helps.remove(name).unwrap_or_default(),
                    samples: Vec::new(),
                });
            } else {
                return Err(format!("line {lineno}: comment is neither HELP nor TYPE"));
            }
            continue;
        }
        let sample = parse_sample(line, lineno)?;
        let mut sorted = sample.labels.clone();
        sorted.sort();
        let series_key = format!("{}|{:?}", sample.name, sorted);
        if !seen_series.insert(series_key) {
            return Err(format!(
                "line {lineno}: duplicate series for {}",
                sample.name
            ));
        }
        // Resolve the family: histogram samples use suffixed names.
        let (family, suffix) = match histogram_base(&sample.name) {
            Some((base, suffix)) if types.get(base).map(String::as_str) == Some("histogram") => {
                (base.to_string(), suffix)
            }
            _ => (sample.name.clone(), ""),
        };
        let Some(ty) = types.get(&family) else {
            return Err(format!(
                "line {lineno}: sample {} has no preceding # TYPE",
                sample.name
            ));
        };
        if ty == "histogram" {
            if suffix.is_empty() {
                return Err(format!(
                    "line {lineno}: histogram family {family} sample lacks _bucket/_sum/_count suffix"
                ));
            }
            let groups = hists.entry(family.clone()).or_default();
            let mut group_labels: Vec<(String, String)> = sample
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            group_labels.sort();
            let key = format!("{group_labels:?}");
            let entry = groups.entry(key).or_insert((Vec::new(), None, None));
            match suffix {
                "_bucket" => {
                    let le = sample
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .ok_or_else(|| format!("line {lineno}: _bucket without le label"))?;
                    let bound = if le.1 == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.1.parse::<f64>()
                            .map_err(|_| format!("line {lineno}: unparseable le {:?}", le.1))?
                    };
                    entry.0.push((bound, sample.value));
                }
                "_sum" => entry.1 = Some(sample.value),
                "_count" => entry.2 = Some(sample.value),
                _ => unreachable!(),
            }
        }
        let i = family_index[&family];
        families[i].samples.push(PromSample {
            name: sample.name,
            labels: sample.labels,
            value: sample.value,
        });
    }

    for (family, groups) in &hists {
        for (key, (buckets, sum, count)) in groups {
            let mut sorted = buckets.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            if sorted.is_empty() {
                return Err(format!("histogram {family}{key}: no buckets"));
            }
            if sorted.last().unwrap().0 != f64::INFINITY {
                return Err(format!("histogram {family}{key}: missing +Inf bucket"));
            }
            for pair in sorted.windows(2) {
                if pair[1].1 < pair[0].1 {
                    return Err(format!(
                        "histogram {family}{key}: bucket counts not cumulative"
                    ));
                }
            }
            let count = count.ok_or_else(|| format!("histogram {family}{key}: missing _count"))?;
            if sum.is_none() {
                return Err(format!("histogram {family}{key}: missing _sum"));
            }
            if sorted.last().unwrap().1 != count {
                return Err(format!("histogram {family}{key}: +Inf bucket != _count"));
            }
        }
    }

    Ok(PromDoc { families })
}

/// Validate a text exposition document — [`parse`] reduced to its
/// [`PromSummary`]. Same grammar and structural checks, same errors.
pub fn validate(text: &str) -> Result<PromSummary, String> {
    parse(text).map(|doc| doc.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn writer_output_validates() {
        let h = Histogram::new();
        for v in [3u64, 50, 900, 70_000, 200_000_000] {
            h.record_micros(v);
        }
        let snap = h.snapshot();
        let mut w = PromWriter::new();
        w.counter("reshuffle_requests_total", "Requests accepted.", 17);
        w.counter_family(
            "reshuffle_responses_total",
            "Responses by status.",
            &[(&[("status", "200")], 15), (&[("status", "503")], 2)],
        );
        w.gauge("reshuffle_uptime_seconds", "Uptime.", 12.5);
        w.histogram("reshuffle_request_seconds", "Request latency.", &snap);
        w.histogram_family(
            "reshuffle_stage_seconds",
            "Stage latency.",
            &[
                (&[("stage", "parse")], &snap),
                (&[("stage", "expand")], &snap),
            ],
        );
        let text = w.finish();
        let summary = validate(&text).expect("writer output must validate");
        assert!(summary.has_family("reshuffle_request_seconds"));
        assert!(summary.has_family("reshuffle_stage_seconds"));
        assert_eq!(
            summary
                .families
                .iter()
                .filter(|(_, t)| t == "histogram")
                .count(),
            2
        );
        // 28 buckets + sum + count per histogram series.
        assert!(summary.samples >= 3 * 30 + 3);
        assert!(text.contains("reshuffle_request_seconds_bucket{le=\"+Inf\"} 5"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(validate("").is_err());
        assert!(
            validate("no_newline 1").is_err(),
            "missing trailing newline"
        );
        assert!(validate("# random comment\n").is_err());
        assert!(validate("# TYPE m sideways\n").is_err());
        assert!(
            validate("untyped_sample 1\n").is_err(),
            "sample without TYPE"
        );
        assert!(
            validate("# TYPE m counter\nm{bad-label=\"x\"} 1\n").is_err(),
            "bad label name"
        );
        assert!(
            validate("# TYPE m counter\nm 1\nm 2\n").is_err(),
            "duplicate series"
        );
        assert!(
            validate("# TYPE m counter\nm not_a_number\n").is_err(),
            "bad value"
        );
    }

    #[test]
    fn rejects_inconsistent_histograms() {
        // Missing +Inf bucket.
        let no_inf = "# TYPE h histogram\n\
                      h_bucket{le=\"1\"} 1\n\
                      h_sum 1\n\
                      h_count 1\n";
        assert!(validate(no_inf).is_err());
        // Non-cumulative buckets.
        let non_mono = "# TYPE h histogram\n\
                        h_bucket{le=\"1\"} 5\n\
                        h_bucket{le=\"2\"} 3\n\
                        h_bucket{le=\"+Inf\"} 5\n\
                        h_sum 1\n\
                        h_count 5\n";
        assert!(validate(non_mono).is_err());
        // +Inf disagrees with _count.
        let bad_count = "# TYPE h histogram\n\
                         h_bucket{le=\"+Inf\"} 4\n\
                         h_sum 1\n\
                         h_count 5\n";
        assert!(validate(bad_count).is_err());
        // Bare family-name sample inside a histogram family.
        let bare = "# TYPE h histogram\nh 1\n";
        assert!(validate(bare).is_err());
        // A well-formed minimal histogram passes.
        let ok = "# TYPE h histogram\n\
                  h_bucket{le=\"0.5\"} 2\n\
                  h_bucket{le=\"+Inf\"} 4\n\
                  h_sum 2.25\n\
                  h_count 4\n";
        assert!(validate(ok).is_ok());
    }

    #[test]
    fn label_values_escape_and_parse_back() {
        let mut w = PromWriter::new();
        w.counter_family(
            "weird",
            "Labels with escapes.",
            &[(&[("k", "a\"b\\c\nd")], 1)],
        );
        let text = w.finish();
        validate(&text).expect("escaped labels must round-trip");
        let doc = parse(&text).expect("escaped labels must parse");
        assert_eq!(
            doc.families[0].samples[0].labels,
            vec![("k".to_string(), "a\"b\\c\nd".to_string())]
        );
    }

    #[test]
    fn gauge_family_output_validates() {
        let mut w = PromWriter::new();
        w.gauge_family(
            "reshuffle_backend_up",
            "Backend health.",
            &[
                (&[("backend", "127.0.0.1:7890")], 1.0),
                (&[("backend", "127.0.0.1:7891")], 0.0),
            ],
        );
        let text = w.finish();
        let doc = parse(&text).expect("gauge family must validate");
        let fam = doc.family("reshuffle_backend_up").expect("family present");
        assert_eq!(fam.ty, "gauge");
        assert_eq!(fam.help, "Backend health.");
        assert_eq!(fam.samples.len(), 2);
        assert_eq!(fam.samples[0].value, 1.0);
        assert_eq!(fam.samples[1].value, 0.0);
        assert_eq!(
            fam.samples[1].labels,
            vec![("backend".to_string(), "127.0.0.1:7891".to_string())]
        );
    }

    #[test]
    fn parse_exposes_structure_and_summary_agrees() {
        let mut w = PromWriter::new();
        w.counter("a_total", "A.", 3);
        w.counter_family("b_total", "B.", &[(&[("x", "1")], 7), (&[("x", "2")], 9)]);
        w.gauge("g", "G.", 2.5);
        let text = w.finish();
        let doc = parse(&text).expect("parse");
        assert_eq!(doc.families.len(), 3);
        assert_eq!(doc.family("a_total").unwrap().samples[0].value, 3.0);
        let b = doc.family("b_total").unwrap();
        assert_eq!(b.samples.len(), 2);
        assert_eq!(b.samples[1].labels[0], ("x".to_string(), "2".to_string()));
        assert_eq!(doc.summary(), validate(&text).unwrap());
        assert!(doc.family("missing").is_none());
    }

    #[test]
    fn histogram_snapshots_round_trip_through_exposition() {
        let h = Histogram::new();
        for v in [3u64, 3, 50, 900, 70_000] {
            h.record_micros(v);
        }
        let snap = h.snapshot();
        let mut w = PromWriter::new();
        w.histogram_family(
            "rt_seconds",
            "Round trip.",
            &[
                (&[("stage", "parse")], &snap),
                (&[("stage", "expand")], &snap),
            ],
        );
        let text = w.finish();
        let doc = parse(&text).expect("parse");
        let rebuilt = doc
            .family("rt_seconds")
            .expect("family")
            .histogram_snapshots()
            .expect("on-grid bounds");
        assert_eq!(rebuilt.len(), 2);
        for (labels, got) in &rebuilt {
            assert_eq!(labels.len(), 1);
            assert_eq!(labels[0].0, "stage");
            assert_eq!(got.counts, snap.counts);
            assert_eq!(got.count, snap.count);
            assert_eq!(got.sum_micros, snap.sum_micros);
            // max is approximated by the highest occupied bucket bound.
            assert!(got.max_micros >= snap.max_micros);
        }
        // Rebuilt snapshots merge like the originals.
        let mut merged = rebuilt[0].1.clone();
        merged.merge(&rebuilt[1].1);
        assert_eq!(merged.count, 2 * snap.count);
        assert_eq!(merged.sum_micros, 2 * snap.sum_micros);
    }

    #[test]
    fn histogram_snapshots_reject_foreign_grids_and_wrong_types() {
        let foreign = "# TYPE h histogram\n\
                       h_bucket{le=\"0.3\"} 2\n\
                       h_bucket{le=\"+Inf\"} 4\n\
                       h_sum 2.25\n\
                       h_count 4\n";
        let doc = parse(foreign).expect("valid document");
        assert!(doc.family("h").unwrap().histogram_snapshots().is_err());
        let mut w = PromWriter::new();
        w.counter("c_total", "C.", 1);
        let doc = parse(&w.finish()).expect("valid document");
        assert!(doc
            .family("c_total")
            .unwrap()
            .histogram_snapshots()
            .is_err());
    }
}
