//! Reader for the astg (`.g`) format used by petrify, SIS and Workcraft.
//!
//! Supported directives: `.model`, `.inputs`, `.outputs`, `.internal`,
//! `.dummy`, `.handshake` (partial specifications: an unordered req/ack
//! channel pair), `.graph`, `.marking`, `.end`, plus `#` comments. Arcs
//! between two transitions create *implicit places* named `<src,dst>`;
//! the `.marking` section accepts both explicit place names and implicit
//! places in angle brackets. Transition labels may carry instance
//! suffixes (`a+/2`).

use std::collections::HashMap;

use crate::error::{PetriError, Result};
use crate::ids::{PlaceId, TransitionId};
use crate::stg::{Polarity, SignalKind, Stg};

fn err(line: usize, message: impl Into<String>) -> PetriError {
    PetriError::Parse {
        line,
        message: message.into(),
    }
}

/// A parsed transition-label reference: `a+/2` → (`a`, Rise, 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LabelRef {
    base: String,
    polarity: Option<Polarity>,
    instance: u32,
}

/// Splits `a+/2` style text; returns `None` if the text cannot be a
/// transition label (no polarity suffix and not a declared dummy).
fn parse_label_text(text: &str) -> Option<LabelRef> {
    let (head, instance) = match text.split_once('/') {
        Some((h, i)) => (h, i.parse::<u32>().ok()?),
        None => (text, 1),
    };
    if head.is_empty() {
        return None;
    }
    let last = head.chars().last().unwrap();
    let polarity = match last {
        '+' => Some(Polarity::Rise),
        '-' => Some(Polarity::Fall),
        '~' => Some(Polarity::Toggle),
        _ => None,
    };
    let base = match polarity {
        Some(_) => &head[..head.len() - last.len_utf8()],
        None => head,
    };
    if base.is_empty() {
        return None;
    }
    Some(LabelRef {
        base: base.to_string(),
        polarity,
        instance,
    })
}

/// Parses astg text into an [`Stg`].
///
/// # Errors
///
/// Returns [`PetriError::Parse`] with a line number for malformed input,
/// unknown signals, duplicate declarations or a missing `.graph` section.
pub fn parse_g(text: &str) -> Result<Stg> {
    enum Section {
        Header,
        Graph,
        Done,
    }
    let mut stg = Stg::new("model");
    let mut dummies: Vec<String> = Vec::new();
    let mut section = Section::Header;
    // label text (normalized) -> transition id
    let mut trans_map: HashMap<String, TransitionId> = HashMap::new();
    // place name -> id
    let mut place_map: HashMap<String, PlaceId> = HashMap::new();
    let mut graph_lines: Vec<(usize, Vec<String>)> = Vec::new();
    let mut marking_tokens: Vec<(usize, String)> = Vec::new();
    let mut saw_graph = false;

    for (lineno0, raw) in text.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = match raw.split_once('#') {
            Some((before, _)) => before,
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let first = words.next().unwrap();
        match first {
            ".model" | ".name" => {
                stg.name = words.next().unwrap_or("model").to_string();
            }
            ".inputs" | ".outputs" | ".internal" => {
                let kind = match first {
                    ".inputs" => SignalKind::Input,
                    ".outputs" => SignalKind::Output,
                    _ => SignalKind::Internal,
                };
                for w in words {
                    stg.add_signal(w, kind)
                        .map_err(|e| err(lineno, e.to_string()))?;
                }
            }
            ".handshake" => {
                let names: Vec<&str> = words.collect();
                let [req, ack] = names.as_slice() else {
                    return Err(err(lineno, "expected `.handshake <req> <ack>`"));
                };
                let req = stg
                    .signal_by_name(req)
                    .ok_or_else(|| err(lineno, format!("unknown signal `{req}`")))?;
                let ack = stg
                    .signal_by_name(ack)
                    .ok_or_else(|| err(lineno, format!("unknown signal `{ack}`")))?;
                stg.add_handshake(req, ack)
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
            ".dummy" => {
                for w in words {
                    if dummies.iter().any(|d| d == w) {
                        return Err(err(lineno, format!("duplicate dummy `{w}`")));
                    }
                    dummies.push(w.to_string());
                }
            }
            ".graph" => {
                saw_graph = true;
                section = Section::Graph;
            }
            ".marking" => {
                let rest: String = line[".marking".len()..].trim().to_string();
                let inner = rest
                    .strip_prefix('{')
                    .and_then(|r| r.strip_suffix('}'))
                    .ok_or_else(|| err(lineno, "expected `.marking { ... }`"))?;
                // Tokenize respecting `<a+,b->` groups.
                let mut cur = String::new();
                let mut depth = 0usize;
                for ch in inner.chars() {
                    match ch {
                        '<' => {
                            depth += 1;
                            cur.push(ch);
                        }
                        '>' => {
                            depth = depth.saturating_sub(1);
                            cur.push(ch);
                        }
                        c if c.is_whitespace() && depth == 0 => {
                            if !cur.is_empty() {
                                marking_tokens.push((lineno, std::mem::take(&mut cur)));
                            }
                        }
                        c => cur.push(c),
                    }
                }
                if !cur.is_empty() {
                    marking_tokens.push((lineno, cur));
                }
            }
            ".end" => {
                section = Section::Done;
            }
            ".capacity" | ".slowenv" | ".coords" => { /* tolerated, ignored */ }
            w if w.starts_with('.') => {
                return Err(err(lineno, format!("unknown directive `{w}`")));
            }
            _ => match section {
                Section::Graph => {
                    let mut toks = vec![first.to_string()];
                    toks.extend(words.map(str::to_string));
                    graph_lines.push((lineno, toks));
                }
                Section::Header => {
                    return Err(err(lineno, "node line before .graph"));
                }
                Section::Done => {
                    return Err(err(lineno, "content after .end"));
                }
            },
        }
    }
    if !saw_graph {
        return Err(err(0, "missing .graph section"));
    }

    // Classify a token: transition (declared signal edge or dummy) vs place.
    // First pass: create all transitions so ids are stable and instance
    // numbering matches the file.
    let is_transition_text = |stg: &Stg, dummies: &[String], text: &str| -> Option<LabelRef> {
        let r = parse_label_text(text)?;
        match r.polarity {
            Some(_) => stg.signal_by_name(&r.base).map(|_| r),
            None => {
                if dummies.contains(&r.base) {
                    Some(r)
                } else {
                    None
                }
            }
        }
    };
    let normalize = |text: &str| -> String {
        match text.strip_suffix("/1") {
            Some(h) => h.to_string(),
            None => text.to_string(),
        }
    };

    for (lineno, toks) in &graph_lines {
        for tok in toks {
            let Some(r) = is_transition_text(&stg, &dummies, tok) else {
                continue;
            };
            let key = normalize(tok);
            if trans_map.contains_key(&key) {
                continue;
            }
            let t = match r.polarity {
                Some(pol) => {
                    let s = stg.signal_by_name(&r.base).unwrap();
                    let t = stg.add_edge_transition(s, pol);
                    // Instance numbers in files may appear out of
                    // order; keep file text as the display name.
                    if stg.transition_name(t) != key {
                        return Err(err(
                            *lineno,
                            format!(
                                "instance numbers for `{}` must appear in order \
                                 (expected `{}`, found `{key}`)",
                                r.base,
                                stg.transition_name(t)
                            ),
                        ));
                    }
                    t
                }
                None => {
                    let name = if r.instance > 1 {
                        format!("{}/{}", r.base, r.instance)
                    } else {
                        r.base.clone()
                    };
                    stg.add_dummy_transition(name)
                }
            };
            trans_map.insert(key, t);
        }
    }

    // Second pass: build arcs. A transition -> transition arc goes through
    // an implicit place.
    enum Node {
        T(TransitionId),
        P(PlaceId),
    }
    let resolve = |stg: &mut Stg,
                   place_map: &mut HashMap<String, PlaceId>,
                   trans_map: &HashMap<String, TransitionId>,
                   tok: &str|
     -> Node {
        let key = normalize(tok);
        if let Some(&t) = trans_map.get(&key) {
            return Node::T(t);
        }
        if let Some(&p) = place_map.get(&key) {
            return Node::P(p);
        }
        let p = stg.add_named_place(key.clone());
        place_map.insert(key, p);
        Node::P(p)
    };

    for (lineno, toks) in &graph_lines {
        if toks.len() < 2 {
            return Err(err(*lineno, "arc line needs a source and a target"));
        }
        let src = resolve(&mut stg, &mut place_map, &trans_map, &toks[0]);
        for tok in &toks[1..] {
            let dst = resolve(&mut stg, &mut place_map, &trans_map, tok);
            let r = match (&src, dst) {
                (Node::T(a), Node::T(b)) => stg.connect(*a, b).map(|p| {
                    let name = stg.net().place_name(p).to_string();
                    place_map.insert(name, p);
                }),
                (Node::T(a), Node::P(p)) => stg.arc_tp(*a, p),
                (Node::P(p), Node::T(b)) => stg.arc_pt(*p, b),
                (Node::P(_), Node::P(_)) => Err(err(
                    *lineno,
                    format!("arc between two places `{}` and `{tok}`", toks[0]),
                )),
            };
            r.map_err(|e| match e {
                PetriError::Parse { .. } => e,
                other => err(*lineno, other.to_string()),
            })?;
        }
    }

    // Marking.
    let mut marked: Vec<PlaceId> = Vec::new();
    for (lineno, tok) in &marking_tokens {
        let p = if let Some(inner) = tok.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
            let (a, b) = inner
                .split_once(',')
                .ok_or_else(|| err(*lineno, format!("bad implicit place `{tok}`")))?;
            let a = trans_map
                .get(&normalize(a.trim()))
                .ok_or_else(|| err(*lineno, format!("unknown transition `{a}`")))?;
            let b = trans_map
                .get(&normalize(b.trim()))
                .ok_or_else(|| err(*lineno, format!("unknown transition `{b}`")))?;
            let name = format!("<{},{}>", stg.transition_name(*a), stg.transition_name(*b));
            *place_map
                .get(&name)
                .ok_or_else(|| err(*lineno, format!("no implicit place `{name}`")))?
        } else {
            *place_map
                .get(tok.as_str())
                .ok_or_else(|| err(*lineno, format!("unknown place `{tok}`")))?
        };
        if !marked.contains(&p) {
            marked.push(p);
        }
    }
    stg.set_initial_places(&marked);
    stg.validate()?;
    Ok(stg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "\
# Fig. 1(c) of the DAC'99 paper
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn parses_fig1() {
        let g = parse_g(FIG1).unwrap();
        assert_eq!(g.name, "fig1");
        assert_eq!(g.num_signals(), 2);
        assert_eq!(g.net().num_transitions(), 4);
        // 5 implicit places.
        assert_eq!(g.net().num_places(), 5);
        assert_eq!(g.initial_marking().count(), 2);
        let ackp = g.transition_by_label("Ack+").unwrap();
        assert!(g.initial_marking().enables(g.net(), ackp));
    }

    #[test]
    fn explicit_places_and_instances() {
        let src = "\
.model m
.inputs a
.outputs b
.graph
p0 a+
a+ b+
b+ p1
p1 a-
a- b-
b- p0
p0 b+/2
b+/2 p1
.marking { p0 }
.end
";
        let g = parse_g(src).unwrap();
        assert!(g.transition_by_label("b+/2").is_some());
        assert!(g.net().place_by_name("p0").is_some());
        let b = g.signal_by_name("b").unwrap();
        assert_eq!(g.transitions_of_signal(b).len(), 3);
    }

    #[test]
    fn dummy_transitions_parse() {
        let src = "\
.model m
.inputs a
.dummy eps
.graph
a+ eps
eps a-
a- a+
.marking { <a-,a+> }
.end
";
        let g = parse_g(src).unwrap();
        let d = g.transition_by_label("eps").unwrap();
        assert!(g.edge_of(d).is_none());
    }

    #[test]
    fn unknown_signal_is_a_place() {
        // `c+` with undeclared `c` is treated as a place name; an arc
        // from place to place is then an error.
        let src = "\
.model m
.inputs a
.graph
c+ d+
.marking { }
.end
";
        let e = parse_g(src).unwrap_err();
        assert!(matches!(e, PetriError::Parse { .. }), "{e}");
    }

    #[test]
    fn marking_with_unknown_place_fails() {
        let src = "\
.model m
.inputs a
.graph
a+ a-
a- a+
.marking { nowhere }
.end
";
        assert!(parse_g(src).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let src = "
# leading comment

.model m
.inputs a   # trailing comment
.graph
a+ a-   # arc
a- a+
.marking { <a-,a+> }
.end
";
        let g = parse_g(src).unwrap();
        assert_eq!(g.net().num_transitions(), 2);
    }

    #[test]
    fn handshake_directive_parses() {
        let src = "\
.model hs
.inputs a
.outputs r
.handshake r a
.graph
r~ a~
a~ r~
.marking { <a~,r~> }
.end
";
        let g = parse_g(src).unwrap();
        assert!(g.is_partial());
        assert_eq!(g.handshakes().len(), 1);
        let h = g.handshakes()[0];
        assert_eq!(g.signal(h.req).name, "r");
        assert_eq!(g.signal(h.ack).name, "a");
    }

    #[test]
    fn handshake_directive_rejects_bad_forms() {
        let arity = ".model m\n.inputs a\n.outputs r\n.handshake r\n.graph\nr~ a~\na~ r~\n\
             .marking { <a~,r~> }\n.end\n";
        assert!(parse_g(arity).is_err());
        let unknown = ".model m\n.inputs a\n.outputs r\n.handshake r nope\n.graph\nr~ a~\na~ r~\n\
             .marking { <a~,r~> }\n.end\n";
        assert!(parse_g(unknown).is_err());
        let dup = ".model m\n.inputs a b\n.outputs r\n.handshake r a\n.handshake r b\n\
             .graph\nr~ a~\na~ r~\n.marking { <a~,r~> }\n.end\n";
        assert!(parse_g(dup).is_err());
    }

    #[test]
    fn toggle_without_channel_is_still_partial() {
        let src = ".model t2\n.inputs a\n.outputs b\n.graph\na~ b~\nb~ a~\n\
             .marking { <b~,a~> }\n.end\n";
        let g = parse_g(src).unwrap();
        assert!(g.handshakes().is_empty());
        assert!(g.is_partial());
    }

    #[test]
    fn label_text_parsing() {
        let r = parse_label_text("a+/2").unwrap();
        assert_eq!(r.base, "a");
        assert_eq!(r.polarity, Some(Polarity::Rise));
        assert_eq!(r.instance, 2);
        let r = parse_label_text("req-").unwrap();
        assert_eq!(r.polarity, Some(Polarity::Fall));
        let r = parse_label_text("x~").unwrap();
        assert_eq!(r.polarity, Some(Polarity::Toggle));
        let r = parse_label_text("plain").unwrap();
        assert_eq!(r.polarity, None);
        assert!(parse_label_text("+").is_none());
        assert!(parse_label_text("").is_none());
    }
}
