//! Canonical fingerprints of STGs.
//!
//! [`canonical_fingerprint`] hashes what a specification *means* rather
//! than how it was built: signals are visited in name order, transitions
//! in label order, and places as (producer labels, consumer labels,
//! marked) triples in sorted order — so two specifications that differ
//! only in declaration order of signals, transitions or places hash
//! equal, while any structural difference (an arc, a token, a signal
//! kind, a handshake declaration) changes the fingerprint.
//!
//! The fingerprint is the cache key of the facade's synthesis cache:
//! re-synthesizing a spec that was already synthesized under the same
//! options must be a lookup, not a pipeline run.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::ids::SignalId;
use crate::stg::Stg;

/// A canonical 64-bit fingerprint of an STG.
///
/// Invariant under declaration order of signals, transitions and
/// places; sensitive to the model name, the signal table (names, kinds,
/// explicit initial values), declared handshake channels, transition
/// labels (including instance numbers), the arc structure, and the
/// initial marking.
///
/// ```
/// use reshuffle_petri::{canonical_fingerprint, parse_g, write_g};
///
/// # fn main() -> Result<(), reshuffle_petri::PetriError> {
/// let stg = parse_g(
///     ".model toggle\n.inputs a\n.outputs b\n.graph\n\
///      a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
/// )?;
/// // A write/parse round trip preserves the fingerprint.
/// let reparsed = parse_g(&write_g(&stg))?;
/// assert_eq!(canonical_fingerprint(&stg), canonical_fingerprint(&reparsed));
/// # Ok(())
/// # }
/// ```
pub fn canonical_fingerprint(stg: &Stg) -> u64 {
    let mut h = DefaultHasher::new();
    stg.name.hash(&mut h);

    // Signal table in name order (names are unique).
    let mut sigs: Vec<SignalId> = stg.signals().collect();
    sigs.sort_by(|&a, &b| stg.signal(a).name.cmp(&stg.signal(b).name));
    sigs.len().hash(&mut h);
    for &s in &sigs {
        let sig = stg.signal(s);
        sig.name.hash(&mut h);
        sig.kind.hash(&mut h);
        stg.initial_value(s).hash(&mut h);
    }

    // Open handshake channels, as sorted (req, ack) name pairs.
    let mut channels: Vec<(&str, &str)> = stg
        .handshakes()
        .iter()
        .map(|c| {
            (
                stg.signal(c.req).name.as_str(),
                stg.signal(c.ack).name.as_str(),
            )
        })
        .collect();
    channels.sort_unstable();
    channels.hash(&mut h);

    // Transitions by rendered label (label + instance identifies one).
    let mut labels: Vec<&str> = stg.transitions().map(|t| stg.transition_name(t)).collect();
    labels.sort_unstable();
    labels.hash(&mut h);

    // Places as (producer labels, consumer labels, marked) in canonical
    // order: place names are incidental, the flow relation is not.
    let marking = stg.initial_marking();
    let mut places: Vec<(Vec<&str>, Vec<&str>, bool)> = stg
        .places()
        .map(|p| {
            let mut prod: Vec<&str> = stg
                .net()
                .producers(p)
                .iter()
                .map(|&t| stg.transition_name(t))
                .collect();
            prod.sort_unstable();
            let mut cons: Vec<&str> = stg
                .net()
                .consumers(p)
                .iter()
                .map(|&t| stg.transition_name(t))
                .collect();
            cons.sort_unstable();
            (prod, cons, marking.contains(p))
        })
        .collect();
    places.sort_unstable();
    places.hash(&mut h);

    h.finish()
}

impl Stg {
    /// [`canonical_fingerprint`] as a method.
    pub fn canonical_fingerprint(&self) -> u64 {
        canonical_fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;
    use crate::stg::{Polarity, SignalKind};
    use crate::write::write_g;

    const TOGGLE: &str = ".model t\n.inputs a\n.outputs b\n.graph\n\
         a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n";

    #[test]
    fn roundtrip_is_stable() {
        let stg = parse_g(TOGGLE).unwrap();
        let reparsed = parse_g(&write_g(&stg)).unwrap();
        assert_eq!(
            canonical_fingerprint(&stg),
            canonical_fingerprint(&reparsed)
        );
    }

    /// Builds the a/b toggle programmatically; `swapped` reverses the
    /// declaration order of both the transitions and the places.
    fn built_toggle(swapped: bool) -> Stg {
        let mut g = Stg::new("t");
        let a = g.add_signal("a", SignalKind::Input).unwrap();
        let b = g.add_signal("b", SignalKind::Output).unwrap();
        let (ap, am) = (
            g.add_edge_transition(a, Polarity::Rise),
            g.add_edge_transition(a, Polarity::Fall),
        );
        let (bp, bm) = (
            g.add_edge_transition(b, Polarity::Rise),
            g.add_edge_transition(b, Polarity::Fall),
        );
        let mut arcs = [(ap, bp), (bp, am), (am, bm), (bm, ap)];
        if swapped {
            arcs.reverse();
        }
        for (from, to) in arcs {
            g.connect(from, to).unwrap();
        }
        let start = g.net().place_by_name("<b-,a+>").unwrap();
        g.set_initial_places(&[start]);
        g
    }

    #[test]
    fn declaration_order_is_canonicalized() {
        assert_eq!(
            canonical_fingerprint(&built_toggle(false)),
            canonical_fingerprint(&built_toggle(true))
        );
        // And both match the parsed source of the same net.
        assert_eq!(
            canonical_fingerprint(&built_toggle(false)),
            canonical_fingerprint(&parse_g(TOGGLE).unwrap())
        );
    }

    #[test]
    fn structure_and_name_changes_are_detected() {
        let base = canonical_fingerprint(&parse_g(TOGGLE).unwrap());
        // A different model name is a different spec.
        let renamed = TOGGLE.replace(".model t", ".model u");
        assert_ne!(base, canonical_fingerprint(&parse_g(&renamed).unwrap()));
        // A different initial marking is a different spec.
        let remarked = TOGGLE.replace("<b-,a+>", "<a+,b+>");
        assert_ne!(base, canonical_fingerprint(&parse_g(&remarked).unwrap()));
        // A different signal kind is a different spec.
        let rekind = TOGGLE.replace(".inputs a\n.outputs b", ".inputs\n.outputs a b");
        assert_ne!(base, canonical_fingerprint(&parse_g(&rekind).unwrap()));
    }

    #[test]
    fn handshake_declarations_are_fingerprinted() {
        let partial = ".model hs\n.inputs a\n.outputs r\n.handshake r a\n.graph\n\
             r~ a~\na~ r~\n.marking { <a~,r~> }\n.end\n";
        let stg = parse_g(partial).unwrap();
        let fp = canonical_fingerprint(&stg);
        assert_eq!(fp, canonical_fingerprint(&parse_g(&write_g(&stg)).unwrap()));
        let mut no_channel = stg.clone();
        no_channel.remove_handshake(0);
        assert_ne!(fp, canonical_fingerprint(&no_channel));
    }
}
