//! Reachability analysis on 1-safe nets.
//!
//! [`ReachabilityGraph`] is the raw marking graph: nodes are markings,
//! arcs are transition firings. The state-graph crate layers signal
//! encodings on top of this; here we provide the plain exploration plus
//! the queries shared by every client (deadlocks, safeness diagnosis,
//! liveness of individual transitions).

use std::collections::HashMap;

use crate::error::{PetriError, Result};
use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::PetriNet;
use crate::sharded::{self, ExploreOptions};

/// Default cap on explored markings; generous for controller-sized nets.
pub const DEFAULT_STATE_BUDGET: usize = 1_000_000;

/// The reachability graph of a 1-safe net from a given initial marking.
///
/// Nodes are numbered canonically — breadth-first from the initial
/// marking, arcs in ascending transition order — so the graph is
/// byte-identical no matter how many threads explored it.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    markings: Vec<Marking>,
    /// Outgoing arcs per node: `(fired transition, successor node)`.
    succs: Vec<Vec<(TransitionId, u32)>>,
    index: HashMap<Marking, u32>,
    peak_frontier: usize,
}

impl ReachabilityGraph {
    /// Explores the reachability graph of `net` from `initial` on one
    /// thread.
    ///
    /// # Errors
    ///
    /// * [`PetriError::UnsafePlace`] if any reachable firing violates
    ///   1-safeness;
    /// * [`PetriError::StateBudgetExceeded`] if more than `budget`
    ///   markings are reachable;
    /// * [`PetriError::Structural`] if the net has source transitions.
    pub fn explore(net: &PetriNet, initial: &Marking, budget: usize) -> Result<Self> {
        Self::explore_threads(net, initial, budget, 1)
    }

    /// [`ReachabilityGraph::explore`] with a sharded parallel frontier:
    /// markings are hash-partitioned over [`sharded::NUM_SHARDS`]
    /// shards processed by up to `threads` workers (`0` = available
    /// parallelism). The result is canonically numbered and therefore
    /// identical for every thread count.
    ///
    /// # Errors
    ///
    /// Same as [`ReachabilityGraph::explore`].
    pub fn explore_threads(
        net: &PetriNet,
        initial: &Marking,
        budget: usize,
        threads: usize,
    ) -> Result<Self> {
        Self::explore_opts(net, initial, &ExploreOptions::new(threads, budget))
    }

    /// [`ReachabilityGraph::explore_threads`] with full
    /// [`ExploreOptions`] control — notably a trace context for
    /// per-shard BFS spans. Tracing does not change the result.
    ///
    /// # Errors
    ///
    /// Same as [`ReachabilityGraph::explore`].
    pub fn explore_opts(net: &PetriNet, initial: &Marking, opts: &ExploreOptions) -> Result<Self> {
        net.check_no_source_transitions()?;
        let explored = sharded::explore(
            initial.clone(),
            opts,
            |m: &Marking, out: &mut Vec<(TransitionId, Marking)>| {
                for t in m.enabled_transitions(net) {
                    out.push((t, m.fire(net, t)?));
                }
                Ok(())
            },
            PetriError::StateBudgetExceeded,
        )?;
        let index = explored
            .keys
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i as u32))
            .collect();
        Ok(ReachabilityGraph {
            markings: explored.keys,
            succs: explored.succs,
            index,
            peak_frontier: explored.peak_frontier,
        })
    }

    /// Largest breadth-first frontier seen while exploring (a proxy for
    /// how much parallelism the net exposes).
    pub fn peak_frontier(&self) -> usize {
        self.peak_frontier
    }

    /// Explores with the [default budget](DEFAULT_STATE_BUDGET).
    ///
    /// # Errors
    ///
    /// Same as [`ReachabilityGraph::explore`].
    pub fn explore_default(net: &PetriNet, initial: &Marking) -> Result<Self> {
        Self::explore(net, initial, DEFAULT_STATE_BUDGET)
    }

    /// Number of reachable markings.
    pub fn len(&self) -> usize {
        self.markings.len()
    }

    /// True if the graph has no nodes (never the case after `explore`).
    pub fn is_empty(&self) -> bool {
        self.markings.is_empty()
    }

    /// The marking of node `s`.
    pub fn marking(&self, s: u32) -> &Marking {
        &self.markings[s as usize]
    }

    /// The outgoing arcs of node `s`.
    pub fn successors(&self, s: u32) -> &[(TransitionId, u32)] {
        &self.succs[s as usize]
    }

    /// Looks up the node id of a marking, if reachable.
    pub fn node_of(&self, m: &Marking) -> Option<u32> {
        self.index.get(m).copied()
    }

    /// Nodes with no outgoing arcs.
    pub fn deadlocks(&self) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&s| self.succs[s as usize].is_empty())
            .collect()
    }

    /// True if every transition of `net` fires somewhere in the graph.
    pub fn all_transitions_fire(&self, net: &PetriNet) -> bool {
        let mut fired = vec![false; net.num_transitions()];
        for arcs in &self.succs {
            for &(t, _) in arcs {
                fired[t.index()] = true;
            }
        }
        fired.into_iter().all(|b| b)
    }

    /// The set of transitions that fire at least once.
    pub fn fired_transitions(&self, net: &PetriNet) -> Vec<TransitionId> {
        let mut fired = vec![false; net.num_transitions()];
        for arcs in &self.succs {
            for &(t, _) in arcs {
                fired[t.index()] = true;
            }
        }
        fired
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| TransitionId::from_index(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PlaceId;

    /// Two concurrent toggles: 4 reachable markings forming a diamond.
    fn diamond() -> (PetriNet, Marking) {
        let mut n = PetriNet::new();
        let pa0 = n.add_place("pa0");
        let pa1 = n.add_place("pa1");
        let pb0 = n.add_place("pb0");
        let pb1 = n.add_place("pb1");
        let a = n.add_transition("a");
        let a_back = n.add_transition("a'");
        let b = n.add_transition("b");
        let b_back = n.add_transition("b'");
        n.add_arc_pt(pa0, a).unwrap();
        n.add_arc_tp(a, pa1).unwrap();
        n.add_arc_pt(pa1, a_back).unwrap();
        n.add_arc_tp(a_back, pa0).unwrap();
        n.add_arc_pt(pb0, b).unwrap();
        n.add_arc_tp(b, pb1).unwrap();
        n.add_arc_pt(pb1, b_back).unwrap();
        n.add_arc_tp(b_back, pb0).unwrap();
        let m0 = Marking::with_tokens(4, &[pa0, pb0]);
        (n, m0)
    }

    #[test]
    fn diamond_has_four_states() {
        let (n, m0) = diamond();
        let g = ReachabilityGraph::explore_default(&n, &m0).unwrap();
        assert_eq!(g.len(), 4);
        assert!(g.deadlocks().is_empty());
        assert!(g.all_transitions_fire(&n));
    }

    #[test]
    fn budget_is_enforced() {
        let (n, m0) = diamond();
        assert!(matches!(
            ReachabilityGraph::explore(&n, &m0, 2),
            Err(PetriError::StateBudgetExceeded(2))
        ));
    }

    #[test]
    fn deadlock_detected() {
        let mut n = PetriNet::new();
        let p0 = n.add_place("p0");
        let p1 = n.add_place("p1");
        let a = n.add_transition("a");
        n.add_arc_pt(p0, a).unwrap();
        n.add_arc_tp(a, p1).unwrap();
        let m0 = Marking::with_tokens(2, &[p0]);
        let g = ReachabilityGraph::explore_default(&n, &m0).unwrap();
        assert_eq!(g.len(), 2);
        let dl = g.deadlocks();
        assert_eq!(dl.len(), 1);
        assert!(g.marking(dl[0]).contains(p1));
    }

    #[test]
    fn unsafe_net_rejected() {
        // Two producers into the same place with both sources marked.
        let mut n = PetriNet::new();
        let p0 = n.add_place("p0");
        let p1 = n.add_place("p1");
        let q = n.add_place("q");
        let a = n.add_transition("a");
        let b = n.add_transition("b");
        n.add_arc_pt(p0, a).unwrap();
        n.add_arc_tp(a, q).unwrap();
        n.add_arc_pt(p1, b).unwrap();
        n.add_arc_tp(b, q).unwrap();
        let m0 = Marking::with_tokens(3, &[p0, p1]);
        assert!(matches!(
            ReachabilityGraph::explore_default(&n, &m0),
            Err(PetriError::UnsafePlace { .. })
        ));
    }

    #[test]
    fn node_lookup_roundtrips() {
        let (n, m0) = diamond();
        let g = ReachabilityGraph::explore_default(&n, &m0).unwrap();
        assert_eq!(g.node_of(&m0), Some(0));
        let other = Marking::with_tokens(4, &[PlaceId(1), PlaceId(3)]);
        let id = g.node_of(&other).expect("reachable");
        assert_eq!(g.marking(id), &other);
    }
}
