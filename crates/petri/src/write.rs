//! Writers: astg (`.g`) output and Graphviz dot export.

use std::fmt::Write as _;

use crate::ids::PlaceId;
use crate::stg::{SignalKind, Stg, TransLabel};

/// True if `p` can be printed as an implicit arc between two transitions
/// (single producer, single consumer, conventional `<..>` name).
fn is_implicit(stg: &Stg, p: PlaceId) -> bool {
    stg.net().producers(p).len() == 1
        && stg.net().consumers(p).len() == 1
        && stg.net().place_name(p).starts_with('<')
}

/// Renders an [`Stg`] in astg (`.g`) format, parseable by
/// [`crate::parse::parse_g`] (and by petrify/Workcraft).
pub fn write_g(stg: &Stg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", stg.name);
    for (kind, directive) in [
        (SignalKind::Input, ".inputs"),
        (SignalKind::Output, ".outputs"),
        (SignalKind::Internal, ".internal"),
    ] {
        let names: Vec<&str> = stg
            .signals()
            .filter(|&s| stg.signal(s).kind == kind)
            .map(|s| stg.signal(s).name.as_str())
            .collect();
        if !names.is_empty() {
            let _ = writeln!(out, "{directive} {}", names.join(" "));
        }
    }
    for h in stg.handshakes() {
        let _ = writeln!(
            out,
            ".handshake {} {}",
            stg.signal(h.req).name,
            stg.signal(h.ack).name
        );
    }
    let dummies: Vec<&str> = stg
        .transitions()
        .filter(|&t| matches!(stg.label(t), TransLabel::Dummy { .. }))
        .map(|t| stg.transition_name(t))
        .collect();
    if !dummies.is_empty() {
        let _ = writeln!(out, ".dummy {}", dummies.join(" "));
    }
    let _ = writeln!(out, ".graph");
    // Transition lines: targets are successor transitions (through
    // implicit places) and explicit postset places.
    for t in stg.transitions() {
        let mut targets: Vec<String> = Vec::new();
        for &p in stg.net().postset(t) {
            if is_implicit(stg, p) {
                let u = stg.net().consumers(p)[0];
                targets.push(stg.transition_name(u).to_string());
            } else {
                targets.push(stg.net().place_name(p).to_string());
            }
        }
        if !targets.is_empty() {
            let _ = writeln!(out, "{} {}", stg.transition_name(t), targets.join(" "));
        }
    }
    // Explicit place lines.
    for p in stg.places() {
        if is_implicit(stg, p) || stg.net().is_isolated_place(p) {
            continue;
        }
        let targets: Vec<&str> = stg
            .net()
            .consumers(p)
            .iter()
            .map(|&u| stg.transition_name(u))
            .collect();
        if !targets.is_empty() {
            let _ = writeln!(out, "{} {}", stg.net().place_name(p), targets.join(" "));
        }
    }
    // Marking.
    let marked: Vec<String> = stg
        .initial_marking()
        .iter()
        .map(|p| stg.net().place_name(p).to_string())
        .collect();
    let _ = writeln!(out, ".marking {{ {} }}", marked.join(" "));
    let _ = writeln!(out, ".end");
    out
}

/// Renders an [`Stg`] as a Graphviz digraph for visual inspection.
/// Transitions are boxes (inputs dashed), places are circles; implicit
/// places are elided into direct edges as is conventional for STGs.
pub fn write_dot(stg: &Stg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", stg.name);
    let _ = writeln!(out, "  rankdir=TB;");
    for t in stg.transitions() {
        let style = if stg.is_input_transition(t) {
            ",style=dashed"
        } else {
            ""
        };
        let _ = writeln!(out, "  \"{}\" [shape=box{style}];", stg.transition_name(t));
    }
    let m0 = stg.initial_marking();
    for p in stg.places() {
        if stg.net().is_isolated_place(p) {
            continue;
        }
        if is_implicit(stg, p) && !m0.contains(p) {
            let a = stg.net().producers(p)[0];
            let b = stg.net().consumers(p)[0];
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\";",
                stg.transition_name(a),
                stg.transition_name(b)
            );
        } else {
            let label = if m0.contains(p) { "&bull;" } else { "" };
            let _ = writeln!(
                out,
                "  \"{}\" [shape=circle,label=\"{label}\",xlabel=\"{}\"];",
                stg.net().place_name(p),
                stg.net().place_name(p)
            );
            for &a in stg.net().producers(p) {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\";",
                    stg.transition_name(a),
                    stg.net().place_name(p)
                );
            }
            for &b in stg.net().consumers(p) {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\";",
                    stg.net().place_name(p),
                    stg.transition_name(b)
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;

    const FIG1: &str = "\
.model fig1
.inputs Req
.outputs Ack
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

    #[test]
    fn roundtrip_through_writer() {
        let g1 = parse_g(FIG1).unwrap();
        let text = write_g(&g1);
        let g2 = parse_g(&text).unwrap();
        assert_eq!(g1.num_signals(), g2.num_signals());
        assert_eq!(g1.net().num_transitions(), g2.net().num_transitions());
        assert_eq!(g1.net().num_places(), g2.net().num_places());
        assert_eq!(g1.initial_marking().count(), g2.initial_marking().count());
        // Same language start: same enabled transitions initially.
        let e1: Vec<String> = g1
            .initial_marking()
            .enabled_transitions(g1.net())
            .iter()
            .map(|&t| g1.transition_name(t).to_string())
            .collect();
        let e2: Vec<String> = g2
            .initial_marking()
            .enabled_transitions(g2.net())
            .iter()
            .map(|&t| g2.transition_name(t).to_string())
            .collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn handshake_declarations_roundtrip() {
        let src = ".model hs\n.inputs a\n.outputs r\n.handshake r a\n.graph\n\
             r~ a~\na~ r~\n.marking { <a~,r~> }\n.end\n";
        let g1 = parse_g(src).unwrap();
        let text = write_g(&g1);
        assert!(text.contains(".handshake r a"), "{text}");
        let g2 = parse_g(&text).unwrap();
        assert_eq!(g2.handshakes(), g1.handshakes());
        assert!(g2.is_partial());
    }

    #[test]
    fn dot_output_mentions_all_transitions() {
        let g = parse_g(FIG1).unwrap();
        let dot = write_dot(&g);
        for t in g.transitions() {
            assert!(dot.contains(g.transition_name(t)));
        }
        assert!(dot.starts_with("digraph"));
    }
}
