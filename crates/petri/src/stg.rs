//! Signal Transition Graphs: Petri nets whose transitions are labelled
//! with rising/falling/toggling edges of circuit signals.
//!
//! An [`Stg`] owns a [`PetriNet`], a signal table, one label per
//! transition and the initial marking. Multiple transitions may carry
//! the same signal edge (distinguished by an *instance* number, printed
//! `a+/2` as in petrify's astg format). *Dummy* transitions carry a bare
//! name and no signal edge; they are used by intermediate representations
//! during handshake expansion.

use std::fmt;

use crate::error::{PetriError, Result};
use crate::ids::{PlaceId, SignalId, TransitionId};
use crate::marking::Marking;
use crate::net::PetriNet;

/// Interface role of a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Driven by the environment; the circuit must never delay it.
    Input,
    /// Driven by the circuit and observed by the environment.
    Output,
    /// Driven by the circuit, invisible to the environment (state signals).
    Internal,
}

impl SignalKind {
    /// True for signals the circuit must implement (output or internal).
    pub fn is_noninput(self) -> bool {
        !matches!(self, SignalKind::Input)
    }
}

/// Direction of a signal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// `a+`: the signal rises from 0 to 1.
    Rise,
    /// `a-`: the signal falls from 1 to 0.
    Fall,
    /// `a~`: the signal toggles (2-phase signalling).
    Toggle,
}

impl Polarity {
    /// The suffix used in textual labels (`+`, `-`, `~`).
    pub fn suffix(self) -> &'static str {
        match self {
            Polarity::Rise => "+",
            Polarity::Fall => "-",
            Polarity::Toggle => "~",
        }
    }

    /// The opposite direction; toggles are their own opposite.
    pub fn opposite(self) -> Polarity {
        match self {
            Polarity::Rise => Polarity::Fall,
            Polarity::Fall => Polarity::Rise,
            Polarity::Toggle => Polarity::Toggle,
        }
    }
}

/// A signal edge: which signal, which direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalEdge {
    /// The signal that switches.
    pub signal: SignalId,
    /// The direction of the switch.
    pub polarity: Polarity,
}

/// Label attached to a transition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TransLabel {
    /// A signal edge, possibly one of several instances of it.
    Edge {
        /// The edge (signal + direction).
        edge: SignalEdge,
        /// Instance number; 1 is the first (printed without suffix).
        instance: u32,
    },
    /// A dummy event with a bare name (no signal semantics).
    Dummy {
        /// Display name of the dummy event.
        name: String,
    },
}

impl TransLabel {
    /// The signal edge, if this is not a dummy label.
    pub fn edge(&self) -> Option<SignalEdge> {
        match self {
            TransLabel::Edge { edge, .. } => Some(*edge),
            TransLabel::Dummy { .. } => None,
        }
    }
}

/// A named signal with its interface role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    /// Display name (as used in `.g` files).
    pub name: String,
    /// Interface role.
    pub kind: SignalKind,
}

/// A declared handshake channel of a *partial* specification: a req/ack
/// signal pair whose four-phase ordering is left open (the `.handshake`
/// directive). The channel's events appear as toggles (`req~`, `ack~`)
/// in the graph; handshake expansion turns them into the four-phase
/// protocol and enumerates the legal reshufflings of the
/// return-to-zero edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handshake {
    /// The request signal (fires first in every handshake cycle).
    pub req: SignalId,
    /// The acknowledge signal (answers the request).
    pub ack: SignalId,
}

/// A Signal Transition Graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stg {
    /// Short model name (from `.model`, or synthesized).
    pub name: String,
    net: PetriNet,
    signals: Vec<Signal>,
    labels: Vec<TransLabel>,
    initial: Marking,
    /// Explicit initial signal values, if known (otherwise inferred by
    /// the state-graph builder).
    initial_values: Vec<Option<bool>>,
    /// Declared handshake channels whose ordering is still open.
    handshakes: Vec<Handshake>,
}

impl Stg {
    /// Creates an empty STG with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        Stg {
            name: name.into(),
            net: PetriNet::new(),
            signals: Vec::new(),
            labels: Vec::new(),
            initial: Marking::empty(0),
            initial_values: Vec::new(),
            handshakes: Vec::new(),
        }
    }

    /// Declares a new signal.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::DuplicateName`] if the name is taken.
    pub fn add_signal(&mut self, name: impl Into<String>, kind: SignalKind) -> Result<SignalId> {
        let name = name.into();
        if self.signals.iter().any(|s| s.name == name) {
            return Err(PetriError::DuplicateName(name));
        }
        let id = SignalId::from_index(self.signals.len());
        self.signals.push(Signal { name, kind });
        self.initial_values.push(None);
        Ok(id)
    }

    /// Number of declared signals.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// The signal table entry for `s`.
    pub fn signal(&self, s: SignalId) -> &Signal {
        &self.signals[s.index()]
    }

    /// Looks up a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(SignalId::from_index)
    }

    /// Iterates over all signal ids.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.signals.len()).map(SignalId::from_index)
    }

    /// Changes the kind of an existing signal (e.g. to hide an output
    /// when re-classifying interface signals).
    pub fn set_signal_kind(&mut self, s: SignalId, kind: SignalKind) {
        self.signals[s.index()].kind = kind;
    }

    /// Declares a handshake channel with open (reshufflable) ordering.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::Structural`] if `req == ack` or either
    /// signal already belongs to a declared channel.
    pub fn add_handshake(&mut self, req: SignalId, ack: SignalId) -> Result<()> {
        if req == ack {
            return Err(PetriError::Structural(format!(
                "handshake req and ack must differ (both are `{}`)",
                self.signals[req.index()].name
            )));
        }
        for h in &self.handshakes {
            for s in [h.req, h.ack] {
                if s == req || s == ack {
                    return Err(PetriError::Structural(format!(
                        "signal `{}` already belongs to a handshake channel",
                        self.signals[s.index()].name
                    )));
                }
            }
        }
        self.handshakes.push(Handshake { req, ack });
        Ok(())
    }

    /// The declared handshake channels whose ordering is still open.
    pub fn handshakes(&self) -> &[Handshake] {
        &self.handshakes
    }

    /// Removes a declared channel (after it has been expanded).
    pub fn remove_handshake(&mut self, index: usize) -> Handshake {
        self.handshakes.remove(index)
    }

    /// True if any transition carries a toggle (`a~`) label.
    pub fn has_toggle_transitions(&self) -> bool {
        self.labels
            .iter()
            .any(|l| matches!(l.edge().map(|e| e.polarity), Some(Polarity::Toggle)))
    }

    /// True if the specification is *partial* in the paper's sense:
    /// it declares unordered handshake channels and/or uses two-phase
    /// toggle events, so the ordering of the four-phase protocol edges
    /// is not yet committed. Partial specifications must go through
    /// handshake expansion before synthesis.
    pub fn is_partial(&self) -> bool {
        !self.handshakes.is_empty() || self.has_toggle_transitions()
    }

    /// Adds a transition labelled with a signal edge. The instance number
    /// is assigned automatically (1 + number of existing transitions with
    /// the same edge).
    pub fn add_edge_transition(&mut self, signal: SignalId, polarity: Polarity) -> TransitionId {
        let edge = SignalEdge { signal, polarity };
        let instance = 1 + self
            .labels
            .iter()
            .filter(|l| l.edge() == Some(edge))
            .count() as u32;
        let label = TransLabel::Edge { edge, instance };
        let name = self.render_label(&label);
        let t = self.net.add_transition(name);
        self.labels.push(label);
        t
    }

    /// Adds a dummy transition with a bare display name.
    pub fn add_dummy_transition(&mut self, name: impl Into<String>) -> TransitionId {
        let name = name.into();
        let t = self.net.add_transition(name.clone());
        self.labels.push(TransLabel::Dummy { name });
        t
    }

    /// Adds a transition with an explicit, pre-assigned label. Unlike
    /// [`Stg::add_edge_transition`] the instance number is taken
    /// verbatim, so structural rebuilds (e.g. [`crate::prereduce`]
    /// compaction) reproduce `a+/2` as `a+/2` regardless of insertion
    /// order. The caller is responsible for keeping labels unique.
    pub fn add_labelled_transition(&mut self, label: TransLabel) -> TransitionId {
        let name = self.render_label(&label);
        let t = self.net.add_transition(name);
        self.labels.push(label);
        t
    }

    /// Adds an unnamed place (named `p<N>`).
    pub fn add_place(&mut self) -> PlaceId {
        let n = self.net.num_places();
        self.net.add_place(format!("p{n}"))
    }

    /// Adds a named place.
    pub fn add_named_place(&mut self, name: impl Into<String>) -> PlaceId {
        self.net.add_place(name)
    }

    /// Adds a place connecting `from` to `to` (an *implicit place* in
    /// astg terms) and returns it.
    ///
    /// # Errors
    ///
    /// Propagates duplicate-arc errors from the underlying net.
    pub fn connect(&mut self, from: TransitionId, to: TransitionId) -> Result<PlaceId> {
        let name = format!(
            "<{},{}>",
            self.net.transition_name(from),
            self.net.transition_name(to)
        );
        let p = self.net.add_place(name);
        self.net.add_arc_tp(from, p)?;
        self.net.add_arc_pt(p, to)?;
        Ok(p)
    }

    /// Adds an arc from a place to a transition.
    ///
    /// # Errors
    ///
    /// Propagates duplicate-arc errors.
    pub fn arc_pt(&mut self, p: PlaceId, t: TransitionId) -> Result<()> {
        self.net.add_arc_pt(p, t)
    }

    /// Adds an arc from a transition to a place.
    ///
    /// # Errors
    ///
    /// Propagates duplicate-arc errors.
    pub fn arc_tp(&mut self, t: TransitionId, p: PlaceId) -> Result<()> {
        self.net.add_arc_tp(t, p)
    }

    /// Sets the initial marking from a set of places.
    pub fn set_initial_places(&mut self, places: &[PlaceId]) {
        self.initial = Marking::with_tokens(self.net.num_places(), places);
    }

    /// Sets the initial marking directly.
    pub fn set_initial_marking(&mut self, m: Marking) {
        self.initial = m;
    }

    /// The initial marking, resized to the current number of places.
    pub fn initial_marking(&self) -> Marking {
        if self.initial.num_places() == self.net.num_places() {
            self.initial.clone()
        } else {
            let marked: Vec<PlaceId> = self.initial.iter().collect();
            Marking::with_tokens(self.net.num_places(), &marked)
        }
    }

    /// Sets an explicit initial value for a signal.
    pub fn set_initial_value(&mut self, s: SignalId, value: bool) {
        self.initial_values[s.index()] = Some(value);
    }

    /// The explicit initial value of a signal, if declared.
    pub fn initial_value(&self, s: SignalId) -> Option<bool> {
        self.initial_values[s.index()]
    }

    /// Read access to the underlying net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// Mutable access to the underlying net, for structural transforms.
    /// Callers must keep `labels` in sync when adding transitions — the
    /// methods on `Stg` do this automatically; prefer them.
    pub(crate) fn net_mut(&mut self) -> &mut PetriNet {
        &mut self.net
    }

    /// The label of transition `t`.
    pub fn label(&self, t: TransitionId) -> &TransLabel {
        &self.labels[t.index()]
    }

    /// The signal edge of transition `t` (`None` for dummies).
    pub fn edge_of(&self, t: TransitionId) -> Option<SignalEdge> {
        self.labels[t.index()].edge()
    }

    /// True if `t` is labelled with an edge of an input signal.
    pub fn is_input_transition(&self, t: TransitionId) -> bool {
        match self.edge_of(t) {
            Some(e) => self.signal(e.signal).kind == SignalKind::Input,
            None => false,
        }
    }

    /// All transitions labelled with edges of signal `s`.
    pub fn transitions_of_signal(&self, s: SignalId) -> Vec<TransitionId> {
        self.net
            .transitions()
            .filter(|&t| self.edge_of(t).map(|e| e.signal) == Some(s))
            .collect()
    }

    /// All transitions labelled with the given edge (all instances).
    pub fn transitions_of_edge(&self, edge: SignalEdge) -> Vec<TransitionId> {
        self.net
            .transitions()
            .filter(|&t| self.edge_of(t) == Some(edge))
            .collect()
    }

    /// Iterates over all transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> + '_ {
        self.net.transitions()
    }

    /// Iterates over all place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        self.net.places()
    }

    /// Renders a label as text, e.g. `req+`, `ack-/2`, `dum1`.
    pub fn render_label(&self, label: &TransLabel) -> String {
        match label {
            TransLabel::Edge { edge, instance } => {
                let base = format!(
                    "{}{}",
                    self.signals[edge.signal.index()].name,
                    edge.polarity.suffix()
                );
                if *instance > 1 {
                    format!("{base}/{instance}")
                } else {
                    base
                }
            }
            TransLabel::Dummy { name } => name.clone(),
        }
    }

    /// Display name of transition `t` (kept in sync with its label).
    pub fn transition_name(&self, t: TransitionId) -> &str {
        self.net.transition_name(t)
    }

    /// Finds a transition by its rendered label (e.g. `"a+"`, `"a+/2"`).
    pub fn transition_by_label(&self, text: &str) -> Option<TransitionId> {
        self.net.transition_by_name(text)
    }

    /// Relabels a transition with a new signal edge; the instance number
    /// is reassigned automatically and the display name refreshed.
    pub fn relabel_transition(&mut self, t: TransitionId, signal: SignalId, polarity: Polarity) {
        let edge = SignalEdge { signal, polarity };
        let instance = 1 + self
            .labels
            .iter()
            .enumerate()
            .filter(|&(i, l)| i != t.index() && l.edge() == Some(edge))
            .count() as u32;
        let label = TransLabel::Edge { edge, instance };
        let name = self.render_label(&label);
        self.labels[t.index()] = label;
        self.net.set_transition_name(t, name);
        self.refresh_implicit_place_names(t);
    }

    /// Re-derives the conventional `<producer,consumer>` names of the
    /// implicit places adjacent to `t` after its display name changed,
    /// so `.marking` round-trips through [`crate::write_g`].
    fn refresh_implicit_place_names(&mut self, t: TransitionId) {
        let adjacent: Vec<PlaceId> = self
            .net
            .preset(t)
            .iter()
            .chain(self.net.postset(t))
            .copied()
            .collect();
        for p in adjacent {
            if !self.net.place_name(p).starts_with('<') {
                continue;
            }
            let (&[a], &[b]) = (self.net.producers(p), self.net.consumers(p)) else {
                continue;
            };
            let name = format!(
                "<{},{}>",
                self.net.transition_name(a),
                self.net.transition_name(b)
            );
            self.net.set_place_name(p, name);
        }
    }

    /// Basic sanity checks: marking sized to the net, every edge label
    /// references a declared signal.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::Structural`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.labels.len() != self.net.num_transitions() {
            return Err(PetriError::Structural(format!(
                "{} labels for {} transitions",
                self.labels.len(),
                self.net.num_transitions()
            )));
        }
        for l in &self.labels {
            if let Some(e) = l.edge() {
                if e.signal.index() >= self.signals.len() {
                    return Err(PetriError::Structural(format!(
                        "label references undeclared signal {}",
                        e.signal
                    )));
                }
            }
        }
        self.net.check_no_source_transitions()?;
        Ok(())
    }
}

impl fmt::Display for Stg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Stg {} ({} signals, {} transitions, {} places)",
            self.name,
            self.signals.len(),
            self.net.num_transitions(),
            self.net.num_places()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The controller of Fig. 1(c): Req+ -> Ack+ -> {Req-, Ack-} cycle.
    pub(crate) fn fig1_stg() -> Stg {
        let mut g = Stg::new("fig1");
        let req = g.add_signal("Req", SignalKind::Input).unwrap();
        let ack = g.add_signal("Ack", SignalKind::Output).unwrap();
        let req_p = g.add_edge_transition(req, Polarity::Rise);
        let req_m = g.add_edge_transition(req, Polarity::Fall);
        let ack_p = g.add_edge_transition(ack, Polarity::Rise);
        let ack_m = g.add_edge_transition(ack, Polarity::Fall);
        // Arcs of Fig. 1(c): Ack+ -> Req-, Req- -> Req+, Req- -> Ack-,
        // Ack- -> Ack+, Req+ -> Ack+ (the `start` place), with the
        // initial marking enabling Ack+ (state 0*1 of Fig. 1(d)).
        g.connect(ack_p, req_m).unwrap();
        g.connect(req_m, req_p).unwrap();
        g.connect(req_m, ack_m).unwrap();
        g.connect(ack_m, ack_p).unwrap();
        let p_start = g.add_named_place("start");
        g.arc_pt(p_start, ack_p).unwrap();
        g.arc_tp(req_p, p_start).unwrap();
        let before_ackp = g.net().place_by_name("<Ack-,Ack+>").unwrap();
        g.set_initial_places(&[p_start, before_ackp]);
        g
    }

    #[test]
    fn signals_and_labels() {
        let g = fig1_stg();
        assert_eq!(g.num_signals(), 2);
        let req = g.signal_by_name("Req").unwrap();
        assert_eq!(g.signal(req).kind, SignalKind::Input);
        let t = g.transition_by_label("Req+").unwrap();
        assert!(g.is_input_transition(t));
        assert_eq!(
            g.edge_of(t),
            Some(SignalEdge {
                signal: req,
                polarity: Polarity::Rise
            })
        );
    }

    #[test]
    fn instances_number_automatically() {
        let mut g = Stg::new("t");
        let a = g.add_signal("a", SignalKind::Output).unwrap();
        let t1 = g.add_edge_transition(a, Polarity::Rise);
        let t2 = g.add_edge_transition(a, Polarity::Rise);
        assert_eq!(g.transition_name(t1), "a+");
        assert_eq!(g.transition_name(t2), "a+/2");
        assert_eq!(g.transitions_of_edge(g.edge_of(t1).unwrap()).len(), 2);
    }

    #[test]
    fn duplicate_signal_rejected() {
        let mut g = Stg::new("t");
        g.add_signal("a", SignalKind::Input).unwrap();
        assert!(g.add_signal("a", SignalKind::Output).is_err());
    }

    #[test]
    fn relabel_refreshes_name() {
        let mut g = Stg::new("t");
        let a = g.add_signal("a", SignalKind::Output).unwrap();
        let b = g.add_signal("b", SignalKind::Output).unwrap();
        let t = g.add_edge_transition(a, Polarity::Rise);
        g.relabel_transition(t, b, Polarity::Fall);
        assert_eq!(g.transition_name(t), "b-");
        assert_eq!(g.transitions_of_signal(a).len(), 0);
        assert_eq!(g.transitions_of_signal(b), vec![t]);
    }

    #[test]
    fn validate_accepts_wellformed() {
        let g = fig1_stg();
        g.validate().unwrap();
    }

    #[test]
    fn initial_marking_resizes() {
        let mut g = Stg::new("t");
        let a = g.add_signal("a", SignalKind::Output).unwrap();
        let t1 = g.add_edge_transition(a, Polarity::Rise);
        let t2 = g.add_edge_transition(a, Polarity::Fall);
        let p = g.connect(t1, t2).unwrap();
        g.set_initial_places(&[p]);
        // Adding more places afterwards must not invalidate the marking.
        let _q = g.connect(t2, t1).unwrap();
        let m = g.initial_marking();
        assert_eq!(m.num_places(), g.net().num_places());
        assert!(m.contains(p));
    }

    #[test]
    fn dummy_transitions() {
        let mut g = Stg::new("t");
        let d = g.add_dummy_transition("eps");
        assert_eq!(g.edge_of(d), None);
        assert!(!g.is_input_transition(d));
        assert_eq!(g.transition_name(d), "eps");
    }
}
