//! Deterministic sharded parallel breadth-first exploration.
//!
//! [`explore`] grows a graph from an initial key by expanding the
//! frontier level by level. Work is partitioned over a *fixed* number
//! of hash shards ([`NUM_SHARDS`]), each owning the keys whose hash
//! lands on it; worker threads process disjoint shard ranges, so no
//! locks are taken on the hot path. Because the partitioning depends
//! only on the key hash — never on thread scheduling — every phase
//! visits its work in a fixed order and the exploration is fully
//! deterministic for a given input.
//!
//! The returned graph is additionally *canonical*: states are
//! renumbered in breadth-first order from the initial key, following
//! each state's successor list in the order the callback produced it.
//! Two explorations of the same system therefore return byte-identical
//! results **regardless of thread count** — the property the state
//! graph build relies on to keep golden corpora, fingerprints and
//! cache keys stable.
//!
//! The engine is generic over the key type (markings for the raw
//! reachability graph, `(marking node, binary code)` pairs for the
//! encoded state graph) and reports the level-synchronous peak
//! frontier width for diagnostics.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

use reshuffle_obs::{FieldVal, SpanCtx};

/// Number of hash shards. Fixed (rather than derived from the thread
/// count) so the work decomposition — and with it every iteration
/// order — is identical no matter how many workers process it.
pub const NUM_SHARDS: usize = 16;

/// Default frontier width below which a level is processed inline on
/// the calling thread: spawning workers for a handful of states costs
/// more than the states themselves.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1024;

/// Tuning for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Worker threads; `0` resolves to the machine's available
    /// parallelism.
    pub threads: usize,
    /// Cap on the number of explored states.
    pub budget: usize,
    /// Frontier width at which a level switches from inline processing
    /// to spawned workers; `0` resolves to
    /// [`DEFAULT_PARALLEL_THRESHOLD`]. Tests force `1` to pin the
    /// spawned path on small graphs — the inline path must stay
    /// byte-identical either way.
    pub parallel_threshold: usize,
    /// Trace context for per-shard `bfs.shard` spans (frontier width,
    /// arcs produced) at verbosity level 2. Defaults to disabled, in
    /// which case each BFS level pays a single branch. Tracing never
    /// affects the explored graph — it is observation only.
    pub span: SpanCtx,
}

impl ExploreOptions {
    /// Options with the given worker count and budget, and the default
    /// parallel threshold.
    pub fn new(threads: usize, budget: usize) -> ExploreOptions {
        ExploreOptions {
            threads,
            budget,
            parallel_threshold: 0,
            span: SpanCtx::default(),
        }
    }

    /// Attach a trace context for per-shard BFS spans.
    #[must_use]
    pub fn with_span(mut self, span: SpanCtx) -> ExploreOptions {
        self.span = span;
        self
    }
}

/// The explored graph, canonically numbered in BFS order from state 0
/// (the initial key).
#[derive(Debug, Clone)]
pub struct Explored<K, L> {
    /// The key of each state, indexed by canonical id.
    pub keys: Vec<K>,
    /// Outgoing arcs per state, in the order the successor callback
    /// produced them.
    pub succs: Vec<Vec<(L, u32)>>,
    /// Largest level-synchronous frontier seen during exploration.
    pub peak_frontier: usize,
}

impl<K, L> Explored<K, L> {
    /// Total number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.succs.iter().map(|s| s.len()).sum()
    }
}

/// Resolves a thread-count request: `0` means available parallelism,
/// and more workers than shards would idle.
pub fn effective_threads(threads: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    t.clamp(1, NUM_SHARDS)
}

fn shard_of<K: Hash>(key: &K) -> usize {
    // DefaultHasher::new() is keyed deterministically, unlike
    // RandomState — shard assignment must not vary across processes.
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (NUM_SHARDS - 1)
}

/// Per-shard growable state: the keys owned by the shard and their
/// (resolved) outgoing arcs. The lookup index lives in a separate
/// vector so arc resolution can read every shard's index while
/// appending to its own arc lists.
struct Core<K, L> {
    keys: Vec<K>,
    /// Arc targets packed as `shard << 32 | local`.
    succs: Vec<Vec<(L, u64)>>,
    frontier: Vec<u32>,
}

/// What one shard's frontier expansion produced: the arcs waiting for
/// target resolution and, per destination shard, the keys discovered.
struct Expansion<K, L> {
    /// `(source local id, label, destination shard, index into the
    /// destination outbox)`.
    pending: Vec<(u32, L, u32, u32)>,
    outboxes: Vec<Vec<K>>,
}

/// One shard's mutable halves for the insertion phase: its key index
/// and its growable core.
type ShardPair<'a, K, L> = (&'a mut HashMap<K, u32>, &'a mut Core<K, L>);

fn pack(shard: usize, local: u32) -> u64 {
    ((shard as u64) << 32) | local as u64
}

fn unpack(packed: u64) -> (usize, usize) {
    ((packed >> 32) as usize, (packed & u32::MAX as u64) as usize)
}

/// Runs `f` once per item of `items` (one item per shard), returning
/// results in shard order. With more than one worker and a frontier
/// worth the spawn cost, items are split into contiguous ranges, one
/// scoped thread each; otherwise everything runs inline. Every phase
/// of the exploration funnels through this single helper, so the work
/// partitioning — and with it every observable ordering — cannot drift
/// between phases. Callers observe identical result sequences on both
/// code paths.
fn per_shard_mut<T: Send, R: Send>(
    workers: usize,
    parallel: bool,
    items: &mut [T],
    f: impl Fn(usize, &mut T) -> R + Sync,
) -> Vec<R> {
    if workers <= 1 || !parallel {
        return items
            .iter_mut()
            .enumerate()
            .map(|(s, item)| f(s, item))
            .collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut items_rest: &mut [T] = items;
        let mut slots_rest: &mut [Option<R>] = &mut out;
        let mut start = 0usize;
        while !items_rest.is_empty() {
            let take = chunk.min(items_rest.len());
            let (item_head, item_tail) = items_rest.split_at_mut(take);
            let (slot_head, slot_tail) = slots_rest.split_at_mut(take);
            items_rest = item_tail;
            slots_rest = slot_tail;
            let f = &f;
            let s0 = start;
            scope.spawn(move || {
                for (i, (item, slot)) in item_head.iter_mut().zip(slot_head).enumerate() {
                    *slot = Some(f(s0 + i, item));
                }
            });
            start += take;
        }
    });
    out.into_iter()
        .map(|r| r.expect("every shard ran"))
        .collect()
}

/// Explores the graph reachable from `initial`, calling `succ` to list
/// each state's labelled successors, and returns it canonically
/// numbered (see the module docs). `budget_err` builds the error
/// reported when more than `opts.budget` states are reachable.
///
/// # Errors
///
/// The first error `succ` returns (in deterministic shard/level
/// order), or `budget_err(opts.budget)` on exhaustion.
pub fn explore<K, L, E>(
    initial: K,
    opts: &ExploreOptions,
    succ: impl Fn(&K, &mut Vec<(L, K)>) -> Result<(), E> + Sync,
    budget_err: impl Fn(usize) -> E + Sync,
) -> Result<Explored<K, L>, E>
where
    K: Clone + Eq + Hash + Send + Sync,
    L: Copy + Send + Sync,
    E: Send,
{
    let workers = effective_threads(opts.threads);
    let mut indices: Vec<HashMap<K, u32>> = (0..NUM_SHARDS).map(|_| HashMap::new()).collect();
    let mut cores: Vec<Core<K, L>> = (0..NUM_SHARDS)
        .map(|_| Core {
            keys: Vec::new(),
            succs: Vec::new(),
            frontier: Vec::new(),
        })
        .collect();

    let init_shard = shard_of(&initial);
    indices[init_shard].insert(initial.clone(), 0);
    cores[init_shard].keys.push(initial);
    cores[init_shard].succs.push(Vec::new());
    cores[init_shard].frontier.push(0);
    let total = AtomicUsize::new(1);
    if opts.budget == 0 {
        return Err(budget_err(0));
    }
    let mut peak_frontier = 0usize;
    let threshold = if opts.parallel_threshold == 0 {
        DEFAULT_PARALLEL_THRESHOLD
    } else {
        opts.parallel_threshold
    };
    let mut level = 0u64;

    loop {
        let width: usize = cores.iter().map(|c| c.frontier.len()).sum();
        if width == 0 {
            break;
        }
        peak_frontier = peak_frontier.max(width);
        let parallel = width >= threshold;

        // Phase A: expand every shard's frontier. Arcs are recorded as
        // (source, label, destination shard, outbox position); the
        // discovered keys ride in per-destination outboxes. Shards with
        // work open a level-2 child span reporting their frontier slice.
        let succ_ref = &succ;
        let span_ref = &opts.span;
        let expansions: Vec<Result<Expansion<K, L>, E>> =
            per_shard_mut(workers, parallel, &mut cores, |s, core| {
                let sp = if core.frontier.is_empty() {
                    None
                } else {
                    Some(span_ref.span_at(2, "bfs.shard"))
                };
                let frontier_width = core.frontier.len();
                let mut pending = Vec::new();
                let mut outboxes: Vec<Vec<K>> = (0..NUM_SHARDS).map(|_| Vec::new()).collect();
                let mut buf: Vec<(L, K)> = Vec::new();
                for &local in &core.frontier {
                    succ_ref(&core.keys[local as usize], &mut buf)?;
                    for (label, key) in buf.drain(..) {
                        let d = shard_of(&key);
                        pending.push((local, label, d as u32, outboxes[d].len() as u32));
                        outboxes[d].push(key);
                    }
                }
                if let Some(sp) = sp {
                    sp.end(&[
                        ("level", FieldVal::U64(level)),
                        ("shard", FieldVal::U64(s as u64)),
                        ("frontier", FieldVal::U64(frontier_width as u64)),
                        ("arcs", FieldVal::U64(pending.len() as u64)),
                    ]);
                }
                Ok(Expansion { pending, outboxes })
            });
        let mut levels: Vec<Expansion<K, L>> = Vec::with_capacity(NUM_SHARDS);
        for e in expansions {
            levels.push(e?); // first error in shard order
        }

        // Phase B: each shard inserts the keys destined to it, in
        // source-shard order, assigning local ids and the next
        // frontier. The budget is enforced with a shared counter.
        let levels_ref = &levels;
        let total_ref = &total;
        let budget = opts.budget;
        let mut pairs: Vec<ShardPair<'_, K, L>> =
            indices.iter_mut().zip(cores.iter_mut()).collect();
        let inserted: Vec<Result<(), ()>> =
            per_shard_mut(workers, parallel, &mut pairs, |d, (index, core)| {
                core.frontier.clear();
                for src in levels_ref.iter() {
                    for key in &src.outboxes[d] {
                        if index.contains_key(key) {
                            continue;
                        }
                        let prev = total_ref.fetch_add(1, Ordering::Relaxed);
                        if prev + 1 > budget {
                            return Err(());
                        }
                        let local = core.keys.len() as u32;
                        index.insert(key.clone(), local);
                        core.keys.push(key.clone());
                        core.succs.push(Vec::new());
                        core.frontier.push(local);
                    }
                }
                Ok(())
            });
        drop(pairs);
        if inserted.into_iter().any(|r| r.is_err()) {
            return Err(budget_err(budget));
        }

        // Phase C: resolve the level's arcs now that every discovered
        // key has a home, appending to the source shard's lists.
        let indices_ref = &indices;
        per_shard_mut(workers, parallel, &mut cores, |s, core| {
            let exp = &levels_ref[s];
            for &(src, label, d, pos) in &exp.pending {
                let key = &exp.outboxes[d as usize][pos as usize];
                let local = indices_ref[d as usize][key];
                core.succs[src as usize].push((label, pack(d as usize, local)));
            }
        });
        level += 1;
    }

    // Canonical renumbering: BFS from the initial key, following each
    // state's arcs in recorded order. Every explored state is reachable
    // from the initial one, so this visits them all.
    let n = total.load(Ordering::Relaxed);
    let mut global: Vec<Vec<u32>> = cores.iter().map(|c| vec![u32::MAX; c.keys.len()]).collect();
    let mut order: Vec<(u32, u32)> = Vec::with_capacity(n);
    global[init_shard][0] = 0;
    order.push((init_shard as u32, 0));
    let mut head = 0usize;
    while head < order.len() {
        let (s, l) = order[head];
        head += 1;
        for &(_, packed) in &cores[s as usize].succs[l as usize] {
            let (ds, dl) = unpack(packed);
            if global[ds][dl] == u32::MAX {
                global[ds][dl] = order.len() as u32;
                order.push((ds as u32, dl as u32));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "every explored state is reachable");
    let keys = order
        .iter()
        .map(|&(s, l)| cores[s as usize].keys[l as usize].clone())
        .collect();
    let succs = order
        .iter()
        .map(|&(s, l)| {
            cores[s as usize].succs[l as usize]
                .iter()
                .map(|&(label, packed)| {
                    let (ds, dl) = unpack(packed);
                    (label, global[ds][dl])
                })
                .collect()
        })
        .collect();
    Ok(Explored {
        keys,
        succs,
        peak_frontier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Explore a hypercube: states are bitmasks below 2^k, arcs set one
    /// unset bit (label = bit index). `parallel_threshold = 1` forces
    /// the spawned code path even on these small graphs.
    fn cube_with(
        k: u32,
        threads: usize,
        budget: usize,
        parallel_threshold: usize,
    ) -> Result<Explored<u32, u32>, String> {
        explore(
            0u32,
            &ExploreOptions {
                threads,
                budget,
                parallel_threshold,
                span: SpanCtx::default(),
            },
            |&s, out| {
                for b in 0..k {
                    if s & (1 << b) == 0 {
                        out.push((b, s | (1 << b)));
                    }
                }
                Ok(())
            },
            |b| format!("budget {b}"),
        )
    }

    fn cube(k: u32, threads: usize, budget: usize) -> Result<Explored<u32, u32>, String> {
        cube_with(k, threads, budget, 0)
    }

    #[test]
    fn cube_counts_and_canonical_order() {
        let e = cube(4, 1, 1 << 20).unwrap();
        assert_eq!(e.keys.len(), 16);
        assert_eq!(e.num_arcs(), 32); // 4 * 2^3 directed set-bit arcs
        assert_eq!(e.keys[0], 0);
        // BFS from 0 following bit order: first level is 1,2,4,8.
        assert_eq!(&e.keys[1..5], &[1, 2, 4, 8]);
        assert!(e.peak_frontier >= 4);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let base = cube(6, 1, 1 << 20).unwrap();
        for threads in [2, 3, 8, NUM_SHARDS + 5] {
            let e = cube(6, threads, 1 << 20).unwrap();
            assert_eq!(base.keys, e.keys, "keys differ at {threads} threads");
            assert_eq!(base.succs, e.succs, "arcs differ at {threads} threads");
        }
    }

    #[test]
    fn spawned_path_matches_inline_path() {
        // Default threshold keeps these graphs inline; forcing it to 1
        // makes every level spawn real workers. Both must be identical
        // to each other and across worker counts — this is the test
        // that actually exercises the scoped-thread code.
        let base = cube(6, 1, 1 << 20).unwrap();
        for threads in [2, 3, 8] {
            let spawned = cube_with(6, threads, 1 << 20, 1).unwrap();
            assert_eq!(base.keys, spawned.keys, "keys differ at {threads} threads");
            assert_eq!(
                base.succs, spawned.succs,
                "arcs differ at {threads} threads"
            );
        }
        // Budget and callback errors behave identically on the spawned
        // path.
        assert_eq!(cube_with(4, 4, 7, 1).unwrap_err(), "budget 7");
    }

    #[test]
    fn budget_is_enforced() {
        assert_eq!(cube(4, 1, 7).unwrap_err(), "budget 7");
        assert_eq!(cube(4, 4, 7).unwrap_err(), "budget 7");
        // Exactly enough budget succeeds.
        assert_eq!(cube(4, 1, 16).unwrap().keys.len(), 16);
        assert!(cube(4, 1, 0).is_err());
    }

    #[test]
    fn callback_errors_propagate() {
        let r = explore(
            0u32,
            &ExploreOptions::new(2, 1000),
            |&s, out: &mut Vec<(u32, u32)>| {
                if s == 3 {
                    return Err("boom".to_string());
                }
                if s < 5 {
                    out.push((0, s + 1));
                }
                Ok(())
            },
            |_| "budget".to_string(),
        );
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn shard_spans_report_frontier_sizes() {
        use reshuffle_obs::{RingSink, Sink, SinkHandle, TraceId, Tracer};
        use std::sync::Arc;
        let ring = Arc::new(RingSink::new(256));
        let tracer = Tracer::new(2, SinkHandle::new(ring.clone() as Arc<dyn Sink>));
        let trace = TraceId::derive(0xabcd, 1);
        let opts = ExploreOptions::new(2, 1 << 20).with_span(tracer.root(trace));
        let traced = explore(
            0u32,
            &opts,
            |&s: &u32, out: &mut Vec<(u32, u32)>| {
                for b in 0..4 {
                    if s & (1 << b) == 0 {
                        out.push((b, s | (1 << b)));
                    }
                }
                Ok(())
            },
            |b| format!("budget {b}"),
        )
        .unwrap();
        let plain = cube(4, 2, 1 << 20).unwrap();
        assert_eq!(traced.keys, plain.keys, "tracing must not change the graph");
        assert_eq!(traced.succs, plain.succs);
        let lines = ring.lines();
        assert!(!lines.is_empty(), "level-2 tracing emits shard spans");
        let hex = trace.to_string();
        for line in &lines {
            assert!(line.contains("\"name\":\"bfs.shard\""), "{line}");
            assert!(line.contains(&format!("\"trace\":\"{hex}\"")), "{line}");
            assert!(line.contains("\"frontier\":"), "{line}");
        }
        // At level 1 the shard spans are gated off entirely.
        let quiet = Arc::new(RingSink::new(16));
        let t1 = Tracer::new(1, SinkHandle::new(quiet.clone() as Arc<dyn Sink>));
        let opts = ExploreOptions::new(1, 1 << 20).with_span(t1.root(trace));
        explore(
            0u32,
            &opts,
            |&s: &u32, out: &mut Vec<(u32, u32)>| {
                if s < 3 {
                    out.push((0, s + 1));
                }
                Ok(())
            },
            |b| format!("budget {b}"),
        )
        .unwrap();
        assert!(quiet.lines().is_empty());
    }

    #[test]
    fn effective_threads_resolves() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1000), NUM_SHARDS);
    }
}
