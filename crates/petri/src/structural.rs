//! Structural (syntax-level) transformations on STGs.
//!
//! These are the building blocks of handshake expansion (Section 4 of
//! the paper) and of STG-level concurrency reduction: inserting a causal
//! place between two events, inserting a transition in series after an
//! event, and dropping unused places.

use crate::error::{PetriError, Result};
use crate::ids::{PlaceId, SignalId, TransitionId};
use crate::stg::{Polarity, Stg};

/// Inserts a causal constraint *"`to` waits for `from`"*: a fresh place
/// with arcs `from -> p -> to`. This is the STG counterpart of forward
/// concurrency reduction `FwdRed(to, from)` in the simple persistent
/// case (Section 6).
///
/// # Errors
///
/// Returns an error if the place/arcs already exist.
pub fn insert_causal_place(stg: &mut Stg, from: TransitionId, to: TransitionId) -> Result<PlaceId> {
    stg.connect(from, to)
}

/// Inserts a new transition labelled `signal`/`polarity` in series after
/// `after`: all postset places of `after` whose consumers are **all**
/// accepted by `keep` are re-routed to be produced by the new transition,
/// and a fresh place connects `after` to the new transition.
///
/// Used for state-signal insertion (`csc+` after event x): the new event
/// then precedes every successor of `after` routed through it.
///
/// Returns the new transition.
///
/// # Errors
///
/// Returns [`PetriError::Structural`] if no postset place of `after` is
/// eligible (the insertion would leave the new transition with no
/// successors, i.e. dangling).
pub fn insert_series_transition(
    stg: &mut Stg,
    after: TransitionId,
    signal: SignalId,
    polarity: Polarity,
    keep: impl Fn(&Stg, TransitionId) -> bool,
) -> Result<TransitionId> {
    // Decide which postset places to reroute before mutating.
    let eligible: Vec<PlaceId> = stg
        .net()
        .postset(after)
        .iter()
        .copied()
        .filter(|&p| {
            let consumers = stg.net().consumers(p);
            !consumers.is_empty() && consumers.iter().all(|&u| keep(stg, u))
        })
        .collect();
    if eligible.is_empty() {
        return Err(PetriError::Structural(format!(
            "no postset place of {} is eligible for series insertion",
            stg.transition_name(after)
        )));
    }
    let new_t = stg.add_edge_transition(signal, polarity);
    for p in &eligible {
        stg.net_mut().remove_arc_tp(after, *p);
        stg.arc_tp(new_t, *p)?;
    }
    let link = stg.add_place();
    stg.arc_tp(after, link)?;
    stg.arc_pt(link, new_t)?;
    Ok(new_t)
}

/// Removes places with no producers and no consumers (cleanup after
/// transformations). Returns the number of places dropped. Note: places
/// are *marked* as dead by disconnecting; the net keeps dense ids, so
/// this only verifies there are no tokens stranded on isolated places.
///
/// # Errors
///
/// Returns [`PetriError::Structural`] if an isolated place is marked in
/// the initial marking (a stranded token indicates a transformation bug).
pub fn check_no_stranded_tokens(stg: &Stg) -> Result<usize> {
    let m0 = stg.initial_marking();
    let mut isolated = 0;
    for p in stg.places() {
        if stg.net().is_isolated_place(p) {
            isolated += 1;
            if m0.contains(p) {
                return Err(PetriError::Structural(format!(
                    "isolated place {} holds a token",
                    stg.net().place_name(p)
                )));
            }
        }
    }
    Ok(isolated)
}

/// Mirrors the interface of an STG: inputs become outputs and vice versa
/// (the environment's view of the circuit). Internal signals stay
/// internal. Useful for composing a circuit with its environment.
pub fn mirror_interface(stg: &mut Stg) {
    use crate::stg::SignalKind;
    for s in stg.signals().collect::<Vec<_>>() {
        let kind = match stg.signal(s).kind {
            SignalKind::Input => SignalKind::Output,
            SignalKind::Output => SignalKind::Input,
            SignalKind::Internal => SignalKind::Internal,
        };
        stg.set_signal_kind(s, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ReachabilityGraph;
    use crate::stg::SignalKind;

    /// a+ -> b+ -> a- -> b- -> a+ cycle with marking before a+.
    fn chain() -> Stg {
        let mut g = Stg::new("chain");
        let a = g.add_signal("a", SignalKind::Input).unwrap();
        let b = g.add_signal("b", SignalKind::Output).unwrap();
        let ap = g.add_edge_transition(a, Polarity::Rise);
        let bp = g.add_edge_transition(b, Polarity::Rise);
        let am = g.add_edge_transition(a, Polarity::Fall);
        let bm = g.add_edge_transition(b, Polarity::Fall);
        g.connect(ap, bp).unwrap();
        g.connect(bp, am).unwrap();
        g.connect(am, bm).unwrap();
        let p = g.connect(bm, ap).unwrap();
        g.set_initial_places(&[p]);
        g
    }

    #[test]
    fn causal_place_orders_events() {
        let mut g = chain();
        let am = g.transition_by_label("a-").unwrap();
        let bm = g.transition_by_label("b-").unwrap();
        // Already ordered; adding a duplicate ordering place is fine as
        // long as the arc pair differs — connect() makes a fresh place.
        let p = insert_causal_place(&mut g, am, bm).unwrap();
        assert_eq!(g.net().producers(p), &[am]);
        assert_eq!(g.net().consumers(p), &[bm]);
        // Language unchanged: same number of reachable markings modulo
        // the duplicated place (still a single linear cycle of 4 states).
        let r = ReachabilityGraph::explore_default(g.net(), &g.initial_marking()).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn series_insertion_reroutes_successors() {
        let mut g = chain();
        let csc = g.add_signal("csc", SignalKind::Internal).unwrap();
        let bp = g.transition_by_label("b+").unwrap();
        let t = insert_series_transition(&mut g, bp, csc, Polarity::Rise, |_, _| true).unwrap();
        assert_eq!(g.transition_name(t), "csc+");
        // b+ now leads only to the link place; csc+ produces into the
        // former postset of b+.
        assert_eq!(g.net().postset(bp).len(), 1);
        let am = g.transition_by_label("a-").unwrap();
        let pred_places = g.net().preset(am);
        assert!(pred_places
            .iter()
            .any(|&p| g.net().producers(p).contains(&t)));
        // The trace now interleaves csc+: 5 states in the cycle.
        let r = ReachabilityGraph::explore_default(g.net(), &g.initial_marking()).unwrap();
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn series_insertion_respects_filter() {
        let mut g = chain();
        let csc = g.add_signal("csc", SignalKind::Internal).unwrap();
        let bp = g.transition_by_label("b+").unwrap();
        // Filter rejects everything -> error.
        let e = insert_series_transition(&mut g, bp, csc, Polarity::Rise, |_, _| false);
        assert!(e.is_err());
    }

    #[test]
    fn stranded_token_detection() {
        let mut g = chain();
        let lonely = g.add_named_place("lonely");
        let mut marked: Vec<_> = g.initial_marking().iter().collect();
        marked.push(lonely);
        g.set_initial_places(&marked);
        assert!(check_no_stranded_tokens(&g).is_err());
    }

    #[test]
    fn mirror_swaps_io() {
        let mut g = chain();
        mirror_interface(&mut g);
        let a = g.signal_by_name("a").unwrap();
        let b = g.signal_by_name("b").unwrap();
        assert_eq!(g.signal(a).kind, SignalKind::Output);
        assert_eq!(g.signal(b).kind, SignalKind::Input);
    }
}
