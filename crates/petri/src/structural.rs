//! Structural (syntax-level) transformations on STGs.
//!
//! These are the building blocks of handshake expansion (Section 4 of
//! the paper) and of STG-level concurrency reduction: inserting a causal
//! place between two events, inserting a transition in series after an
//! event, and dropping unused places.

use crate::error::{PetriError, Result};
use crate::ids::{PlaceId, SignalId, TransitionId};
use crate::marking::Marking;
use crate::stg::{Polarity, SignalEdge, Stg, TransLabel};

/// Inserts a causal constraint *"`to` waits for `from`"*: a fresh place
/// with arcs `from -> p -> to`. This is the STG counterpart of forward
/// concurrency reduction `FwdRed(to, from)` in the simple persistent
/// case (Section 6).
///
/// # Errors
///
/// Returns an error if the place/arcs already exist.
pub fn insert_causal_place(stg: &mut Stg, from: TransitionId, to: TransitionId) -> Result<PlaceId> {
    stg.connect(from, to)
}

/// Inserts a new transition labelled `signal`/`polarity` in series after
/// `after`: all postset places of `after` whose consumers are **all**
/// accepted by `keep` are re-routed to be produced by the new transition,
/// and a fresh place connects `after` to the new transition.
///
/// Used for state-signal insertion (`csc+` after event x): the new event
/// then precedes every successor of `after` routed through it.
///
/// Returns the new transition.
///
/// # Errors
///
/// Returns [`PetriError::Structural`] if no postset place of `after` is
/// eligible (the insertion would leave the new transition with no
/// successors, i.e. dangling).
pub fn insert_series_transition(
    stg: &mut Stg,
    after: TransitionId,
    signal: SignalId,
    polarity: Polarity,
    keep: impl Fn(&Stg, TransitionId) -> bool,
) -> Result<TransitionId> {
    // Decide which postset places to reroute before mutating.
    let eligible: Vec<PlaceId> = stg
        .net()
        .postset(after)
        .iter()
        .copied()
        .filter(|&p| {
            let consumers = stg.net().consumers(p);
            !consumers.is_empty() && consumers.iter().all(|&u| keep(stg, u))
        })
        .collect();
    if eligible.is_empty() {
        return Err(PetriError::Structural(format!(
            "no postset place of {} is eligible for series insertion",
            stg.transition_name(after)
        )));
    }
    let new_t = stg.add_edge_transition(signal, polarity);
    for p in &eligible {
        stg.net_mut().remove_arc_tp(after, *p);
        stg.arc_tp(new_t, *p)?;
    }
    let link = stg.add_place();
    stg.arc_tp(after, link)?;
    stg.arc_pt(link, new_t)?;
    Ok(new_t)
}

/// Removes places with no producers and no consumers (cleanup after
/// transformations). Returns the number of places dropped. Note: places
/// are *marked* as dead by disconnecting; the net keeps dense ids, so
/// this only verifies there are no tokens stranded on isolated places.
///
/// # Errors
///
/// Returns [`PetriError::Structural`] if an isolated place is marked in
/// the initial marking (a stranded token indicates a transformation bug).
pub fn check_no_stranded_tokens(stg: &Stg) -> Result<usize> {
    let m0 = stg.initial_marking();
    let mut isolated = 0;
    for p in stg.places() {
        if stg.net().is_isolated_place(p) {
            isolated += 1;
            if m0.contains(p) {
                return Err(PetriError::Structural(format!(
                    "isolated place {} holds a token",
                    stg.net().place_name(p)
                )));
            }
        }
    }
    Ok(isolated)
}

/// The four protocol transitions of one expanded handshake channel.
#[derive(Debug, Clone, Copy)]
pub struct ChannelExpansion {
    /// `req+` (the relabelled `req~`).
    pub req_rise: TransitionId,
    /// The fresh `req-` return-to-zero transition.
    pub req_fall: TransitionId,
    /// `ack+` (the relabelled `ack~`).
    pub ack_rise: TransitionId,
    /// The fresh `ack-` return-to-zero transition.
    pub ack_fall: TransitionId,
}

/// Expands the declared handshake channel at `channel` from its
/// two-phase (toggle) form to the four-phase protocol, leaving the
/// return-to-zero edges *maximally concurrent*: `req~`/`ack~` are
/// relabelled `req+`/`ack+` in place (keeping their causal context),
/// fresh `req-`/`ack-` transitions are constrained only by the protocol
/// arcs `ack+ -> req- -> ack- -> req+`, and the `ack- -> req+` idle
/// place starts marked so the first handshake can begin. The channel is
/// removed from the declaration list — its ordering is now (maximally
/// concurrently) committed; reshuffling enumeration serializes from
/// here.
///
/// Assumes the channel starts *idle* (the initial marking precedes its
/// `req~`); a mid-handshake initial marking makes the expanded net
/// unsafe or inconsistent, which the state-graph builder reports.
///
/// # Errors
///
/// Returns [`PetriError::Structural`] if there is no such channel or if
/// either channel signal does not have exactly one transition, labelled
/// as a toggle.
pub fn expand_channel_four_phase(stg: &mut Stg, channel: usize) -> Result<ChannelExpansion> {
    let Some(&h) = stg.handshakes().get(channel) else {
        return Err(PetriError::Structural(format!(
            "no handshake channel #{channel}"
        )));
    };
    let single_toggle = |stg: &Stg, s: SignalId| -> Result<TransitionId> {
        let all = stg.transitions_of_signal(s);
        let toggles = stg.transitions_of_edge(SignalEdge {
            signal: s,
            polarity: Polarity::Toggle,
        });
        match (all.len(), toggles.as_slice()) {
            (1, &[t]) => Ok(t),
            _ => Err(PetriError::Structural(format!(
                "channel signal `{}` needs exactly one toggle transition \
                 (found {} transitions, {} toggles)",
                stg.signal(s).name,
                all.len(),
                toggles.len()
            ))),
        }
    };
    let req_rise = single_toggle(stg, h.req)?;
    let ack_rise = single_toggle(stg, h.ack)?;
    stg.relabel_transition(req_rise, h.req, Polarity::Rise);
    stg.relabel_transition(ack_rise, h.ack, Polarity::Rise);
    let req_fall = stg.add_edge_transition(h.req, Polarity::Fall);
    let ack_fall = stg.add_edge_transition(h.ack, Polarity::Fall);
    stg.connect(ack_rise, req_fall)?;
    stg.connect(req_fall, ack_fall)?;
    let idle = stg.connect(ack_fall, req_rise)?;
    let mut marked: Vec<PlaceId> = stg.initial_marking().iter().collect();
    marked.push(idle);
    stg.set_initial_places(&marked);
    stg.remove_handshake(channel);
    Ok(ChannelExpansion {
        req_rise,
        req_fall,
        ack_rise,
        ack_fall,
    })
}

/// The image of transition `t` under the signal permutation `perm`
/// (`perm[i]` is the image of signal *i*): the transition carrying the
/// same polarity and instance on the image signal. Dummies map to
/// themselves. `None` if no such transition exists (then `perm` is not
/// an automorphism).
pub fn map_transition(stg: &Stg, t: TransitionId, perm: &[SignalId]) -> Option<TransitionId> {
    match stg.label(t) {
        TransLabel::Dummy { .. } => Some(t),
        TransLabel::Edge { edge, instance } => {
            let image = TransLabel::Edge {
                edge: SignalEdge {
                    signal: perm[edge.signal.index()],
                    polarity: edge.polarity,
                },
                instance: *instance,
            };
            stg.transition_by_label(&stg.render_label(&image))
        }
    }
}

/// The non-identity signal permutations under which the STG is
/// invariant: kind-preserving bijections of signals whose induced
/// transition relabelling (via [`map_transition`]) maps places to
/// places — same producer/consumer sets, same initial tokens — and
/// preserves explicit initial values and declared handshake channels.
///
/// Symmetric halves of a specification (e.g. the two branches of a
/// fork/join, or two interchangeable channels) show up here; the
/// reduction and expansion searches use the permutations to prune
/// mirror-image candidates. Brute-forces kind-class permutations, so it
/// returns the conservative answer (no symmetries) beyond 10 signals.
pub fn signal_automorphisms(stg: &Stg) -> Vec<Vec<SignalId>> {
    let n = stg.num_signals();
    if n == 0 || n > 10 {
        return Vec::new();
    }
    // Group signal indices by kind; candidate permutations permute
    // within groups only.
    let ids: Vec<SignalId> = stg.signals().collect();
    let factorial = |k: usize| (1..=k).product::<usize>();
    let candidates: usize = [
        crate::stg::SignalKind::Input,
        crate::stg::SignalKind::Output,
        crate::stg::SignalKind::Internal,
    ]
    .iter()
    .map(|&kind| factorial(ids.iter().filter(|&&s| stg.signal(s).kind == kind).count()))
    .product();
    if candidates > 5040 {
        return Vec::new(); // conservative: too many kind-class permutations
    }
    let mut perms: Vec<Vec<SignalId>> = vec![ids.clone()];
    for kind_class in [
        crate::stg::SignalKind::Input,
        crate::stg::SignalKind::Output,
        crate::stg::SignalKind::Internal,
    ] {
        let class: Vec<usize> = (0..n)
            .filter(|&i| stg.signal(ids[i]).kind == kind_class)
            .collect();
        let class_perms = permutations(&class);
        let mut next = Vec::new();
        for base in &perms {
            for cp in &class_perms {
                let mut p = base.clone();
                for (slot, &src) in class.iter().zip(cp) {
                    p[*slot] = ids[src];
                }
                next.push(p);
            }
        }
        perms = next;
    }
    perms
        .into_iter()
        .filter(|p| p.iter().zip(&ids).any(|(a, b)| a != b))
        .filter(|p| is_signal_automorphism(stg, p))
        .collect()
}

/// All permutations of `items` (Heap's algorithm, iterative order not
/// guaranteed but deterministic).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = items.to_vec();
    fn rec(k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(cur.clone());
            return;
        }
        for i in 0..k {
            rec(k - 1, cur, out);
            if k % 2 == 0 {
                cur.swap(i, k - 1);
            } else {
                cur.swap(0, k - 1);
            }
        }
    }
    let k = cur.len();
    rec(k, &mut cur, &mut out);
    if out.is_empty() {
        out.push(Vec::new());
    }
    out
}

/// Checks whether `perm` (image per signal index) preserves the STG.
fn is_signal_automorphism(stg: &Stg, perm: &[SignalId]) -> bool {
    for (i, &img) in perm.iter().enumerate() {
        let src = SignalId::from_index(i);
        if stg.signal(src).kind != stg.signal(img).kind
            || stg.initial_value(src) != stg.initial_value(img)
        {
            return false;
        }
    }
    // The induced transition mapping must be total.
    let mut tmap = Vec::with_capacity(stg.net().num_transitions());
    for t in stg.transitions() {
        match map_transition(stg, t, perm) {
            Some(u) => tmap.push(u),
            None => return false,
        }
    }
    // Handshake channels must map to handshake channels.
    let channels: Vec<(SignalId, SignalId)> =
        stg.handshakes().iter().map(|h| (h.req, h.ack)).collect();
    for h in stg.handshakes() {
        let image = (perm[h.req.index()], perm[h.ack.index()]);
        if !channels.contains(&image) {
            return false;
        }
    }
    // Places must map to places: compare the (producers, consumers,
    // initially-marked) descriptor multisets before and after mapping.
    let m0 = stg.initial_marking();
    let descriptor = |p: PlaceId, map: Option<&[TransitionId]>| {
        let rename = |t: &TransitionId| match map {
            Some(m) => m[t.index()].0,
            None => t.0,
        };
        let mut prod: Vec<u32> = stg.net().producers(p).iter().map(rename).collect();
        let mut cons: Vec<u32> = stg.net().consumers(p).iter().map(rename).collect();
        prod.sort_unstable();
        cons.sort_unstable();
        (prod, cons, m0.contains(p))
    };
    let relevant = || stg.places().filter(|&p| !stg.net().is_isolated_place(p));
    let mut original: Vec<_> = relevant().map(|p| descriptor(p, None)).collect();
    let mut mapped: Vec<_> = relevant().map(|p| descriptor(p, Some(&tmap))).collect();
    original.sort_unstable();
    mapped.sort_unstable();
    original == mapped
}

/// Mirrors the interface of an STG: inputs become outputs and vice versa
/// (the environment's view of the circuit). Internal signals stay
/// internal. Useful for composing a circuit with its environment.
pub fn mirror_interface(stg: &mut Stg) {
    use crate::stg::SignalKind;
    for s in stg.signals().collect::<Vec<_>>() {
        let kind = match stg.signal(s).kind {
            SignalKind::Input => SignalKind::Output,
            SignalKind::Output => SignalKind::Input,
            SignalKind::Internal => SignalKind::Internal,
        };
        stg.set_signal_kind(s, kind);
    }
}

// --- structural pre-reduction ----------------------------------------

/// What one [`prereduce`] pass removed, by rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrereduceStats {
    /// Total places removed (sum of the per-rule counters).
    pub places_removed: usize,
    /// Total transitions removed (dummy transitions of merged chains).
    pub transitions_removed: usize,
    /// Places removed because a twin with identical producers,
    /// consumers, and initial marking survives.
    pub duplicate_places: usize,
    /// Single-producer/single-consumer places removed because a
    /// token-conserving path of such places already enforces the same
    /// ordering (the redundant-place rule).
    pub shortcut_places: usize,
    /// Marked self-loop places removed (their token never moves and
    /// never disables their transition).
    pub self_loop_places: usize,
    /// Dummy transitions merged out of linear place chains.
    pub dummy_merges: usize,
}

impl PrereduceStats {
    /// True when the pass removed anything.
    pub fn changed(&self) -> bool {
        self.places_removed + self.transitions_removed > 0
    }
}

/// Structural pre-reduction: shrinks the net *before* its state graph
/// is ever built, using only reductions that cannot change observable
/// behavior on 1-safe inputs.
///
/// Three of the rules (duplicate places, shortcut places, marked
/// self-loops) remove places whose marking is a function of the
/// remaining places, so the reachable state graph of the reduced net is
/// isomorphic to the original's — identical state count, codes, arcs,
/// and [`fingerprint`](crate::ReachabilityGraph). The fourth (series
/// dummy merge) contracts an unobservable ε-step and therefore shrinks
/// the state graph while preserving the signal-projected trace
/// language. Partial specifications (open `.handshake` channels or
/// toggle events) are returned untouched: their ordering is not yet
/// committed, and expansion owns their structure.
///
/// The pass iterates the rules to a fixpoint and then compacts the net
/// (ids are dense, so removal is a rebuild); transition labels are
/// preserved verbatim, including instance numbers.
///
/// # Example
///
/// A place ordering `a+` before `b+` is redundant when a chain through
/// `x+` already enforces it — the pass removes it without changing the
/// reachable states:
///
/// ```
/// use reshuffle_petri::{parse_g, structural::prereduce, ReachabilityGraph};
///
/// # fn main() -> Result<(), reshuffle_petri::PetriError> {
/// let mut stg = parse_g(
///     ".model redundant\n.inputs a\n.outputs x b\n.graph\n\
///      a+ x+ b+\nx+ b+\nb+ a-\na- x- b-\nx- b-\nb- a+\n\
///      .marking { <b-,a+> }\n.end\n",
/// )?;
/// let before = ReachabilityGraph::explore_default(stg.net(), &stg.initial_marking())?;
/// let stats = prereduce(&mut stg)?;
/// assert_eq!(stats.shortcut_places, 2); // <a+,b+> and <a-,b->
/// let after = ReachabilityGraph::explore_default(stg.net(), &stg.initial_marking())?;
/// assert_eq!(before.len(), after.len()); // same reachable states
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates arc errors from the final compaction (unreachable when
/// the input net is well-formed).
pub fn prereduce(stg: &mut Stg) -> Result<PrereduceStats> {
    let mut stats = PrereduceStats::default();
    if stg.is_partial() {
        return Ok(stats);
    }
    let mut work = stg.clone();
    let mut dead_p = vec![false; work.net().num_places()];
    let mut dead_t = vec![false; work.net().num_transitions()];
    let mut marking = work.initial_marking();
    loop {
        let mut changed = false;
        changed |= drop_marked_self_loops(&work, &mut dead_p, &marking, &mut stats);
        changed |= drop_duplicate_places(&work, &mut dead_p, &marking, &mut stats);
        changed |= drop_shortcut_places(&work, &mut dead_p, &marking, &mut stats);
        changed |= merge_series_dummies(
            &mut work,
            &mut dead_p,
            &mut dead_t,
            &mut marking,
            &mut stats,
        );
        if !changed {
            break;
        }
    }
    stats.places_removed = dead_p.iter().filter(|&&d| d).count();
    stats.transitions_removed = dead_t.iter().filter(|&&d| d).count();
    if stats.changed() {
        *stg = compact(&work, &marking, &dead_p, &dead_t)?;
    }
    Ok(stats)
}

/// Rule: a *marked* place whose single producer and single consumer are
/// the same transition never changes marking and never disables it.
/// (An unmarked self-loop place means its transition is dead — a
/// semantic property the pass must not erase, so it is kept.)
fn drop_marked_self_loops(
    stg: &Stg,
    dead_p: &mut [bool],
    marking: &Marking,
    stats: &mut PrereduceStats,
) -> bool {
    let net = stg.net();
    let mut changed = false;
    for p in stg.places() {
        if dead_p[p.index()] || !marking.contains(p) {
            continue;
        }
        let (prod, cons) = (net.producers(p), net.consumers(p));
        if prod.len() != 1 || cons != prod {
            continue;
        }
        let t = prod[0];
        // The transition must keep another live preset place, or its
        // firing rule changes (it would become a source transition).
        let other_preset = net.preset(t).iter().any(|&q| q != p && !dead_p[q.index()]);
        if !other_preset {
            continue;
        }
        dead_p[p.index()] = true;
        stats.self_loop_places += 1;
        changed = true;
    }
    changed
}

/// A place's connectivity signature for the duplicate rule: sorted
/// producers, sorted consumers, initially-marked flag.
type PlaceSignature = (Vec<TransitionId>, Vec<TransitionId>, bool);

/// Rule: of two places with identical producer sets, consumer sets, and
/// initial marking, one is redundant — their markings are equal in
/// every reachable marking. The lower-numbered twin survives.
fn drop_duplicate_places(
    stg: &Stg,
    dead_p: &mut [bool],
    marking: &Marking,
    stats: &mut PrereduceStats,
) -> bool {
    let net = stg.net();
    let mut changed = false;
    let descr: Vec<Option<PlaceSignature>> = stg
        .places()
        .map(|p| {
            if dead_p[p.index()] || net.is_isolated_place(p) {
                return None;
            }
            let mut prod = net.producers(p).to_vec();
            let mut cons = net.consumers(p).to_vec();
            prod.sort_unstable();
            cons.sort_unstable();
            Some((prod, cons, marking.contains(p)))
        })
        .collect();
    for (i, d) in descr.iter().enumerate() {
        let Some(d) = d else { continue };
        if dead_p[i] {
            continue;
        }
        for (j, e) in descr.iter().enumerate().skip(i + 1) {
            if dead_p[j] {
                continue;
            }
            if e.as_ref() == Some(d) {
                dead_p[j] = true;
                stats.duplicate_places += 1;
                changed = true;
            }
        }
    }
    changed
}

/// Rule: a place `p` with single producer `a` and single consumer `c`
/// is redundant when a path of single-producer/single-consumer places
/// `q1..qk` leads from `a` to `c` carrying no more initial tokens than
/// `p`. Then `m(p) = Σ m(qi) + m0(p) − Σ m0(qi) ≥ m(qk)` in every
/// reachable marking (the sum telescopes over every firing), so `p`
/// never disables `c` and its marking is derived — removal leaves the
/// reachable graph isomorphic.
fn drop_shortcut_places(
    stg: &Stg,
    dead_p: &mut [bool],
    marking: &Marking,
    stats: &mut PrereduceStats,
) -> bool {
    let net = stg.net();
    let mut changed = false;
    for p in stg.places() {
        if dead_p[p.index()] {
            continue;
        }
        let (prod, cons) = (net.producers(p), net.consumers(p));
        if prod.len() != 1 || cons.len() != 1 || prod[0] == cons[0] {
            continue;
        }
        let (a, c) = (prod[0], cons[0]);
        let budget = marking.contains(p) as usize;
        if shortcut_path_exists(stg, dead_p, marking, p, a, c, budget) {
            dead_p[p.index()] = true;
            stats.shortcut_places += 1;
            changed = true;
        }
    }
    changed
}

/// BFS over (transition, tokens-spent) pairs through live
/// single-producer/single-consumer places other than `p`, looking for
/// an alternative path `a → … → c` with initial-token sum ≤ `budget`.
fn shortcut_path_exists(
    stg: &Stg,
    dead_p: &[bool],
    marking: &Marking,
    p: PlaceId,
    a: TransitionId,
    c: TransitionId,
    budget: usize,
) -> bool {
    let net = stg.net();
    let nt = net.num_transitions();
    let mut seen = vec![false; nt * (budget + 1)];
    let mut queue = std::collections::VecDeque::new();
    seen[a.index() * (budget + 1)] = true;
    queue.push_back((a, 0usize));
    while let Some((t, spent)) = queue.pop_front() {
        for &q in net.postset(t) {
            if q == p || dead_p[q.index()] {
                continue;
            }
            let qc = net.consumers(q);
            if net.producers(q).len() != 1 || qc.len() != 1 {
                continue;
            }
            let spent2 = spent + marking.contains(q) as usize;
            if spent2 > budget {
                continue;
            }
            let next = qc[0];
            if next == c {
                return true;
            }
            let slot = next.index() * (budget + 1) + spent2;
            if !seen[slot] {
                seen[slot] = true;
                queue.push_back((next, spent2));
            }
        }
    }
    false
}

/// Rule: a dummy transition `d` forming a linear chain `p → d → q`
/// (where `d` is `p`'s only consumer and `q`'s only producer) is an
/// unobservable ε-step: `p`'s producers are rewired straight into `q`
/// and `p`/`d` vanish. This contracts the chain — the reachable graph
/// *shrinks* (the token-in-`p` states merge into token-in-`q`), with
/// the signal-projected trace language preserved. Skipped when both
/// places are initially marked (the merge would start `q` with two
/// tokens) or when a rewired arc already exists.
fn merge_series_dummies(
    work: &mut Stg,
    dead_p: &mut [bool],
    dead_t: &mut [bool],
    marking: &mut Marking,
    stats: &mut PrereduceStats,
) -> bool {
    let mut changed = false;
    let transitions: Vec<TransitionId> = work.transitions().collect();
    for d in transitions {
        if dead_t[d.index()] || !matches!(work.label(d), TransLabel::Dummy { .. }) {
            continue;
        }
        let net = work.net();
        let live = |ps: &[PlaceId]| -> Vec<PlaceId> {
            ps.iter().copied().filter(|q| !dead_p[q.index()]).collect()
        };
        let (pre, post) = (live(net.preset(d)), live(net.postset(d)));
        let ([p], [q]) = (pre.as_slice(), post.as_slice()) else {
            continue;
        };
        let (p, q) = (*p, *q);
        if p == q || net.consumers(p) != [d] || net.producers(q) != [d] {
            continue;
        }
        if marking.contains(p) && marking.contains(q) {
            continue;
        }
        let producers: Vec<TransitionId> = net.producers(p).to_vec();
        // A producer already feeding `q` would need a duplicate arc.
        if producers.iter().any(|&t| net.postset(t).contains(&q)) {
            continue;
        }
        let net = work.net_mut();
        for &t in &producers {
            net.remove_arc_tp(t, p);
            let _ = net.add_arc_tp(t, q);
        }
        net.remove_arc_pt(p, d);
        net.remove_arc_tp(d, q);
        if marking.contains(p) {
            marking.set(p, false);
            marking.set(q, true);
        }
        dead_p[p.index()] = true;
        dead_t[d.index()] = true;
        stats.dummy_merges += 1;
        changed = true;
    }
    changed
}

/// Rebuilds the STG without the removed nodes. Ids are dense, so
/// removal is a fresh net; signal ids, labels (including instance
/// numbers), place names, initial values, and channels carry over
/// verbatim.
fn compact(stg: &Stg, marking: &Marking, dead_p: &[bool], dead_t: &[bool]) -> Result<Stg> {
    let mut out = Stg::new(stg.name.clone());
    for s in stg.signals().collect::<Vec<_>>() {
        let sig = stg.signal(s);
        let id = out.add_signal(sig.name.clone(), sig.kind)?;
        debug_assert_eq!(id, s);
        if let Some(v) = stg.initial_value(s) {
            out.set_initial_value(id, v);
        }
    }
    for h in stg.handshakes().to_vec() {
        out.add_handshake(h.req, h.ack)?;
    }
    let mut tmap: Vec<Option<TransitionId>> = vec![None; stg.net().num_transitions()];
    for t in stg.transitions().collect::<Vec<_>>() {
        if !dead_t[t.index()] {
            tmap[t.index()] = Some(out.add_labelled_transition(stg.label(t).clone()));
        }
    }
    let mut marked = Vec::new();
    for p in stg.places().collect::<Vec<_>>() {
        if dead_p[p.index()] {
            continue;
        }
        let np = out.add_named_place(stg.net().place_name(p).to_string());
        for &t in stg.net().producers(p) {
            out.arc_tp(tmap[t.index()].expect("arc from removed transition"), np)?;
        }
        for &t in stg.net().consumers(p) {
            out.arc_pt(np, tmap[t.index()].expect("arc to removed transition"))?;
        }
        if marking.contains(p) {
            marked.push(np);
        }
    }
    out.set_initial_places(&marked);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ReachabilityGraph;
    use crate::stg::SignalKind;

    /// a+ -> b+ -> a- -> b- -> a+ cycle with marking before a+.
    fn chain() -> Stg {
        let mut g = Stg::new("chain");
        let a = g.add_signal("a", SignalKind::Input).unwrap();
        let b = g.add_signal("b", SignalKind::Output).unwrap();
        let ap = g.add_edge_transition(a, Polarity::Rise);
        let bp = g.add_edge_transition(b, Polarity::Rise);
        let am = g.add_edge_transition(a, Polarity::Fall);
        let bm = g.add_edge_transition(b, Polarity::Fall);
        g.connect(ap, bp).unwrap();
        g.connect(bp, am).unwrap();
        g.connect(am, bm).unwrap();
        let p = g.connect(bm, ap).unwrap();
        g.set_initial_places(&[p]);
        g
    }

    #[test]
    fn causal_place_orders_events() {
        let mut g = chain();
        let am = g.transition_by_label("a-").unwrap();
        let bm = g.transition_by_label("b-").unwrap();
        // Already ordered; adding a duplicate ordering place is fine as
        // long as the arc pair differs — connect() makes a fresh place.
        let p = insert_causal_place(&mut g, am, bm).unwrap();
        assert_eq!(g.net().producers(p), &[am]);
        assert_eq!(g.net().consumers(p), &[bm]);
        // Language unchanged: same number of reachable markings modulo
        // the duplicated place (still a single linear cycle of 4 states).
        let r = ReachabilityGraph::explore_default(g.net(), &g.initial_marking()).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn series_insertion_reroutes_successors() {
        let mut g = chain();
        let csc = g.add_signal("csc", SignalKind::Internal).unwrap();
        let bp = g.transition_by_label("b+").unwrap();
        let t = insert_series_transition(&mut g, bp, csc, Polarity::Rise, |_, _| true).unwrap();
        assert_eq!(g.transition_name(t), "csc+");
        // b+ now leads only to the link place; csc+ produces into the
        // former postset of b+.
        assert_eq!(g.net().postset(bp).len(), 1);
        let am = g.transition_by_label("a-").unwrap();
        let pred_places = g.net().preset(am);
        assert!(pred_places
            .iter()
            .any(|&p| g.net().producers(p).contains(&t)));
        // The trace now interleaves csc+: 5 states in the cycle.
        let r = ReachabilityGraph::explore_default(g.net(), &g.initial_marking()).unwrap();
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn series_insertion_respects_filter() {
        let mut g = chain();
        let csc = g.add_signal("csc", SignalKind::Internal).unwrap();
        let bp = g.transition_by_label("b+").unwrap();
        // Filter rejects everything -> error.
        let e = insert_series_transition(&mut g, bp, csc, Polarity::Rise, |_, _| false);
        assert!(e.is_err());
    }

    #[test]
    fn stranded_token_detection() {
        let mut g = chain();
        let lonely = g.add_named_place("lonely");
        let mut marked: Vec<_> = g.initial_marking().iter().collect();
        marked.push(lonely);
        g.set_initial_places(&marked);
        assert!(check_no_stranded_tokens(&g).is_err());
    }

    /// A partial two-phase handshake: `r~ -> a~ -> r~` with a declared
    /// channel.
    fn partial_channel() -> Stg {
        crate::parse::parse_g(
            ".model hs\n.inputs a\n.outputs r\n.handshake r a\n.graph\n\
             r~ a~\na~ r~\n.marking { <a~,r~> }\n.end\n",
        )
        .unwrap()
    }

    #[test]
    fn four_phase_expansion_builds_the_protocol() {
        let mut g = partial_channel();
        assert!(g.is_partial());
        let exp = expand_channel_four_phase(&mut g, 0).unwrap();
        assert!(!g.is_partial(), "expansion must consume the channel");
        assert_eq!(g.transition_name(exp.req_rise), "r+");
        assert_eq!(g.transition_name(exp.req_fall), "r-");
        assert_eq!(g.transition_name(exp.ack_rise), "a+");
        assert_eq!(g.transition_name(exp.ack_fall), "a-");
        // The four-phase cycle is live: 4 states when nothing else runs.
        let r = ReachabilityGraph::explore_default(g.net(), &g.initial_marking()).unwrap();
        assert_eq!(r.len(), 4);
        g.validate().unwrap();
        // Relabelling refreshed the implicit place names, so the STG
        // round-trips through the writer.
        let text = crate::write::write_g(&g);
        let g2 = crate::parse::parse_g(&text).unwrap();
        assert_eq!(g.net().num_transitions(), g2.net().num_transitions());
        assert_eq!(g.initial_marking().count(), g2.initial_marking().count());
    }

    #[test]
    fn expansion_rejects_malformed_channels() {
        // A channel whose req has a rise transition instead of a toggle.
        let mut g = chain(); // a+/a-/b+/b- events, no toggles
        let a = g.signal_by_name("a").unwrap();
        let b = g.signal_by_name("b").unwrap();
        g.add_handshake(b, a).unwrap();
        let e = expand_channel_four_phase(&mut g, 0).unwrap_err();
        assert!(matches!(e, PetriError::Structural(_)), "{e}");
        // And an out-of-range channel index.
        let mut g = partial_channel();
        assert!(expand_channel_four_phase(&mut g, 7).is_err());
    }

    #[test]
    fn automorphisms_find_the_branch_swap() {
        // Fork/join with two symmetric request/ack branches.
        let g = crate::parse::parse_g(
            ".model par\n.inputs go a1 a2\n.outputs r1 r2\n.graph\n\
             go+ r1+ r2+\nr1+ a1+\nr2+ a2+\na1+ go-\na2+ go-\n\
             go- r1- r2-\nr1- a1-\nr2- a2-\na1- go+\na2- go+\n\
             .marking { <a1-,go+> <a2-,go+> }\n.end\n",
        )
        .unwrap();
        let autos = signal_automorphisms(&g);
        assert_eq!(autos.len(), 1, "exactly the 1<->2 swap");
        let p = &autos[0];
        let id = |n: &str| g.signal_by_name(n).unwrap();
        assert_eq!(p[id("a1").index()], id("a2"));
        assert_eq!(p[id("r1").index()], id("r2"));
        assert_eq!(p[id("go").index()], id("go"));
        // The induced transition mapping is total.
        let t = g.transition_by_label("r1+").unwrap();
        let u = map_transition(&g, t, p).unwrap();
        assert_eq!(g.transition_name(u), "r2+");
    }

    #[test]
    fn asymmetric_specs_have_no_automorphisms() {
        let g = partial_channel();
        assert!(signal_automorphisms(&g).is_empty());
        let g = chain();
        assert!(signal_automorphisms(&g).is_empty());
    }

    #[test]
    fn mirror_swaps_io() {
        let mut g = chain();
        mirror_interface(&mut g);
        let a = g.signal_by_name("a").unwrap();
        let b = g.signal_by_name("b").unwrap();
        assert_eq!(g.signal(a).kind, SignalKind::Output);
        assert_eq!(g.signal(b).kind, SignalKind::Input);
    }

    // --- prereduce ---------------------------------------------------

    /// Canonical witness of a reachability graph: sorted enabled-label
    /// multisets reached by BFS — invariant under place removal when
    /// the graph is isomorphic.
    fn reach_shape(g: &Stg) -> (usize, usize, Vec<Vec<String>>) {
        let rg = ReachabilityGraph::explore_default(g.net(), &g.initial_marking()).unwrap();
        let arcs = (0..rg.len() as u32).map(|s| rg.successors(s).len()).sum();
        let mut shapes: Vec<Vec<String>> = (0..rg.len() as u32)
            .map(|s| {
                let mut labels: Vec<String> = rg
                    .successors(s)
                    .iter()
                    .map(|&(t, _)| g.transition_name(t).to_string())
                    .collect();
                labels.sort();
                labels
            })
            .collect();
        shapes.sort();
        (rg.len(), arcs, shapes)
    }

    #[test]
    fn prereduce_removes_shortcut_places() {
        let mut g = crate::parse::parse_g(
            ".model redundant\n.inputs a\n.outputs x b\n.graph\n\
             a+ x+ b+\nx+ b+\nb+ a-\na- x- b-\nx- b-\nb- a+\n\
             .marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let before = reach_shape(&g);
        let stats = prereduce(&mut g).unwrap();
        assert_eq!(stats.shortcut_places, 2);
        assert_eq!(stats.places_removed, 2);
        assert_eq!(stats.transitions_removed, 0);
        g.validate().unwrap();
        assert_eq!(reach_shape(&g), before, "reachable graph changed");
        // Idempotent: a second pass finds nothing.
        assert!(!prereduce(&mut g).unwrap().changed());
    }

    #[test]
    fn prereduce_respects_token_budgets_on_shortcuts() {
        // The direct place is unmarked but the only alternative path
        // holds a token: once that token is spent the path no longer
        // bounds the direct place, so the rule must not fire.
        let mut g = Stg::new("budget");
        let a = g.add_signal("a", SignalKind::Input).unwrap();
        let x = g.add_signal("x", SignalKind::Output).unwrap();
        let b = g.add_signal("b", SignalKind::Output).unwrap();
        let ap = g.add_edge_transition(a, Polarity::Rise);
        let xp = g.add_edge_transition(x, Polarity::Rise);
        let bp = g.add_edge_transition(b, Polarity::Rise);
        let direct = g.connect(ap, bp).unwrap(); // unmarked: budget 0
        let q1 = g.connect(ap, xp).unwrap(); // marked: path sum 1
        g.connect(xp, bp).unwrap();
        let back = g.connect(bp, ap).unwrap();
        g.set_initial_places(&[q1, back]);
        let before_places = g.net().num_places();
        let stats = prereduce(&mut g).unwrap();
        assert!(!stats.changed(), "budget-violating path used: {stats:?}");
        assert_eq!(g.net().num_places(), before_places);
        let _ = direct;
    }

    #[test]
    fn prereduce_removes_duplicates_and_self_loops() {
        let mut g = chain();
        let ap = g.transition_by_label("a+").unwrap();
        let bp = g.transition_by_label("b+").unwrap();
        // A twin of the existing <a+,b+> place, same (empty) marking.
        let twin = g.add_named_place("twin");
        g.arc_tp(ap, twin).unwrap();
        g.arc_pt(twin, bp).unwrap();
        // A marked self-loop on b+.
        let lp = g.add_named_place("selfloop");
        g.arc_tp(bp, lp).unwrap();
        g.arc_pt(lp, bp).unwrap();
        let mut marked: Vec<_> = g.initial_marking().iter().collect();
        marked.push(lp);
        g.set_initial_places(&marked);
        let before = reach_shape(&g);
        let stats = prereduce(&mut g).unwrap();
        assert_eq!(stats.duplicate_places, 1);
        assert_eq!(stats.self_loop_places, 1);
        assert_eq!(stats.places_removed, 2);
        g.validate().unwrap();
        assert_eq!(reach_shape(&g), before);
    }

    #[test]
    fn prereduce_merges_series_dummies() {
        // a+ -> dum -> b+ -> a- -> b- -> (back): the dummy state
        // vanishes, shrinking the reachable graph by exactly one state
        // while the signal-labelled arcs survive.
        let mut g = Stg::new("dummychain");
        let a = g.add_signal("a", SignalKind::Input).unwrap();
        let b = g.add_signal("b", SignalKind::Output).unwrap();
        let ap = g.add_edge_transition(a, Polarity::Rise);
        let bp = g.add_edge_transition(b, Polarity::Rise);
        let am = g.add_edge_transition(a, Polarity::Fall);
        let bm = g.add_edge_transition(b, Polarity::Fall);
        let d = g.add_dummy_transition("dum");
        g.connect(ap, d).unwrap();
        g.connect(d, bp).unwrap();
        g.connect(bp, am).unwrap();
        g.connect(am, bm).unwrap();
        let back = g.connect(bm, ap).unwrap();
        g.set_initial_places(&[back]);
        let before = reach_shape(&g);
        let stats = prereduce(&mut g).unwrap();
        assert_eq!(stats.dummy_merges, 1);
        assert_eq!(stats.transitions_removed, 1);
        assert_eq!(stats.places_removed, 1);
        g.validate().unwrap();
        let after = reach_shape(&g);
        assert_eq!(after.0, before.0 - 1, "ε-state not contracted");
        assert!(g.transition_by_label("dum").is_none());
        // All signal transitions still fire.
        let rg = ReachabilityGraph::explore_default(g.net(), &g.initial_marking()).unwrap();
        assert!(rg.all_transitions_fire(g.net()));
    }

    #[test]
    fn prereduce_skips_partial_and_preserves_labels() {
        let mut partial = partial_channel();
        let before = partial.clone();
        assert!(!prereduce(&mut partial).unwrap().changed());
        assert_eq!(partial, before, "partial specification touched");

        // Instance numbers survive compaction verbatim: a net with
        // a+/2 plus a removable twin place keeps the /2 label.
        let mut g = Stg::new("instances");
        let a = g.add_signal("a", SignalKind::Input).unwrap();
        let b = g.add_signal("b", SignalKind::Output).unwrap();
        let ap1 = g.add_edge_transition(a, Polarity::Rise);
        let bp = g.add_edge_transition(b, Polarity::Rise);
        let ap2 = g.add_edge_transition(a, Polarity::Rise);
        let bm = g.add_edge_transition(b, Polarity::Fall);
        g.connect(ap1, bp).unwrap();
        let twin = g.add_named_place("twin");
        g.arc_tp(ap1, twin).unwrap();
        g.arc_pt(twin, bp).unwrap();
        g.connect(bp, ap2).unwrap();
        g.connect(ap2, bm).unwrap();
        let back = g.connect(bm, ap1).unwrap();
        g.set_initial_places(&[back]);
        // (a+ twice in a cycle is not 1-safe-consistent as an STG code,
        // but the structural pass only looks at the net.)
        let stats = prereduce(&mut g).unwrap();
        assert_eq!(stats.duplicate_places, 1);
        assert!(g.transition_by_label("a+/2").is_some(), "instance lost");
    }
}
