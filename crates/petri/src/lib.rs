//! Petri nets and Signal Transition Graphs (STGs) for asynchronous
//! circuit synthesis.
//!
//! This crate is the bottom substrate of the `reshuffle` workspace — a
//! Rust reproduction of *Automatic Synthesis and Optimization of
//! Partially Specified Asynchronous Systems* (DAC 1999). It provides:
//!
//! * [`PetriNet`] — place/transition nets with unit arc weights;
//! * [`Marking`] — 1-safe markings and the token game;
//! * [`ReachabilityGraph`] — explicit reachability exploration;
//! * [`Stg`] — signal transition graphs (nets labelled with signal
//!   edges `a+`, `a-`, `a~`), with interface roles per signal;
//! * astg (`.g`) [parsing](parse_g) and [writing](write_g), plus
//!   Graphviz [dot export](write_dot);
//! * [structural transformations](structural) used by handshake
//!   expansion and concurrency reduction;
//! * [`canonical_fingerprint`] — declaration-order-invariant hashing of
//!   STGs, the key of the facade's synthesis cache;
//! * [`sharded`] — the deterministic sharded parallel BFS engine behind
//!   [`ReachabilityGraph::explore_threads`] and the state-graph build.
//!
//! # Example
//!
//! ```
//! use reshuffle_petri::{parse_g, ReachabilityGraph};
//!
//! # fn main() -> Result<(), reshuffle_petri::PetriError> {
//! let stg = parse_g(
//!     ".model toggle\n.inputs a\n.outputs b\n.graph\n\
//!      a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
//! )?;
//! let rg = ReachabilityGraph::explore_default(stg.net(), &stg.initial_marking())?;
//! assert_eq!(rg.len(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod fingerprint;
mod ids;
mod marking;
mod net;
mod parse;
mod reach;
pub mod sharded;
pub mod stg;
pub mod structural;
mod write;

pub use error::{PetriError, Result};
pub use fingerprint::canonical_fingerprint;
pub use ids::{PlaceId, SignalId, TransitionId};
pub use marking::Marking;
pub use net::PetriNet;
pub use parse::parse_g;
pub use reach::{ReachabilityGraph, DEFAULT_STATE_BUDGET};
pub use stg::{Handshake, Polarity, Signal, SignalEdge, SignalKind, Stg, TransLabel};
pub use structural::{prereduce, PrereduceStats};
pub use write::{write_dot, write_g};
