//! Error type shared by all Petri-net and STG operations.

use std::fmt;

use crate::ids::{PlaceId, TransitionId};

/// Errors produced by net construction, simulation and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PetriError {
    /// A transition was fired while not enabled.
    NotEnabled(TransitionId),
    /// Firing a transition would place a second token into a place,
    /// violating the 1-safeness assumption this library relies on.
    UnsafePlace {
        /// The place that would receive a second token.
        place: PlaceId,
        /// The transition whose firing caused the violation.
        transition: TransitionId,
    },
    /// A duplicate arc was added between the same pair of nodes.
    DuplicateArc(String),
    /// Reachability exploration exceeded the configured state budget.
    StateBudgetExceeded(usize),
    /// A name was declared twice (place, transition or signal).
    DuplicateName(String),
    /// A referenced name is unknown.
    UnknownName(String),
    /// The `.g` input could not be parsed; carries line number and message.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A structural transformation was given inconsistent arguments.
    Structural(String),
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::NotEnabled(t) => write!(f, "transition {t} is not enabled"),
            PetriError::UnsafePlace { place, transition } => write!(
                f,
                "firing {transition} puts a second token into {place}: net is not 1-safe"
            ),
            PetriError::DuplicateArc(s) => write!(f, "duplicate arc {s}"),
            PetriError::StateBudgetExceeded(n) => {
                write!(f, "reachability exploration exceeded {n} states")
            }
            PetriError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            PetriError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            PetriError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            PetriError::Structural(m) => write!(f, "structural transformation error: {m}"),
        }
    }
}

impl std::error::Error for PetriError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, PetriError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PetriError::UnsafePlace {
            place: PlaceId(2),
            transition: TransitionId(4),
        };
        let s = e.to_string();
        assert!(s.contains("p2"));
        assert!(s.contains("t4"));
        assert!(s.contains("1-safe"));
    }

    #[test]
    fn parse_error_mentions_line() {
        let e = PetriError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }
}
