//! Strongly typed identifiers for net elements.
//!
//! All identifiers are dense indices into the owning [`crate::PetriNet`]
//! (or [`crate::Stg`]) and are only meaningful relative to the structure
//! that produced them.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the dense index backing this identifier.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "index overflow");
                $name(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a place inside a [`crate::PetriNet`].
    PlaceId,
    "p"
);
id_type!(
    /// Identifier of a transition inside a [`crate::PetriNet`].
    TransitionId,
    "t"
);
id_type!(
    /// Identifier of a signal inside an [`crate::Stg`].
    SignalId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let p = PlaceId::from_index(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p, PlaceId(7));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(PlaceId(3).to_string(), "p3");
        assert_eq!(TransitionId(5).to_string(), "t5");
        assert_eq!(SignalId(0).to_string(), "s0");
        assert_eq!(format!("{:?}", PlaceId(3)), "p3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PlaceId(1) < PlaceId(2));
        assert!(TransitionId(0) < TransitionId(10));
    }
}
