//! Markings for 1-safe nets, stored as bitsets.
//!
//! Asynchronous controller STGs are 1-safe by construction (a second
//! token in a place would mean two outstanding instances of the same
//! handshake phase). The token game below *enforces* safeness: a firing
//! that would double-mark a place reports [`PetriError::UnsafePlace`]
//! instead of silently accumulating tokens.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{PetriError, Result};
use crate::ids::{PlaceId, TransitionId};
use crate::net::PetriNet;

/// A 1-safe marking: the set of marked places, as a fixed-width bitset.
#[derive(Clone, PartialEq, Eq)]
pub struct Marking {
    bits: Box<[u64]>,
    num_places: u32,
}

impl Marking {
    /// Creates an empty marking for a net with `num_places` places.
    pub fn empty(num_places: usize) -> Self {
        let words = num_places.div_ceil(64).max(1);
        Marking {
            bits: vec![0u64; words].into_boxed_slice(),
            num_places: num_places as u32,
        }
    }

    /// Creates a marking with exactly the given places marked.
    pub fn with_tokens(num_places: usize, marked: &[PlaceId]) -> Self {
        let mut m = Self::empty(num_places);
        for &p in marked {
            m.set(p, true);
        }
        m
    }

    /// Number of places this marking was sized for.
    pub fn num_places(&self) -> usize {
        self.num_places as usize
    }

    /// Whether place `p` holds a token.
    #[inline]
    pub fn contains(&self, p: PlaceId) -> bool {
        let i = p.index();
        debug_assert!(i < self.num_places as usize);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets or clears the token in place `p`.
    #[inline]
    pub fn set(&mut self, p: PlaceId, value: bool) {
        let i = p.index();
        debug_assert!(i < self.num_places as usize);
        if value {
            self.bits[i / 64] |= 1 << (i % 64);
        } else {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of tokens in the marking.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the marked places in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.num_places as usize)
            .map(PlaceId::from_index)
            .filter(move |&p| self.contains(p))
    }

    /// Whether transition `t` of `net` is enabled in this marking.
    pub fn enables(&self, net: &PetriNet, t: TransitionId) -> bool {
        net.preset(t).iter().all(|&p| self.contains(p))
    }

    /// All transitions of `net` enabled in this marking.
    pub fn enabled_transitions(&self, net: &PetriNet) -> Vec<TransitionId> {
        net.transitions()
            .filter(|&t| self.enables(net, t))
            .collect()
    }

    /// Fires transition `t`, producing the successor marking.
    ///
    /// # Errors
    ///
    /// * [`PetriError::NotEnabled`] if `t` lacks an input token;
    /// * [`PetriError::UnsafePlace`] if firing would double-mark a place
    ///   (the net is not 1-safe from this marking).
    pub fn fire(&self, net: &PetriNet, t: TransitionId) -> Result<Marking> {
        if !self.enables(net, t) {
            return Err(PetriError::NotEnabled(t));
        }
        let mut next = self.clone();
        for &p in net.preset(t) {
            next.set(p, false);
        }
        for &p in net.postset(t) {
            if next.contains(p) {
                return Err(PetriError::UnsafePlace {
                    place: p,
                    transition: t,
                });
            }
            next.set(p, true);
        }
        Ok(next)
    }

    /// Renders the marking with place names from `net`, e.g. `{p1 p4}`.
    pub fn display<'a>(&'a self, net: &'a PetriNet) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Marking, &'a PetriNet);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{{")?;
                let mut first = true;
                for p in self.0.iter() {
                    if !first {
                        write!(f, " ")?;
                    }
                    first = false;
                    write!(f, "{}", self.1.place_name(p))?;
                }
                write!(f, "}}")
            }
        }
        D(self, net)
    }
}

impl Hash for Marking {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.bits.hash(state);
    }
}

impl fmt::Debug for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Marking{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle_net() -> (PetriNet, Marking, TransitionId, TransitionId) {
        // p0 -> a -> p1 -> b -> p0
        let mut n = PetriNet::new();
        let p0 = n.add_place("p0");
        let p1 = n.add_place("p1");
        let a = n.add_transition("a");
        let b = n.add_transition("b");
        n.add_arc_pt(p0, a).unwrap();
        n.add_arc_tp(a, p1).unwrap();
        n.add_arc_pt(p1, b).unwrap();
        n.add_arc_tp(b, p0).unwrap();
        let m0 = Marking::with_tokens(2, &[p0]);
        (n, m0, a, b)
    }

    #[test]
    fn fire_moves_token() {
        let (n, m0, a, b) = cycle_net();
        assert!(m0.enables(&n, a));
        assert!(!m0.enables(&n, b));
        let m1 = m0.fire(&n, a).unwrap();
        assert!(!m1.contains(PlaceId(0)));
        assert!(m1.contains(PlaceId(1)));
        let m2 = m1.fire(&n, b).unwrap();
        assert_eq!(m2, m0);
    }

    #[test]
    fn firing_disabled_errors() {
        let (n, m0, _, b) = cycle_net();
        assert_eq!(m0.fire(&n, b), Err(PetriError::NotEnabled(TransitionId(1))));
    }

    #[test]
    fn unsafe_firing_detected() {
        // p0 -> a -> p1, but p1 already marked.
        let mut n = PetriNet::new();
        let p0 = n.add_place("p0");
        let p1 = n.add_place("p1");
        let a = n.add_transition("a");
        n.add_arc_pt(p0, a).unwrap();
        n.add_arc_tp(a, p1).unwrap();
        let m = Marking::with_tokens(2, &[p0, p1]);
        assert!(matches!(m.fire(&n, a), Err(PetriError::UnsafePlace { .. })));
    }

    #[test]
    fn iter_and_count() {
        let m = Marking::with_tokens(130, &[PlaceId(0), PlaceId(64), PlaceId(129)]);
        assert_eq!(m.count(), 3);
        let v: Vec<_> = m.iter().collect();
        assert_eq!(v, vec![PlaceId(0), PlaceId(64), PlaceId(129)]);
    }

    #[test]
    fn display_with_names() {
        let (n, m0, _, _) = cycle_net();
        assert_eq!(m0.display(&n).to_string(), "{p0}");
    }

    #[test]
    fn equality_and_hash_depend_on_bits() {
        use std::collections::HashSet;
        let a = Marking::with_tokens(10, &[PlaceId(3)]);
        let b = Marking::with_tokens(10, &[PlaceId(3)]);
        let c = Marking::with_tokens(10, &[PlaceId(4)]);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
