//! Plain place/transition nets with unit arc weights.
//!
//! The nets used for Signal Transition Graphs are ordinary Petri nets.
//! This module stores the bipartite flow relation in both directions so
//! that the token game, reachability analysis and structural transforms
//! are all cheap.

use crate::error::{PetriError, Result};
use crate::ids::{PlaceId, TransitionId};

/// A place/transition net with unit arc weights.
///
/// Places and transitions carry display names (used by the `.g` reader
/// and writer); the flow relation is kept as four adjacency lists so both
/// presets and postsets of both node kinds can be iterated directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PetriNet {
    place_names: Vec<String>,
    trans_names: Vec<String>,
    /// For each transition: places consumed (preset).
    trans_pre: Vec<Vec<PlaceId>>,
    /// For each transition: places produced (postset).
    trans_post: Vec<Vec<PlaceId>>,
    /// For each place: transitions producing into it.
    place_pre: Vec<Vec<TransitionId>>,
    /// For each place: transitions consuming from it.
    place_post: Vec<Vec<TransitionId>>,
}

impl PetriNet {
    /// Creates an empty net.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.trans_names.len()
    }

    /// Adds a place with the given display name and returns its id.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        let id = PlaceId::from_index(self.place_names.len());
        self.place_names.push(name.into());
        self.place_pre.push(Vec::new());
        self.place_post.push(Vec::new());
        id
    }

    /// Adds a transition with the given display name and returns its id.
    pub fn add_transition(&mut self, name: impl Into<String>) -> TransitionId {
        let id = TransitionId::from_index(self.trans_names.len());
        self.trans_names.push(name.into());
        self.trans_pre.push(Vec::new());
        self.trans_post.push(Vec::new());
        id
    }

    /// Adds an arc from a place to a transition (the transition consumes
    /// a token from the place).
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::DuplicateArc`] if the arc already exists.
    pub fn add_arc_pt(&mut self, p: PlaceId, t: TransitionId) -> Result<()> {
        if self.trans_pre[t.index()].contains(&p) {
            return Err(PetriError::DuplicateArc(format!("{p} -> {t}")));
        }
        self.trans_pre[t.index()].push(p);
        self.place_post[p.index()].push(t);
        Ok(())
    }

    /// Adds an arc from a transition to a place (the transition produces
    /// a token into the place).
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::DuplicateArc`] if the arc already exists.
    pub fn add_arc_tp(&mut self, t: TransitionId, p: PlaceId) -> Result<()> {
        if self.trans_post[t.index()].contains(&p) {
            return Err(PetriError::DuplicateArc(format!("{t} -> {p}")));
        }
        self.trans_post[t.index()].push(p);
        self.place_pre[p.index()].push(t);
        Ok(())
    }

    /// Removes the arc from `p` to `t` if present; returns whether it was.
    pub fn remove_arc_pt(&mut self, p: PlaceId, t: TransitionId) -> bool {
        let pre = &mut self.trans_pre[t.index()];
        if let Some(i) = pre.iter().position(|&x| x == p) {
            pre.remove(i);
            let post = &mut self.place_post[p.index()];
            let j = post.iter().position(|&x| x == t).expect("mirror arc");
            post.remove(j);
            true
        } else {
            false
        }
    }

    /// Removes the arc from `t` to `p` if present; returns whether it was.
    pub fn remove_arc_tp(&mut self, t: TransitionId, p: PlaceId) -> bool {
        let post = &mut self.trans_post[t.index()];
        if let Some(i) = post.iter().position(|&x| x == p) {
            post.remove(i);
            let pre = &mut self.place_pre[p.index()];
            let j = pre.iter().position(|&x| x == t).expect("mirror arc");
            pre.remove(j);
            true
        } else {
            false
        }
    }

    /// The places consumed by transition `t`.
    pub fn preset(&self, t: TransitionId) -> &[PlaceId] {
        &self.trans_pre[t.index()]
    }

    /// The places produced by transition `t`.
    pub fn postset(&self, t: TransitionId) -> &[PlaceId] {
        &self.trans_post[t.index()]
    }

    /// The transitions that produce into place `p`.
    pub fn producers(&self, p: PlaceId) -> &[TransitionId] {
        &self.place_pre[p.index()]
    }

    /// The transitions that consume from place `p`.
    pub fn consumers(&self, p: PlaceId) -> &[TransitionId] {
        &self.place_post[p.index()]
    }

    /// Display name of place `p`.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.place_names[p.index()]
    }

    /// Display name of transition `t`.
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.trans_names[t.index()]
    }

    /// Renames transition `t`.
    pub fn set_transition_name(&mut self, t: TransitionId, name: impl Into<String>) {
        self.trans_names[t.index()] = name.into();
    }

    /// Renames place `p`.
    pub fn set_place_name(&mut self, p: PlaceId, name: impl Into<String>) {
        self.place_names[p.index()] = name.into();
    }

    /// Iterates over all place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.place_names.len()).map(PlaceId::from_index)
    }

    /// Iterates over all transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.trans_names.len()).map(TransitionId::from_index)
    }

    /// Finds a place by display name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_names
            .iter()
            .position(|n| n == name)
            .map(PlaceId::from_index)
    }

    /// Finds a transition by display name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.trans_names
            .iter()
            .position(|n| n == name)
            .map(TransitionId::from_index)
    }

    /// True if a place has no producers and no consumers.
    pub fn is_isolated_place(&self, p: PlaceId) -> bool {
        self.place_pre[p.index()].is_empty() && self.place_post[p.index()].is_empty()
    }

    /// A place is a *choice* place if more than one transition consumes
    /// from it; the consumers are then in structural conflict.
    pub fn is_choice_place(&self, p: PlaceId) -> bool {
        self.place_post[p.index()].len() > 1
    }

    /// A place is a *merge* place if more than one transition produces
    /// into it.
    pub fn is_merge_place(&self, p: PlaceId) -> bool {
        self.place_pre[p.index()].len() > 1
    }

    /// Checks simple well-formedness used before simulation: every
    /// transition has at least one input place (source transitions would
    /// make the net unbounded and are rejected).
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::Structural`] naming the offending transition.
    pub fn check_no_source_transitions(&self) -> Result<()> {
        for t in self.transitions() {
            if self.preset(t).is_empty() {
                return Err(PetriError::Structural(format!(
                    "transition {} ({t}) has an empty preset",
                    self.transition_name(t)
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> (PetriNet, PlaceId, PlaceId, TransitionId, TransitionId) {
        let mut n = PetriNet::new();
        let p0 = n.add_place("p0");
        let p1 = n.add_place("p1");
        let t0 = n.add_transition("a");
        let t1 = n.add_transition("b");
        n.add_arc_pt(p0, t0).unwrap();
        n.add_arc_tp(t0, p1).unwrap();
        n.add_arc_pt(p1, t1).unwrap();
        n.add_arc_tp(t1, p0).unwrap();
        (n, p0, p1, t0, t1)
    }

    #[test]
    fn build_and_query() {
        let (n, p0, p1, t0, t1) = two_by_two();
        assert_eq!(n.num_places(), 2);
        assert_eq!(n.num_transitions(), 2);
        assert_eq!(n.preset(t0), &[p0]);
        assert_eq!(n.postset(t0), &[p1]);
        assert_eq!(n.producers(p0), &[t1]);
        assert_eq!(n.consumers(p0), &[t0]);
        assert_eq!(n.place_name(p0), "p0");
        assert_eq!(n.transition_name(t1), "b");
    }

    #[test]
    fn duplicate_arcs_rejected() {
        let (mut n, p0, _, t0, _) = two_by_two();
        assert!(matches!(
            n.add_arc_pt(p0, t0),
            Err(PetriError::DuplicateArc(_))
        ));
    }

    #[test]
    fn remove_arcs() {
        let (mut n, p0, _, t0, _) = two_by_two();
        assert!(n.remove_arc_pt(p0, t0));
        assert!(!n.remove_arc_pt(p0, t0));
        assert!(n.preset(t0).is_empty());
        assert!(n.consumers(p0).is_empty());
    }

    #[test]
    fn lookup_by_name() {
        let (n, p0, _, _, t1) = two_by_two();
        assert_eq!(n.place_by_name("p0"), Some(p0));
        assert_eq!(n.transition_by_name("b"), Some(t1));
        assert_eq!(n.transition_by_name("zz"), None);
    }

    #[test]
    fn choice_and_merge_classification() {
        let mut n = PetriNet::new();
        let p = n.add_place("p");
        let a = n.add_transition("a");
        let b = n.add_transition("b");
        n.add_arc_pt(p, a).unwrap();
        n.add_arc_pt(p, b).unwrap();
        assert!(n.is_choice_place(p));
        assert!(!n.is_merge_place(p));
        n.add_arc_tp(a, p).unwrap();
        n.add_arc_tp(b, p).unwrap();
        assert!(n.is_merge_place(p));
    }

    #[test]
    fn source_transition_detected() {
        let mut n = PetriNet::new();
        n.add_transition("orphan");
        assert!(n.check_no_source_transitions().is_err());
    }
}
