//! Benchmark harness for the `reshuffle` workspace.
//!
//! The container this workspace builds in has no network access, so the
//! harness is hand-rolled on [`std::time::Instant`] instead of pulling
//! in `criterion`: [`run_with`] auto-calibrates an iteration count to a
//! target measurement window and reports min/median/mean per-iteration
//! times. Benches are registered with `harness = false` so
//! `cargo bench` drives plain `fn main()` runners directly.
//!
//! [`examples`] holds the `.g` sources the benches and the `tables`
//! binary share; [`tables`] collects and renders the Tables 1/2
//! report (text and machine-readable JSON via [`json`]).

#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

pub mod examples;
pub mod json;
pub mod tables;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (shown in reports).
    pub name: String,
    /// Iterations per sample.
    pub iters_per_sample: u32,
    /// Per-iteration time of the fastest sample.
    pub min: Duration,
    /// Per-iteration time of the median sample.
    pub median: Duration,
    /// Per-iteration mean over all samples.
    pub mean: Duration,
    /// Number of samples taken.
    pub samples: usize,
}

impl Measurement {
    /// Formats the measurement as a one-line report.
    pub fn report(&self) -> String {
        format!(
            "{:<28} {:>12?} min {:>12?} med {:>12?} mean  ({} x {} iters)",
            self.name, self.min, self.median, self.mean, self.samples, self.iters_per_sample
        )
    }
}

/// Tuning for [`run_with`].
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Target duration of one sample (controls calibration).
    pub sample_target: Duration,
    /// Number of samples to take.
    pub samples: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            sample_target: Duration::from_millis(20),
            samples: 11,
        }
    }
}

impl BenchOptions {
    /// A tiny sample budget for CI smoke runs.
    pub fn smoke() -> BenchOptions {
        BenchOptions {
            sample_target: Duration::from_micros(100),
            samples: 2,
        }
    }

    /// [`BenchOptions::smoke`] when [`smoke_mode`] is set, the default
    /// measurement budget otherwise. Every bench main starts here.
    pub fn smoke_or_default() -> BenchOptions {
        if smoke_mode() {
            BenchOptions::smoke()
        } else {
            BenchOptions::default()
        }
    }
}

/// Measures `f`, auto-calibrating the iteration count so each sample
/// runs for roughly `opts.sample_target`.
///
/// The closure's result is passed through [`black_box`] so the work is
/// not optimized away; return the value you computed.
pub fn run_with<T, F: FnMut() -> T>(name: &str, opts: &BenchOptions, mut f: F) -> Measurement {
    // Calibrate: double the iteration count until a sample is long enough.
    let mut iters: u32 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = t.elapsed();
        if elapsed >= opts.sample_target || iters >= 1 << 20 {
            break;
        }
        // Jump close to the target once we have a usable estimate.
        iters = if elapsed.is_zero() {
            iters * 2
        } else {
            let scale = opts.sample_target.as_secs_f64() / elapsed.as_secs_f64();
            (iters as f64 * scale.clamp(1.5, 16.0)).ceil() as u32
        };
    }

    let mut per_iter: Vec<Duration> = (0..opts.samples.max(1))
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed() / iters
        })
        .collect();
    per_iter.sort();
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
    Measurement {
        name: name.to_string(),
        iters_per_sample: iters,
        min,
        median,
        mean,
        samples: per_iter.len(),
    }
}

/// [`run_with`], printing the report line to stdout.
pub fn report<T, F: FnMut() -> T>(name: &str, opts: &BenchOptions, f: F) -> Measurement {
    let m = run_with(name, opts, f);
    println!("{}", m.report());
    m
}

/// True when the process should only check that benches build and can
/// start (CI smoke mode): set `RESHUFFLE_BENCH_SMOKE=1`.
pub fn smoke_mode() -> bool {
    std::env::var_os("RESHUFFLE_BENCH_SMOKE").is_some_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_terminates_and_reports() {
        let opts = BenchOptions {
            sample_target: Duration::from_micros(200),
            samples: 3,
        };
        let m = run_with("spin", &opts, || (0..100u64).sum::<u64>());
        assert_eq!(m.samples, 3);
        assert!(m.iters_per_sample >= 1);
        assert!(m.report().contains("spin"));
    }
}
