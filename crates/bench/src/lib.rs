//! (under construction)
